"""A WAN-optimizer / compressor network function.

The network model's per-stage demands (``w_cz`` per stage ``z``) exist
precisely because VNFs can change traffic volume mid-chain -- a WAN
optimizer halves the bytes it forwards, a video transcoder shrinks a
stream, a DDoS scrubber drops attack volume.  This VNF is the
behavioural counterpart: it rescales packet sizes in the forward
direction and restores them in reverse (decompression), so benches and
tests can exercise stage-varying demand end to end.
"""

from __future__ import annotations

from repro.dataplane.labels import Packet


class CompressorError(Exception):
    """Raised on invalid compressor configuration."""


class Compressor:
    """Rescales packet sizes by ``ratio`` (forward) and back (reverse).

    ``ratio`` is output/input bytes: 0.5 halves traffic downstream of
    this VNF.  A floor of 40 bytes models uncompressible headers.
    """

    MIN_PACKET_BYTES = 40

    def __init__(self, ratio: float):
        if not 0.0 < ratio <= 1.0:
            raise CompressorError(f"ratio must be in (0, 1]: {ratio}")
        self.ratio = ratio
        self.bytes_in = 0
        self.bytes_out = 0

    def __call__(self, packet: Packet) -> None:
        self.bytes_in += packet.size_bytes
        if packet.direction == "forward":
            packet.size_bytes = max(
                self.MIN_PACKET_BYTES, int(packet.size_bytes * self.ratio)
            )
        else:
            # Reverse traffic is decompressed back toward the client.
            packet.size_bytes = int(packet.size_bytes / self.ratio)
        self.bytes_out += packet.size_bytes

    @property
    def savings(self) -> float:
        """Fraction of bytes removed so far (forward direction biased)."""
        if self.bytes_in == 0:
            return 0.0
        return 1.0 - self.bytes_out / self.bytes_in


def compressed_stage_demands(
    base_forward: float,
    base_reverse: float,
    vnf_ratios: list[float | None],
) -> tuple[list[float], list[float]]:
    """Per-stage demands for a chain containing compressing VNFs.

    ``vnf_ratios`` has one entry per chain VNF: a ratio for a compressor
    at that position, None for volume-preserving VNFs.  Returns the
    ``(forward, reverse)`` per-stage lists for
    :class:`~repro.core.model.Chain`: stage ``z`` carries the volume
    *after* the first ``z - 1`` VNFs in the forward direction, and --
    since reverse traffic is decompressed at the same points -- the
    matching reverse volume.
    """
    forward = [base_forward]
    reverse = [base_reverse]
    for ratio in vnf_ratios:
        factor = 1.0 if ratio is None else ratio
        if not 0.0 < factor <= 1.0:
            raise CompressorError(f"ratio must be in (0, 1]: {factor}")
        forward.append(forward[-1] * factor)
        reverse.append(reverse[-1] * factor)
    return forward, reverse
