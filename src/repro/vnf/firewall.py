"""A stateful firewall network function (the paper's iptables firewall).

Policy rules decide which *forward-direction* flows may be admitted;
reverse packets are admitted only for connections the same instance has
previously seen in the forward direction (ESTABLISHED state, as with
iptables conntrack).  Because the connection state is per-instance, the
firewall requires *flow affinity*: a later packet of an admitted flow
that reached a different instance would be treated as unsolicited.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.forwarder import DropPacket
from repro.dataplane.labels import FiveTuple, Packet
from repro.edge.classifier import ip_in_prefix


@dataclass(frozen=True)
class FirewallRule:
    """An allow rule; None fields are wildcards."""

    src_prefix: str | None = None
    dst_prefix: str | None = None
    protocol: str | None = None
    dst_port_range: tuple[int, int] | None = None

    def matches(self, flow: FiveTuple) -> bool:
        if self.src_prefix is not None and not ip_in_prefix(
            flow.src_ip, self.src_prefix
        ):
            return False
        if self.dst_prefix is not None and not ip_in_prefix(
            flow.dst_ip, self.dst_prefix
        ):
            return False
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        if self.dst_port_range is not None and not (
            self.dst_port_range[0] <= flow.dst_port <= self.dst_port_range[1]
        ):
            return False
        return True


class StatefulFirewall:
    """Per-instance stateful firewall with allow rules + conntrack."""

    def __init__(self, rules: list[FirewallRule] | None = None,
                 default_allow: bool = False):
        self.rules = list(rules or [])
        self.default_allow = default_allow
        self._established: set[FiveTuple] = set()
        self.admitted = 0
        self.dropped = 0

    def add_rule(self, rule: FirewallRule) -> None:
        self.rules.append(rule)

    def is_established(self, flow: FiveTuple) -> bool:
        return flow in self._established

    def __call__(self, packet: Packet) -> None:
        flow = packet.flow
        if packet.direction == "forward":
            if flow in self._established:
                self.admitted += 1
                return
            if any(rule.matches(flow) for rule in self.rules) or self.default_allow:
                self._established.add(flow)
                self.admitted += 1
                return
            self.dropped += 1
            raise DropPacket(f"firewall: no rule admits {flow}")
        # Reverse direction: only established connections may return.
        if flow.reversed() in self._established:
            self.admitted += 1
            return
        self.dropped += 1
        raise DropPacket(f"firewall: unsolicited reverse packet {flow}")
