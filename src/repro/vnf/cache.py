"""The web-cache VNF and the Table 3 shared-vs-siloed experiment.

Section 7.2 ("E2E comparison vs. unified approach"): five service chains
fetch objects through a Squid cache; the paper compares one cache
instance *shared* across all chains against five *vertically siloed*
instances of one-fifth the size.  The workload is Zipf(exponent 1) with
a 50 KB mean object size and a 60 ms RTT between the cache site and the
origin site.

Sharing wins for two reasons the model reproduces: the shared cache is
five times larger, and objects fetched by one chain hit for the others
(cross-chain reuse).  Download time follows from hit rate: a hit costs
the client-cache RTT plus transfer, a miss adds the cache-origin RTT.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass


class CacheError(Exception):
    """Raised on invalid cache configuration."""


class LruCache:
    """An LRU object cache with capacity counted in objects (Squid's
    behaviour for a homogeneous object-size workload)."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise CacheError(f"negative capacity {capacity}")
        self.capacity = capacity
        self._store: OrderedDict[str, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def get(self, key: str) -> bool:
        """Look up an object, inserting it on a miss.  True on a hit."""
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if self.capacity == 0:
            return False
        if len(self._store) >= self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1
        self._store[key] = True
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ZipfWorkload:
    """Zipf-distributed object requests over a catalog.

    ``sample()`` returns object ranks (1 = most popular) with
    ``P(rank) proportional to rank**-exponent``.
    """

    def __init__(
        self,
        num_objects: int,
        exponent: float,
        rng: random.Random,
        rank_offset: int = 0,
    ):
        if num_objects < 1:
            raise CacheError(f"need at least one object, got {num_objects}")
        if exponent <= 0:
            raise CacheError(f"non-positive Zipf exponent {exponent}")
        self.num_objects = num_objects
        self.exponent = exponent
        self.rank_offset = rank_offset
        self._rng = rng
        weights = [rank ** -exponent for rank in range(1, num_objects + 1)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def sample(self) -> int:
        """Draw an object id (1-based).

        With a non-zero ``rank_offset`` the Zipf ranking is rotated over
        the catalog, modelling a customer whose popularity ordering only
        partially overlaps other customers' (their hot sets differ).
        """
        point = self._rng.random()
        lo, hi = 0, self.num_objects - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return (lo + self.rank_offset) % self.num_objects + 1


@dataclass
class CacheExperimentResult:
    """Aggregate outcome of one cache configuration."""

    scheme: str
    hit_rate: float
    mean_download_ms: float
    requests: int


def _download_ms(
    hit: bool,
    client_cache_rtt_ms: float,
    cache_origin_rtt_ms: float,
    mean_file_kb: float,
    bandwidth_mbps: float,
) -> float:
    transfer_ms = mean_file_kb * 8 / bandwidth_mbps  # KB over Mbps -> ms
    if hit:
        return client_cache_rtt_ms + transfer_ms
    # Miss: fetch across the wide area first (the paper's 60 ms RTT) --
    # roughly a TCP handshake plus the request/response exchange, with
    # partial pipelining (~1.85 RTTs for a 50 KB object), and a transfer
    # that pays the wide-area leg as well as the local one.
    return (
        client_cache_rtt_ms
        + cache_origin_rtt_ms * 1.85
        + transfer_ms * 2
    )


def run_cache_experiment(
    num_chains: int = 5,
    shared: bool = True,
    total_cache_objects: int = 500,
    requests_per_chain: int = 4000,
    catalog_objects: int = 10_000,
    zipf_exponent: float = 1.0,
    mean_file_kb: float = 50.0,
    client_cache_rtt_ms: float = 2.0,
    cache_origin_rtt_ms: float = 60.0,
    bandwidth_mbps: float = 100.0,
    seed: int = 7,
    popularity_spread: int = 0,
) -> CacheExperimentResult:
    """Run one configuration of the Table 3 experiment.

    ``shared=True`` uses one cache of ``total_cache_objects`` for all
    chains; ``shared=False`` gives each chain a private cache of
    ``total_cache_objects / num_chains`` (the paper's one-fifth sizing).
    All chains draw from the same catalog with independent Zipf streams,
    modelling distinct customers browsing the same popular web content;
    ``popularity_spread`` rotates each chain's ranking by ``chain index *
    spread`` objects so the customers' hot sets only partially overlap.
    """
    if num_chains < 1:
        raise CacheError(f"need at least one chain, got {num_chains}")
    rng = random.Random(seed)
    workloads = [
        ZipfWorkload(
            catalog_objects,
            zipf_exponent,
            random.Random(rng.random()),
            rank_offset=i * popularity_spread,
        )
        for i in range(num_chains)
    ]
    if shared:
        caches = [LruCache(total_cache_objects)] * num_chains
    else:
        per_chain = total_cache_objects // num_chains
        caches = [LruCache(per_chain) for _ in range(num_chains)]

    total_ms = 0.0
    hits = 0
    requests = 0
    for _ in range(requests_per_chain):
        for chain_idx in range(num_chains):
            obj = f"obj-{workloads[chain_idx].sample()}"
            hit = caches[chain_idx].get(obj)
            hits += hit
            requests += 1
            total_ms += _download_ms(
                hit,
                client_cache_rtt_ms,
                cache_origin_rtt_ms,
                mean_file_kb,
                bandwidth_mbps,
            )

    return CacheExperimentResult(
        scheme="shared" if shared else "siloed",
        hit_rate=hits / requests,
        mean_download_ms=total_ms / requests,
        requests=requests,
    )
