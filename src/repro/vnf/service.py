"""The VNF service: controller, instances, and capacity accounting.

The VNF controller is the participant side of Global Switchboard's
two-phase commit (Section 3, chain creation): a *prepare* reserves
capacity for a chain at a site and may be rejected on resource shortage
(triggering route recomputation at Global Switchboard); *commit* turns
the reservation into an allocation and instantiates/assigns instances;
*abort* releases it.

Every 2PC operation here is idempotent, because the control plane
delivers at-least-once (:mod:`repro.resilience.rpc`): re-preparing an
already-reserved (chain, site) returns the cached outcome, re-committing
an already-committed pair is a no-op, and abort/teardown of absent state
does nothing.  Committed capacity is tracked per (chain, site) -- not
just as a per-site aggregate -- so a coordinator that lost track of a
chain mid-install can still tear it down exactly (releasing what this
chain committed and nothing else).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dataplane.forwarder import VnfInstance
from repro.dataplane.labels import Packet


class AllocationError(Exception):
    """Raised on invalid capacity operations."""


@dataclass
class _Reservation:
    chain: str
    site: str
    load: float


class VnfService:
    """One VNF service with per-site capacity and 2PC participation.

    ``instance_factory`` builds the packet-processing behaviour for new
    instances (e.g. a NAT transform); by default instances are
    pass-through.
    """

    def __init__(
        self,
        name: str,
        load_per_unit: float,
        site_capacity: dict[str, float],
        instances_per_site: int = 1,
        supports_labels: bool = True,
        instance_factory: Callable[[str, str], Callable[[Packet], None] | None]
        | None = None,
    ):
        if load_per_unit < 0:
            raise AllocationError("negative load_per_unit")
        self.name = name
        self.load_per_unit = load_per_unit
        self.site_capacity = dict(site_capacity)
        self.supports_labels = supports_labels
        self.instance_factory = instance_factory
        self._committed: dict[str, float] = {s: 0.0 for s in site_capacity}
        #: (chain, site) -> load committed for that chain there.
        self._chain_committed: dict[tuple[str, str], float] = {}
        self._reserved: dict[tuple[str, str], _Reservation] = {}
        self.instances: dict[str, list[VnfInstance]] = {}
        self._instance_counter = 0
        for site in site_capacity:
            for _ in range(instances_per_site):
                self._spawn_instance(site)

    # -- instances -------------------------------------------------------

    def _spawn_instance(self, site: str) -> VnfInstance:
        self._instance_counter += 1
        name = f"{self.name}.{site}.{self._instance_counter}"
        transform = (
            self.instance_factory(name, site) if self.instance_factory else None
        )
        instance = VnfInstance(
            name,
            service=self.name,
            site=site,
            supports_labels=self.supports_labels,
            transform=transform,
        )
        self.instances.setdefault(site, []).append(instance)
        return instance

    def scale_out(self, site: str) -> VnfInstance:
        """Add an instance at a site (elastic scaling)."""
        if site not in self.site_capacity:
            raise AllocationError(f"{self.name!r} is not deployed at {site!r}")
        return self._spawn_instance(site)

    def instances_at(self, site: str) -> list[VnfInstance]:
        return list(self.instances.get(site, []))

    @property
    def sites(self) -> list[str]:
        return sorted(self.site_capacity)

    # -- capacity (two-phase commit participant) -----------------------------

    def available(self, site: str) -> float:
        """Capacity not yet committed or reserved at a site."""
        if site not in self.site_capacity:
            return 0.0
        reserved = sum(
            r.load for r in self._reserved.values() if r.site == site
        )
        return self.site_capacity[site] - self._committed[site] - reserved

    def prepare(self, chain: str, site: str, load: float) -> bool:
        """Phase 1: reserve capacity; False rejects the proposed route."""
        if load < 0:
            raise AllocationError("negative load")
        if site not in self.site_capacity:
            return False
        key = (chain, site)
        if key in self._reserved:
            return True  # idempotent re-prepare
        if load > self.available(site) + 1e-9:
            return False
        self._reserved[key] = _Reservation(chain, site, load)
        return True

    def commit(self, chain: str, site: str) -> None:
        """Phase 2: turn the reservation into a committed allocation.

        Idempotent under re-delivery: a commit for a (chain, site) that
        already committed (and holds no new reservation) is a no-op; a
        commit that was never prepared is still an error.
        """
        key = (chain, site)
        reservation = self._reserved.pop(key, None)
        if reservation is None:
            if key in self._chain_committed:
                return  # re-delivered commit: already applied
            raise AllocationError(
                f"{self.name!r}: commit without prepare for "
                f"chain {chain!r} at {site!r}"
            )
        self._committed[site] += reservation.load
        self._chain_committed[key] = (
            self._chain_committed.get(key, 0.0) + reservation.load
        )

    def abort(self, chain: str, site: str) -> None:
        """Phase 2 (failure path): release the reservation.  Idempotent."""
        self._reserved.pop((chain, site), None)

    def release(self, chain: str, site: str, load: float | None = None) -> float:
        """Release committed capacity when a chain is torn down.

        The per-chain ledger is authoritative: the amount released is
        what this chain actually committed at the site, which makes
        release idempotent (a second release of the same pair is a
        no-op) and immune to a stale ``load`` argument.  Returns the
        amount released.
        """
        if load is not None and load < 0:
            raise AllocationError("negative load")
        recorded = self._chain_committed.pop((chain, site), None)
        if recorded is None:
            return 0.0
        self._committed[site] = max(0.0, self._committed[site] - recorded)
        return recorded

    def teardown(self, chain: str, site: str) -> float:
        """Drop *all* state this chain holds at a site: the reservation
        (if any) and the committed allocation (if any).  Idempotent --
        this is the participant side of a coordinator's unilateral abort
        after a deadline or failover.  Returns the committed load
        released."""
        self.abort(chain, site)
        return self.release(chain, site)

    def committed(self, site: str) -> float:
        return self._committed.get(site, 0.0)

    def committed_for(self, chain: str, site: str) -> float:
        """Load this chain has committed at a site (0.0 if none)."""
        return self._chain_committed.get((chain, site), 0.0)

    def pending_reservations(self) -> int:
        return len(self._reserved)

    def reservations(self) -> dict[tuple[str, str], float]:
        """Outstanding (chain, site) reservations and their loads --
        read by the reconciliation sweeper to spot reservations whose
        install is no longer pending anywhere."""
        return {key: r.load for key, r in self._reserved.items()}

    def committed_chains(self) -> dict[tuple[str, str], float]:
        """Committed (chain, site) ledger entries -- read by the
        reconciliation sweeper to spot commitments whose chain is
        neither pending nor installed (a teardown whose every
        retransmit was lost)."""
        return dict(self._chain_committed)
