"""An intrusion-detection/prevention network function.

The paper's introduction motivates exactly this VNF: "a logistics
enterprise can add specialized network traffic analysis for its
Internet-connected vehicles in response to an emerging security threat
... by instantly inserting a new VNF into an existing chain."

The model is a small signature + anomaly engine:

- *signatures* match on packet payloads (simulated as strings); a match
  raises an alert and, in prevention mode, drops the packet;
- a per-source *scan detector* counts distinct destination ports seen
  from each source address and flags sources that exceed a threshold
  (a port-scan heuristic), after which their traffic is dropped.

State is per-instance, so this VNF, like the firewall, requires flow
affinity to see a connection's packets consistently.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.dataplane.forwarder import DropPacket
from repro.dataplane.labels import Packet


@dataclass
class Alert:
    """One IDS alert."""

    kind: str
    source: str
    detail: str


@dataclass
class IntrusionDetector:
    """Signature + port-scan detection, optionally in prevention mode."""

    signatures: list[str] = field(default_factory=list)
    scan_port_threshold: int = 20
    prevention: bool = True
    alerts: list[Alert] = field(default_factory=list)
    packets_inspected: int = 0
    packets_dropped: int = 0
    _ports_by_source: dict[str, set[int]] = field(
        default_factory=lambda: defaultdict(set)
    )
    _blocked_sources: set[str] = field(default_factory=set)

    def add_signature(self, signature: str) -> None:
        if not signature:
            raise ValueError("empty signature")
        self.signatures.append(signature)

    def is_blocked(self, source: str) -> bool:
        return source in self._blocked_sources

    def __call__(self, packet: Packet) -> None:
        self.packets_inspected += 1
        source = packet.flow.src_ip

        if source in self._blocked_sources:
            self.packets_dropped += 1
            raise DropPacket(f"ids: source {source} is blocked")

        payload = packet.payload if isinstance(packet.payload, str) else ""
        for signature in self.signatures:
            if signature in payload:
                self.alerts.append(
                    Alert("signature", source, f"matched {signature!r}")
                )
                if self.prevention:
                    self.packets_dropped += 1
                    raise DropPacket(
                        f"ids: payload matched signature {signature!r}"
                    )

        ports = self._ports_by_source[source]
        ports.add(packet.flow.dst_port)
        if len(ports) > self.scan_port_threshold:
            self.alerts.append(
                Alert(
                    "port-scan",
                    source,
                    f"{len(ports)} distinct destination ports",
                )
            )
            if self.prevention:
                self._blocked_sources.add(source)
                self.packets_dropped += 1
                raise DropPacket(f"ids: port scan from {source}")
