"""Topic grammar of the global message bus.

Topics follow the paper's example format::

    /c1/e3/vnf_G/site_A_instances
     |   |    |        |
     |   |    |        +-- publisher site + element kind
     |   |    +-- VNF service in the chain
     |   +-- egress site label
     +-- chain label

The crucial property is that **the publisher's site is inferred from the
topic itself** (the ``site_X`` component), which is what lets the bus
install a subscription filter at the publisher-site proxy without any
extra rendezvous state.
"""

from __future__ import annotations

from dataclasses import dataclass


class TopicError(Exception):
    """Raised on malformed topics."""


#: Element kinds that can publish under a topic.
KINDS = ("instances", "forwarders")


@dataclass(frozen=True)
class Topic:
    """A parsed bus topic.

    ``site`` is the publisher's site.  Site and VNF names must not
    contain ``/``; the site name must not contain ``_`` (it delimits the
    kind suffix, exactly as in the paper's ``site_A_instances`` format).
    """

    chain: str
    egress: str
    vnf: str
    site: str
    kind: str

    def __post_init__(self) -> None:
        for field_name in ("chain", "egress", "vnf", "site", "kind"):
            value = getattr(self, field_name)
            if not value or "/" in value:
                raise TopicError(f"invalid {field_name}: {value!r}")
        if "_" in self.site:
            raise TopicError(f"site name may not contain '_': {self.site!r}")
        if self.kind not in KINDS:
            raise TopicError(f"unknown kind {self.kind!r}; expected one of {KINDS}")

    def __str__(self) -> str:
        return f"/{self.chain}/{self.egress}/vnf_{self.vnf}/site_{self.site}_{self.kind}"

    @property
    def publisher_site(self) -> str:
        """The site whose proxy holds this topic's subscription filters."""
        return self.site

    @classmethod
    def parse(cls, raw: str) -> "Topic":
        """Parse ``/c1/e3/vnf_G/site_A_instances`` back into a Topic."""
        if not raw.startswith("/"):
            raise TopicError(f"topic must start with '/': {raw!r}")
        parts = raw[1:].split("/")
        if len(parts) != 4:
            raise TopicError(f"expected 4 segments, got {len(parts)}: {raw!r}")
        chain, egress, vnf_part, site_part = parts
        if not vnf_part.startswith("vnf_"):
            raise TopicError(f"third segment must be 'vnf_<name>': {raw!r}")
        vnf = vnf_part[len("vnf_"):]
        if not site_part.startswith("site_"):
            raise TopicError(f"fourth segment must be 'site_<site>_<kind>': {raw!r}")
        remainder = site_part[len("site_"):]
        site, sep, kind = remainder.rpartition("_")
        if not sep or not site:
            raise TopicError(f"fourth segment must be 'site_<site>_<kind>': {raw!r}")
        return cls(chain, egress, vnf, site, kind)
