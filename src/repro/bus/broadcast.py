"""Full-mesh broadcast baseline for the Figure 9 comparison.

"Full-mesh sends a separate copy of a message for each subscriber
whereas Switchboard only sends a single message for all subscribers at a
site.  Full-mesh results in excessive queuing of messages at the
publisher's site" (Section 6).

The baseline reuses the same physical topology (per-site proxies and a
finite-bandwidth, finite-buffer WAN uplink) so that the only difference
from :class:`~repro.bus.bus.GlobalMessageBus` is the fan-out unit:
per-subscriber instead of per-site, with no subscription filtering at
the publisher's proxy.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence, TYPE_CHECKING

from repro.bus.bus import (
    BusClient,
    BusError,
    BusStats,
    Delivery,
    build_bus_network,
    gateway_name,
    proxy_name,
)
from repro.bus.topics import Topic
from repro.simnet.network import SimNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class FullMeshBus:
    """Per-subscriber broadcast over the same proxy/uplink substrate."""

    MESSAGE_BYTES = 1000

    def __init__(
        self,
        network: SimNetwork,
        sites: Sequence[str],
        metrics: "MetricsRegistry | None" = None,
    ):
        self.network = network
        self.sites = list(sites)
        self.stats = BusStats()
        self.metrics = metrics
        self.clients: dict[str, BusClient] = {}
        #: Global subscriber registry: topic -> subscriber names.  In a
        #: full-mesh design every publisher knows every subscriber.
        self._subscribers: dict[str, list[str]] = {}
        for site in self.sites:
            self.network.host(proxy_name(site)).on_receive(
                self._make_proxy_receiver(site)
            )
            self.network.host(gateway_name(site)).on_receive(
                self._make_gateway_relay(site)
            )

    def attach(self, name: str, site: str) -> BusClient:
        if name in self.clients:
            raise BusError(f"duplicate client {name!r}")
        if site not in self.sites:
            raise BusError(f"unknown site {site!r}")
        client = BusClient(name, site)
        self.clients[name] = client
        host = self.network.add_host(name, site=site)
        host.on_receive(self._make_client_receiver(client))
        return client

    def subscribe(
        self,
        client_name: str,
        topic: Topic | str,
        callback: Callable[[str, Any], None] | None = None,
    ) -> None:
        topic = Topic.parse(topic) if isinstance(topic, str) else topic
        client = self._client(client_name)
        if callback is not None:
            client.callback = callback
        subscribers = self._subscribers.setdefault(str(topic), [])
        if client_name not in subscribers:
            subscribers.append(client_name)

    def unsubscribe(self, client_name: str, topic: Topic | str) -> None:
        topic = Topic.parse(topic) if isinstance(topic, str) else topic
        key = str(topic)
        subscribers = self._subscribers.get(key, [])
        if client_name in subscribers:
            subscribers.remove(client_name)
        if not subscribers:
            self._subscribers.pop(key, None)

    def publish(
        self,
        client_name: str,
        topic: Topic | str,
        payload: Any,
        size_bytes: int | None = None,
    ) -> None:
        topic = Topic.parse(topic) if isinstance(topic, str) else topic
        client = self._client(client_name)
        self.stats.published += 1
        message = {
            "kind": "pub",
            "topic": str(topic),
            "payload": payload,
            "published_at": self.network.sim.now,
            "size": size_bytes or self.MESSAGE_BYTES,
        }
        self.network.send(
            client.name,
            proxy_name(client.site),
            message,
            size_bytes or self.MESSAGE_BYTES,
        )

    # -- proxies -----------------------------------------------------------

    def _make_proxy_receiver(self, site: str):
        def receive(sender: str, message: dict) -> None:
            if message.get("kind") != "pub":
                return
            if sender == gateway_name(site) or "dest_client" in message:
                dest = message.get("dest_client")
                if dest is not None and self.clients.get(dest, None) is not None:
                    self.network.send(
                        proxy_name(site), dest, message, message["size"]
                    )
                return
            # Publisher's proxy: one copy per subscriber, every copy
            # pushed through the site's WAN uplink (or LAN for local
            # subscribers).
            for subscriber in self._subscribers.get(message["topic"], []):
                target = self.clients[subscriber]
                copy = {**message, "dest_client": subscriber}
                if target.site == site:
                    self.network.send(
                        proxy_name(site), subscriber, copy, message["size"]
                    )
                    continue
                self.stats.wan_messages += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "bus.wan_messages", site=site, topic=message["topic"]
                    ).inc()
                copy["dest_site"] = target.site
                sent = self.network.send(
                    proxy_name(site), gateway_name(site), copy, message["size"]
                )
                if not sent:
                    self.stats.wan_drops += 1
                    if self.metrics is not None:
                        self.metrics.counter(
                            "bus.wan_drops", site=site, topic=message["topic"]
                        ).inc()

        return receive

    def _make_gateway_relay(self, site: str):
        def relay(sender: str, message: dict) -> None:
            dest_site = message.get("dest_site")
            if dest_site is None:
                return
            self.network.send(
                gateway_name(site),
                proxy_name(dest_site),
                message,
                message["size"],
            )

        return relay

    def _make_client_receiver(self, client: BusClient):
        def receive(sender: str, message: dict) -> None:
            now = self.network.sim.now
            client.received.append((now, message["topic"], message["payload"]))
            self.stats.deliveries.append(
                Delivery(message["topic"], client.name, message["published_at"], now)
            )
            if client.callback is not None:
                client.callback(message["topic"], message["payload"])

        return receive

    def _client(self, name: str) -> BusClient:
        try:
            return self.clients[name]
        except KeyError:
            raise BusError(f"unknown client {name!r}") from None


def make_full_mesh_bus(
    sites: Sequence[str],
    wan_delay_s: Mapping[tuple[str, str], float] | float,
    uplink_bps: float = 100e6,
    uplink_buffer_bytes: int = 256_000,
    network: SimNetwork | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> FullMeshBus:
    """Build the network and a full-mesh bus in one call."""
    net = build_bus_network(
        sites, wan_delay_s, uplink_bps, uplink_buffer_bytes, network, metrics
    )
    return FullMeshBus(net, sites, metrics=metrics)
