"""The proxy-per-site global message bus.

Topology (per Section 6): every site runs a message-queuing proxy;
publishers and subscribers connect to their local proxy over the site
LAN.  A subscription for a topic is installed *at the proxy of the
topic's publisher site*.  Publishing sends the message once to the local
proxy; the proxy forwards one copy per subscribed *site* through the
site's WAN uplink; each receiving proxy fans out locally.

The WAN uplink (finite bandwidth + finite buffer) is the shared resource
whose queueing separates this design from full-mesh broadcast in
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence, TYPE_CHECKING

from repro.bus.topics import Topic
from repro.simnet.network import LinkSpec, SimNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class BusError(Exception):
    """Raised on invalid bus construction or use."""


@dataclass
class Delivery:
    """One delivered message, for latency accounting."""

    topic: str
    subscriber: str
    published_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.published_at


@dataclass
class BusStats:
    """Counters for bus comparisons (Figure 9)."""

    published: int = 0
    wan_messages: int = 0
    wan_drops: int = 0
    deliveries: list[Delivery] = field(default_factory=list)

    @property
    def delivered(self) -> int:
        return len(self.deliveries)

    def latencies(self) -> list[float]:
        return [d.latency for d in self.deliveries]

    def mean_latency(self) -> float:
        lats = self.latencies()
        return sum(lats) / len(lats) if lats else float("nan")

    def p99_latency(self) -> float:
        lats = sorted(self.latencies())
        if not lats:
            return float("nan")
        return lats[min(len(lats) - 1, int(0.99 * len(lats)))]


def proxy_name(site: str) -> str:
    return f"proxy.{site}"


def gateway_name(site: str) -> str:
    return f"wan.{site}"


def build_bus_network(
    sites: Sequence[str],
    wan_delay_s: Mapping[tuple[str, str], float] | float,
    uplink_bps: float = 100e6,
    uplink_buffer_bytes: int = 256_000,
    network: SimNetwork | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> SimNetwork:
    """Create the proxy + WAN-gateway hosts for a multi-site bus.

    Each site gets a proxy and a gateway; the proxy->gateway link is the
    site's shared WAN uplink (finite bandwidth and buffer -- the
    congestion point), and gateway->remote-proxy links carry the
    propagation delay.  ``wan_delay_s`` is either a per-pair map or one
    uniform one-way delay.
    """
    net = network if network is not None else SimNetwork(metrics=metrics)
    for site in sites:
        net.add_host(proxy_name(site), site=site)
        net.add_host(gateway_name(site), site=site)
        net.connect(
            proxy_name(site),
            gateway_name(site),
            LinkSpec(delay_s=0.0, bandwidth_bps=uplink_bps,
                     buffer_bytes=uplink_buffer_bytes),
            bidirectional=False,
        )
    for a in sites:
        for b in sites:
            if a == b:
                continue
            delay = (
                wan_delay_s
                if isinstance(wan_delay_s, (int, float))
                else wan_delay_s[(a, b)]
            )
            net.connect(
                gateway_name(a),
                proxy_name(b),
                LinkSpec(delay_s=float(delay)),
                bidirectional=False,
            )
    return net


@dataclass
class BusClient:
    """A publisher/subscriber attached to its site's proxy."""

    name: str
    site: str
    received: list[tuple[float, str, Any]] = field(default_factory=list)
    #: Fallback callback for deliveries on topics without their own.
    callback: Callable[[str, Any], None] | None = None
    #: Per-topic callbacks: one client (e.g. a Local Switchboard) can
    #: hold many concurrent subscriptions -- one per in-flight chain --
    #: without them clobbering each other.
    topic_callbacks: dict[str, Callable[[str, Any], None]] = field(
        default_factory=dict
    )


class GlobalMessageBus:
    """The Switchboard bus with publisher-site subscription filters."""

    #: Default control/data message size on the wire (bytes).
    MESSAGE_BYTES = 1000

    def __init__(
        self,
        network: SimNetwork,
        sites: Sequence[str],
        metrics: "MetricsRegistry | None" = None,
    ):
        self.network = network
        self.sites = list(sites)
        self.stats = BusStats()
        self.metrics = metrics
        self.clients: dict[str, BusClient] = {}
        # Publisher-site proxy state: topic -> set of subscriber sites.
        self._site_filters: dict[str, dict[str, set[str]]] = {
            site: {} for site in self.sites
        }
        # Subscriber-site proxy state: topic -> local subscriber names.
        self._local_subscribers: dict[str, dict[str, list[str]]] = {
            site: {} for site in self.sites
        }
        for site in self.sites:
            self.network.host(proxy_name(site)).on_receive(
                self._make_proxy_receiver(site)
            )

    # -- clients --------------------------------------------------------

    def attach(self, name: str, site: str) -> BusClient:
        """Attach a client host at a site (creates the host + LAN link)."""
        if name in self.clients:
            raise BusError(f"duplicate client {name!r}")
        if site not in self._site_filters:
            raise BusError(f"unknown site {site!r}")
        client = BusClient(name, site)
        self.clients[name] = client
        host = self.network.add_host(name, site=site)
        host.on_receive(self._make_client_receiver(client))
        return client

    def subscribe(
        self,
        client_name: str,
        topic: Topic | str,
        callback: Callable[[str, Any], None] | None = None,
    ) -> None:
        """Install a subscription.  Idempotent: re-subscribing an
        already-subscribed client only refreshes its callback.

        The ``callback`` is registered *for this topic*: a client with
        many live subscriptions (a Local Switchboard watching several
        in-flight chains) gets each topic's deliveries routed to that
        topic's callback, falling back to the client-wide
        :attr:`BusClient.callback` for topics without one.

        The filter lands at the proxy of the topic's *publisher* site
        (inferred from the topic); the subscriber's own proxy records the
        local fan-out entry.
        """
        topic = Topic.parse(topic) if isinstance(topic, str) else topic
        client = self._client(client_name)
        key = str(topic)
        if callback is not None:
            client.topic_callbacks[key] = callback
        publisher_site = topic.publisher_site
        if publisher_site not in self._site_filters:
            raise BusError(f"topic names unknown site {publisher_site!r}")
        self._site_filters[publisher_site].setdefault(key, set()).add(client.site)
        locals_ = self._local_subscribers[client.site].setdefault(key, [])
        if client.name not in locals_:
            locals_.append(client.name)
        if self.metrics is not None:
            self.metrics.counter("bus.subscriptions", topic=key).inc()

    def unsubscribe(self, client_name: str, topic: Topic | str) -> None:
        """Remove a subscription; the exact inverse of :meth:`subscribe`.
        When the last local subscriber for the topic leaves, the site's
        entry in the publisher-site filter is cleared too, so the
        publisher's proxy stops sending WAN copies this way."""
        topic = Topic.parse(topic) if isinstance(topic, str) else topic
        client = self._client(client_name)
        key = str(topic)
        locals_ = self._local_subscribers[client.site].get(key, [])
        client.topic_callbacks.pop(key, None)
        if client.name in locals_:
            locals_.remove(client.name)
        if not locals_:
            self._local_subscribers[client.site].pop(key, None)
            publisher_filters = self._site_filters[topic.publisher_site]
            sites = publisher_filters.get(key)
            if sites is not None:
                sites.discard(client.site)
                if not sites:
                    publisher_filters.pop(key, None)

    def publish(
        self,
        client_name: str,
        topic: Topic | str,
        payload: Any,
        size_bytes: int | None = None,
    ) -> bool:
        """Publish a message from a client (sent to its local proxy).

        Returns whether the *first hop* (client -> local proxy) was
        accepted by the network; ``False`` means the message is already
        an accounted drop (crashed client or proxy, dead local link).
        Delivery past the proxy is still best-effort -- WAN faults
        surface in :attr:`stats` -- so a ``True`` is not an end-to-end
        acknowledgement.  Callers needing reliable control-plane
        delivery should use :mod:`repro.resilience.rpc` instead.
        """
        topic = Topic.parse(topic) if isinstance(topic, str) else topic
        client = self._client(client_name)
        self.stats.published += 1
        if self.metrics is not None:
            self.metrics.counter("bus.published", topic=str(topic)).inc()
        message = {
            "kind": "pub",
            "topic": str(topic),
            "payload": payload,
            "published_at": self.network.sim.now,
            "size": size_bytes or self.MESSAGE_BYTES,
        }
        # strict=False: a crashed or removed proxy turns the publish
        # into an accounted drop rather than a NetworkError from deep
        # inside a fault scenario (see repro.chaos).
        return self.network.send(
            client.name,
            proxy_name(client.site),
            message,
            size_bytes or self.MESSAGE_BYTES,
            strict=False,
        )

    # -- proxy / client behaviour -------------------------------------------

    def _make_proxy_receiver(self, site: str):
        def receive(sender: str, message: dict) -> None:
            if message.get("kind") == "pub" and sender == gateway_name(site):
                # Arriving from the WAN: fan out to local subscribers.
                self._deliver_local(site, message)
            elif message.get("kind") == "pub":
                if sender in self.clients:
                    self._fan_out(site, message)
                else:
                    # Inter-proxy hop without gateway (not used in the
                    # default topology, but tolerate direct wiring).
                    self._deliver_local(site, message)

        return receive

    def _fan_out(self, site: str, message: dict) -> None:
        """Publisher-site proxy: one WAN copy per subscribed site."""
        key = message["topic"]
        subscriber_sites = self._site_filters[site].get(key, set())
        metrics = self.metrics
        for target_site in sorted(subscriber_sites):
            if target_site == site:
                self._deliver_local(site, message)
                continue
            self.stats.wan_messages += 1
            if metrics is not None:
                metrics.counter("bus.wan_messages", site=site, topic=key).inc()
            sent = self.network.send(
                proxy_name(site),
                gateway_name(site),
                {**message, "dest_site": target_site},
                message["size"],
                strict=False,
            )
            if not sent:
                self.stats.wan_drops += 1
                if metrics is not None:
                    metrics.counter("bus.wan_drops", site=site, topic=key).inc()

    def _deliver_local(self, site: str, message: dict) -> None:
        key = message["topic"]
        for subscriber in self._local_subscribers[site].get(key, []):
            self.network.send(
                proxy_name(site), subscriber, message, message["size"],
                strict=False,
            )

    def _make_client_receiver(self, client: BusClient):
        def receive(sender: str, message: dict) -> None:
            now = self.network.sim.now
            client.received.append((now, message["topic"], message["payload"]))
            self.stats.deliveries.append(
                Delivery(message["topic"], client.name, message["published_at"], now)
            )
            if self.metrics is not None:
                self.metrics.histogram(
                    "bus.delivery_latency_s", topic=message["topic"]
                ).observe(now - message["published_at"])
            callback = client.topic_callbacks.get(
                message["topic"], client.callback
            )
            if callback is not None:
                callback(message["topic"], message["payload"])

        return receive

    def _client(self, name: str) -> BusClient:
        try:
            return self.clients[name]
        except KeyError:
            raise BusError(f"unknown client {name!r}") from None


# Gateways relay WAN copies to the destination proxy.
def install_gateway_relays(bus: GlobalMessageBus) -> None:
    """Wire each site gateway to forward WAN copies to their destination
    proxies.  Called automatically by :func:`make_bus`."""
    for site in bus.sites:
        host = bus.network.host(gateway_name(site))

        def relay(sender: str, message: dict, _site: str = site) -> None:
            dest = message.get("dest_site")
            if dest is None:
                return
            bus.network.send(
                gateway_name(_site),
                proxy_name(dest),
                message,
                message["size"],
                strict=False,
            )

        host.on_receive(relay)


def make_bus(
    sites: Sequence[str],
    wan_delay_s: Mapping[tuple[str, str], float] | float,
    uplink_bps: float = 100e6,
    uplink_buffer_bytes: int = 256_000,
    network: SimNetwork | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> GlobalMessageBus:
    """Build the network and a ready-to-use proxy bus in one call."""
    net = build_bus_network(
        sites, wan_delay_s, uplink_bps, uplink_buffer_bytes, network, metrics
    )
    bus = GlobalMessageBus(net, sites, metrics=metrics)
    install_gateway_relays(bus)
    return bus
