"""The Switchboard global message bus (Section 6).

A publish/subscribe system with one message-queuing proxy per site.
Its defining optimization: subscription filters are installed at the
proxy of the *publisher's* site (inferred from the topic), so a site
with no subscribers for a topic never receives the message, and a site
with any subscribers receives exactly one copy over the shared
inter-proxy connection.  The full-mesh broadcast baseline of Figure 9
instead sends one copy per *subscriber*, all serialized through the
publisher site's uplink, which is what produces its order-of-magnitude
latency gap and buffer-overflow message drops.
"""

from repro.bus.aggregator import MessageAggregator
from repro.bus.broadcast import FullMeshBus, make_full_mesh_bus
from repro.bus.bus import (
    BusClient,
    BusStats,
    GlobalMessageBus,
    build_bus_network,
    make_bus,
)
from repro.bus.topics import Topic

__all__ = [
    "BusClient",
    "BusStats",
    "FullMeshBus",
    "GlobalMessageBus",
    "MessageAggregator",
    "Topic",
    "build_bus_network",
    "make_bus",
    "make_full_mesh_bus",
]
