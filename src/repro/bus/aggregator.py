"""Message aggregation at Local Switchboard (Section 3).

"The local Switchboard controls the horizontal scaling of forwarders at
the site and performs aggregation of messages sent either by or to
forwarders."  With tens of forwarders per site each publishing weight or
liveness updates, aggregation is what keeps the wide-area message count
per *site* rather than per *forwarder*.

:class:`MessageAggregator` batches items published under the same topic
within an aggregation window: the first item arms a timer; everything
collected until it fires is published as one combined message.  The
Figure 9 economics then improve by another factor of (items per window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bus.topics import Topic
from repro.simnet.events import EventHandle


class AggregatorError(Exception):
    """Raised on invalid aggregator configuration."""


@dataclass
class AggregatorStats:
    items_collected: int = 0
    batches_published: int = 0

    @property
    def compression(self) -> float:
        """Items per published batch (1.0 = no benefit)."""
        if self.batches_published == 0:
            return 1.0
        return self.items_collected / self.batches_published


@dataclass
class _PendingBatch:
    items: list[Any] = field(default_factory=list)
    timer: EventHandle | None = None


class MessageAggregator:
    """Batches per-topic items into windowed bus publications.

    ``bus`` is any object with a ``publish(client, topic, payload)``
    method and a ``network.sim`` clock (both bus implementations qualify);
    ``client`` is the Local Switchboard's bus client at this site.
    """

    def __init__(self, bus, client: str, window_s: float = 0.050):
        if window_s <= 0:
            raise AggregatorError(f"non-positive window {window_s}")
        self.bus = bus
        self.client = client
        self.window_s = window_s
        self.stats = AggregatorStats()
        self._pending: dict[str, _PendingBatch] = {}

    def collect(self, topic: Topic | str, item: Any) -> None:
        """Queue one item for the topic; arms the window timer if idle."""
        key = str(topic)
        batch = self._pending.setdefault(key, _PendingBatch())
        batch.items.append(item)
        self.stats.items_collected += 1
        if batch.timer is None or batch.timer.cancelled:
            batch.timer = self.bus.network.sim.schedule(
                self.window_s, self._flush, key
            )

    def flush_all(self) -> None:
        """Publish every pending batch immediately (e.g. on shutdown)."""
        for key in list(self._pending):
            batch = self._pending[key]
            if batch.timer is not None:
                batch.timer.cancel()
            self._flush(key)

    def pending_items(self, topic: Topic | str) -> int:
        batch = self._pending.get(str(topic))
        return len(batch.items) if batch else 0

    def _flush(self, key: str) -> None:
        batch = self._pending.pop(key, None)
        if batch is None or not batch.items:
            return
        self.bus.publish(
            self.client, key, {"batch": list(batch.items)}
        )
        self.stats.batches_published += 1
