"""Workload-scenario library and seeded scenario fuzzer.

Where :mod:`repro.chaos` schedules *faults* (link flaps, outages,
crashes), this package schedules *workload*: seeded, digested
schedules of chain create / remove / re-demand operations drawn from
a library of named scenarios -- diurnal multi-region waves, flash
crowds, regional evacuation cascades, mobile-CPE site churn,
multi-tenant Zipf mixes, and an adversarial worst-case matrix.  A
workload schedule composes with a fault schedule into one
:class:`~repro.scenarios.schedule.ComposedSchedule` whose SHA-256
digest identifies the whole run.

The fuzzer (``python -m repro fuzz --seed N``) samples random
compositions, plays them against both the monolithic soak stack and
the federated coordinator with invariant probes throughout, and
delta-debugs any violating schedule down to a minimal, replayable
repro (:mod:`repro.scenarios.minimize`).

Quick start::

    from repro.scenarios import FuzzConfig, run_fuzz
    report = run_fuzz(FuzzConfig(seed=1, cases=2, duration_s=12.0))
    assert report.passed, report.render()
"""

from repro.scenarios.apply import WorkloadEngine
from repro.scenarios.fuzzer import (
    PLANT_THRESHOLD,
    STACKS,
    FuzzCase,
    FuzzConfig,
    build_case,
    build_planted_case,
    minimize_case,
    replay_case,
    run_case,
    run_case_federation,
    run_case_mono,
    run_fuzz,
)
from repro.scenarios.library import (
    SCENARIO_CONFIGS,
    SCENARIO_KINDS,
    WorkloadContext,
    adversarial_matrix,
    diurnal_wave,
    evacuation_cascade,
    flash_crowd,
    generate,
    site_churn,
    zipf_mix,
)
from repro.scenarios.minimize import MinimizeResult, ddmin
from repro.scenarios.report import CaseResult, FuzzReport, StackResult
from repro.scenarios.schedule import (
    WORKLOAD_OPS,
    ComposedSchedule,
    ScheduleError,
    WorkloadOp,
    WorkloadSchedule,
    compose,
    merge_workloads,
)

__all__ = [
    "PLANT_THRESHOLD",
    "SCENARIO_CONFIGS",
    "SCENARIO_KINDS",
    "STACKS",
    "WORKLOAD_OPS",
    "CaseResult",
    "ComposedSchedule",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "MinimizeResult",
    "ScheduleError",
    "StackResult",
    "WorkloadContext",
    "WorkloadEngine",
    "WorkloadOp",
    "WorkloadSchedule",
    "adversarial_matrix",
    "build_case",
    "build_planted_case",
    "compose",
    "ddmin",
    "diurnal_wave",
    "evacuation_cascade",
    "flash_crowd",
    "generate",
    "merge_workloads",
    "minimize_case",
    "replay_case",
    "run_case",
    "run_case_federation",
    "run_case_mono",
    "run_fuzz",
    "site_churn",
    "zipf_mix",
]
