"""Schedule minimization: delta debugging over workload ops + faults.

When the fuzzer finds a violating composed schedule, raw reports are
painful -- dozens of ops and fault events, most of them irrelevant.
:func:`ddmin` is Zeller's classic delta-debugging algorithm over the
schedule's tagged item list: it keeps splitting the item set into
chunks, testing whether a chunk or its complement still violates, and
recurses on whatever smaller set does; a final greedy pass then tries
dropping each surviving item one by one.  The result is a 1-minimal
repro: removing any single remaining item makes the violation vanish.

The predicate re-runs a full soak per test, so the call budget is
capped (``max_tests``); with the default CI-scale cases (sub-second
soaks) a full minimization is a few seconds of wall clock.  The
algorithm itself is deterministic -- chunk boundaries derive only from
item order -- so one violating seed always minimizes to the same
digest, which is what the fuzz report commits to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class MinimizeResult:
    """Outcome of one minimization run."""

    items: list
    original_length: int
    tests_run: int
    #: True when the greedy pass confirmed 1-minimality within budget.
    one_minimal: bool

    @property
    def length(self) -> int:
        return len(self.items)

    @property
    def reduction(self) -> float:
        """Fraction of the original schedule removed (0..1)."""
        if self.original_length == 0:
            return 0.0
        return 1.0 - len(self.items) / self.original_length


def ddmin(
    items: Sequence[T],
    violates: Callable[[list[T]], bool],
    max_tests: int = 256,
) -> MinimizeResult:
    """Shrink ``items`` to a smaller list that still violates.

    ``violates`` must be deterministic and must hold for the full input
    (checked; raises ``ValueError`` otherwise so vacuous minimizations
    cannot slip through).  Items keep their relative order throughout.
    """
    current = list(items)
    tests = 0

    def test(candidate: list[T]) -> bool:
        nonlocal tests
        tests += 1
        return violates(candidate)

    if not test(current):
        raise ValueError("full schedule does not violate; nothing to minimize")

    granularity = 2
    while len(current) >= 2 and tests < max_tests:
        chunks = _split(current, granularity)
        reduced = False

        # Try each chunk alone, then each complement.
        for chunk in chunks:
            if tests >= max_tests:
                break
            if len(chunk) < len(current) and test(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if not reduced:
            for i in range(len(chunks)):
                if tests >= max_tests:
                    break
                complement = [
                    item for j, chunk in enumerate(chunks)
                    if j != i for item in chunk
                ]
                if len(complement) < len(current) and test(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    # Greedy 1-minimality pass: try dropping each item once.
    one_minimal = True
    i = 0
    while i < len(current) and len(current) > 1:
        if tests >= max_tests:
            one_minimal = False
            break
        candidate = current[:i] + current[i + 1:]
        if test(candidate):
            current = candidate
        else:
            i += 1

    return MinimizeResult(
        items=current,
        original_length=len(items),
        tests_run=tests,
        one_minimal=one_minimal,
    )


def _split(items: list[T], n: int) -> list[list[T]]:
    """Split into ``n`` contiguous chunks as evenly as possible."""
    n = min(n, len(items))
    size, rest = divmod(len(items), n)
    chunks: list[list[T]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < rest else 0)
        chunks.append(items[start:end])
        start = end
    return chunks
