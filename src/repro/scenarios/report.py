"""Fuzz reports: deterministic, replayable documents.

Like :class:`repro.chaos.runner.SoakReport`, a :class:`FuzzReport`
serializes only simulation-derived values -- never wall-clock timings
-- so two runs of the same seed produce byte-identical JSON.  The
report embeds each case's full composed schedule document, which is
what makes a violation *replayable*: feed the saved case back through
``python -m repro fuzz --replay FILE`` and the digest (and outcome)
must match.

``known_good_doc`` extracts the digest skeleton the CI replay gate
commits: per-case schedule digests plus the digest of the whole
report.  A code change that alters any generated schedule or any
case outcome flips those digests and fails the gate -- the committed
file is the regression net for the generator machinery itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


@dataclass
class StackResult:
    """Outcome of one composed schedule against one stack."""

    stack: str
    violations: list[dict] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_doc(self) -> dict:
        return {
            "stack": self.stack,
            "violations": self.violations,
            "counts": {k: v for k, v in sorted(self.counts.items())},
            "passed": self.passed,
        }


@dataclass
class CaseResult:
    """One fuzz case: its schedule, per-stack outcomes, and (when a
    stack violated) the minimized repro."""

    index: int
    kinds: tuple[str, ...]
    schedule_digest: str
    schedule_doc: dict
    workload_ops: int
    fault_events: int
    stacks: list[StackResult] = field(default_factory=list)
    #: Populated when minimization ran: stack, minimized digest + doc,
    #: item counts, predicate invocations.
    minimized: dict | None = None

    @property
    def passed(self) -> bool:
        return all(stack.passed for stack in self.stacks)

    def to_doc(self) -> dict:
        return {
            "index": self.index,
            "kinds": list(self.kinds),
            "schedule_digest": self.schedule_digest,
            "schedule": self.schedule_doc,
            "workload_ops": self.workload_ops,
            "fault_events": self.fault_events,
            "stacks": [stack.to_doc() for stack in self.stacks],
            "minimized": self.minimized,
            "passed": self.passed,
        }


@dataclass
class FuzzReport:
    """Outcome of one ``python -m repro fuzz`` run."""

    seed: int
    duration_s: float
    stacks: tuple[str, ...]
    cases_planned: int
    cases: list[CaseResult] = field(default_factory=list)
    budget_exhausted: bool = False
    planted: bool = False

    @property
    def cases_run(self) -> int:
        return len(self.cases)

    @property
    def passed(self) -> bool:
        """Green iff no case violated on any stack.

        A *planted* run inverts expectations -- it must find and
        minimize its planted violation -- so it passes iff every case
        failed and carries a minimized repro.
        """
        if self.planted:
            return bool(self.cases) and all(
                not case.passed and case.minimized is not None
                for case in self.cases
            )
        return all(case.passed for case in self.cases)

    def to_doc(self) -> dict:
        """Deterministic document: simulation-derived values only."""
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "stacks": list(self.stacks),
            "cases_planned": self.cases_planned,
            "cases_run": self.cases_run,
            "budget_exhausted": self.budget_exhausted,
            "planted": self.planted,
            "cases": [case.to_doc() for case in self.cases],
            "passed": self.passed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), separators=(",", ":"),
                          sort_keys=True)

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def known_good_doc(self) -> dict:
        """The digest skeleton the CI replay gate commits and checks."""
        return {
            "seed": self.seed,
            "cases": self.cases_run,
            "duration_s": self.duration_s,
            "stacks": list(self.stacks),
            "case_digests": {
                str(case.index): case.schedule_digest for case in self.cases
            },
            "report_digest": self.digest(),
        }

    def render(self) -> str:
        lines = [
            f"scenario fuzz: seed={self.seed} cases={self.cases_run}"
            f"/{self.cases_planned} duration={self.duration_s:g}s "
            f"stacks={','.join(self.stacks)}"
            + (" [planted]" if self.planted else ""),
        ]
        if self.budget_exhausted:
            lines.append(
                f"budget exhausted after {self.cases_run} case(s)"
            )
        for case in self.cases:
            lines.append(
                f"case {case.index}: {'+'.join(case.kinds)} "
                f"({case.workload_ops} ops, {case.fault_events} faults) "
                f"digest {case.schedule_digest[:16]}..."
            )
            for stack in case.stacks:
                if stack.passed:
                    lines.append(f"  {stack.stack}: PASS")
                else:
                    lines.append(
                        f"  {stack.stack}: FAIL "
                        f"({len(stack.violations)} violation(s))"
                    )
                    for violation in stack.violations[:5]:
                        lines.append(
                            f"    {violation.get('invariant', '?')}: "
                            f"{violation.get('detail', '')[:100]}"
                        )
            if case.minimized is not None:
                lines.append(
                    f"  minimized [{case.minimized['stack']}]: "
                    f"{case.minimized['items']} item(s) of "
                    f"{case.minimized['original_items']} "
                    f"({case.minimized['tests_run']} replays) -> "
                    f"digest {case.minimized['digest'][:16]}..."
                )
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)
