"""Seeded workload schedules: the workload-side twin of
:mod:`repro.chaos.scenario`.

A :class:`WorkloadSchedule` is a plain list of timed
:class:`WorkloadOp`\\ s -- chain creates, removes, and demand changes --
with no callbacks and no hidden state, so it serializes, diffs, and
replays byte-identically, exactly like a fault
:class:`~repro.chaos.scenario.Scenario`.  Ops reference *logical* site
indices and chain ids rather than concrete deployment names; each stack
(the monolithic soak deployment, the federated coordinator) maps them
onto its own sites, so one schedule exercises both.

A :class:`ComposedSchedule` pairs one workload schedule with one fault
scenario on a shared timeline.  Its digest covers both halves, which is
what the fuzzer minimizes over and what a replay is checked against.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.chaos.scenario import FaultEvent, Scenario, ScenarioError

#: Operation kinds understood by the workload engines.
WORKLOAD_OPS = ("create", "remove", "redemand")


class ScheduleError(Exception):
    """Raised on invalid workload-schedule construction."""


@dataclass(frozen=True)
class WorkloadOp:
    """One timed workload operation.

    ``chain`` is a logical chain id: pre-installed soak chains are
    addressed as ``chain<i>``; schedule-created chains use fresh
    ``wl-*`` ids.  ``ingress``/``egress`` are logical site indices
    (mapped modulo the deployment's site count); ``stages`` is the VNF
    count of a created chain.  ``value`` is the forward demand for
    ``create`` and the multiplicative demand factor (relative to the
    chain's current demand) for ``redemand``.
    """

    at: float
    op: str
    chain: str
    ingress: int = 0
    egress: int = 1
    stages: int = 1
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ScheduleError(f"op in the past: {self.at}")
        if self.op not in WORKLOAD_OPS:
            raise ScheduleError(f"unknown workload op {self.op!r}")
        if not self.chain:
            raise ScheduleError("op needs a chain id")
        if self.op == "create" and self.value <= 0:
            raise ScheduleError(f"create {self.chain!r}: non-positive demand")
        if self.op == "redemand" and self.value <= 0:
            raise ScheduleError(f"redemand {self.chain!r}: non-positive factor")
        if self.stages < 1:
            raise ScheduleError(f"{self.chain!r}: chain needs >= 1 stage")

    def to_doc(self) -> dict:
        return {
            "at": round(self.at, 9),
            "op": self.op,
            "chain": self.chain,
            "ingress": self.ingress,
            "egress": self.egress,
            "stages": self.stages,
            "value": round(self.value, 9),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "WorkloadOp":
        return cls(
            at=doc["at"],
            op=doc["op"],
            chain=doc["chain"],
            ingress=doc["ingress"],
            egress=doc["egress"],
            stages=doc["stages"],
            value=doc["value"],
        )


@dataclass
class WorkloadSchedule:
    """A reproducible workload schedule (ops sorted by time)."""

    kind: str
    seed: int
    duration_s: float
    ops: list[WorkloadOp] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ScheduleError("non-positive schedule duration")
        self.ops.sort(key=lambda o: (o.at, o.op, o.chain))

    def to_doc(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "ops": [op.to_doc() for op in self.ops],
        }

    def to_json(self) -> str:
        """Deterministic serialization: same seed -> same bytes."""
        return json.dumps(self.to_doc(), separators=(",", ":"),
                          sort_keys=True)

    @classmethod
    def from_doc(cls, doc: dict) -> "WorkloadSchedule":
        return cls(
            kind=doc["kind"],
            seed=doc["seed"],
            duration_s=doc["duration_s"],
            ops=[WorkloadOp.from_doc(d) for d in doc["ops"]],
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSchedule":
        return cls.from_doc(json.loads(text))

    def digest(self) -> str:
        """Stable content hash of the schedule (hex SHA-256)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for op in self.ops:
            out[op.op] = out.get(op.op, 0) + 1
        return out

    def with_ops(self, ops: Iterable[WorkloadOp]) -> "WorkloadSchedule":
        """Same identity, different op list (minimization subsets)."""
        return WorkloadSchedule(
            kind=self.kind, seed=self.seed, duration_s=self.duration_s,
            ops=list(ops),
        )


def merge_workloads(
    kind: str, schedules: Sequence[WorkloadSchedule]
) -> WorkloadSchedule:
    """Union the ops of several schedules onto one timeline.

    The merged schedule takes the first schedule's seed and the longest
    duration; chain ids must not collide across inputs (generators
    namespace their created chains by kind, so they never do).
    """
    if not schedules:
        raise ScheduleError("nothing to merge")
    created: dict[str, str] = {}
    ops: list[WorkloadOp] = []
    for schedule in schedules:
        for op in schedule.ops:
            if op.op == "create":
                owner = created.get(op.chain)
                if owner is not None and owner != schedule.kind:
                    raise ScheduleError(
                        f"chain id {op.chain!r} created by both "
                        f"{owner!r} and {schedule.kind!r}"
                    )
                created[op.chain] = schedule.kind
            ops.append(op)
    return WorkloadSchedule(
        kind=kind,
        seed=schedules[0].seed,
        duration_s=max(s.duration_s for s in schedules),
        ops=ops,
    )


@dataclass
class ComposedSchedule:
    """One workload schedule + one fault scenario on a shared timeline.

    This is the unit the fuzzer generates, replays, and minimizes: the
    digest covers both halves, and :meth:`with_items` rebuilds a
    composition from any subset of its tagged items (the delta-debugging
    subset operation).
    """

    workload: WorkloadSchedule
    faults: Scenario

    def to_doc(self) -> dict:
        return {
            "workload": self.workload.to_doc(),
            "faults": {
                "seed": self.faults.seed,
                "duration_s": self.faults.duration_s,
                "events": [e.to_doc() for e in self.faults.events],
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), separators=(",", ":"),
                          sort_keys=True)

    @classmethod
    def from_doc(cls, doc: dict) -> "ComposedSchedule":
        fdoc = doc["faults"]
        return cls(
            workload=WorkloadSchedule.from_doc(doc["workload"]),
            faults=Scenario(
                seed=fdoc["seed"],
                duration_s=fdoc["duration_s"],
                events=[FaultEvent.from_doc(e) for e in fdoc["events"]],
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ComposedSchedule":
        return cls.from_doc(json.loads(text))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- minimization support -------------------------------------------

    def items(self) -> list[tuple[str, object]]:
        """Tagged union of every schedulable item, time-ordered."""
        tagged: list[tuple[str, object]] = [
            ("workload", op) for op in self.workload.ops
        ]
        tagged.extend(("fault", event) for event in self.faults.events)
        tagged.sort(key=lambda pair: (_item_at(pair), pair[0]))
        return tagged

    def with_items(
        self, items: Iterable[tuple[str, object]]
    ) -> "ComposedSchedule":
        """Rebuild a composition holding only ``items``."""
        ops: list[WorkloadOp] = []
        events: list[FaultEvent] = []
        for tag, item in items:
            if tag == "workload":
                ops.append(item)  # type: ignore[arg-type]
            elif tag == "fault":
                events.append(item)  # type: ignore[arg-type]
            else:
                raise ScheduleError(f"unknown item tag {tag!r}")
        return ComposedSchedule(
            workload=self.workload.with_ops(ops),
            faults=Scenario(
                seed=self.faults.seed,
                duration_s=self.faults.duration_s,
                events=events,
            ),
        )

    def counts(self) -> dict[str, int]:
        out = {f"workload.{k}": v for k, v in self.workload.counts().items()}
        for kind, count in self.faults.counts().items():
            out[f"fault.{kind}"] = count
        return out


def _item_at(pair: tuple[str, object]) -> float:
    tag, item = pair
    return item.at  # type: ignore[union-attr]


def compose(workload: WorkloadSchedule, faults: Scenario) -> ComposedSchedule:
    """Pair a workload schedule with a fault scenario.

    Durations may differ (the soak runs to the longer horizon); both
    must be positive, which their constructors already enforce.
    """
    if not isinstance(faults, Scenario):  # defensive: common call-order slip
        raise ScenarioError("compose(workload, faults) takes a Scenario")
    return ComposedSchedule(workload=workload, faults=faults)
