"""The seeded scenario fuzzer.

``python -m repro fuzz --seed N`` composes random workload schedules
(drawn from the :mod:`repro.scenarios.library` kinds) with random fault
schedules (:func:`repro.chaos.scenario.generate_scenario`) and plays
each composition against two stacks:

- **mono** -- the full monolithic soak deployment
  (:func:`repro.chaos.runner.run_soak`): simulated network, proxy bus,
  2PC installer, the whole invariant-probe registry on the sim clock;
- **federation** -- a :class:`~repro.federation.GlobalCoordinator`
  driven op by op with a seeded
  :class:`~repro.federation.soak.FaultPolicy`, probing the federation
  invariants after every op.

Everything derives from one integer seed, so a run replays
byte-identically; when a stack violates, the composed schedule is
delta-debugged (:mod:`repro.scenarios.minimize`) down to a 1-minimal
repro whose digest and full document land in the report.  An escaped
exception is a finding too -- it is recorded as a ``crash`` violation
and minimized like any other.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.scenarios.library import (
    SCENARIO_KINDS,
    WorkloadContext,
    generate,
)
from repro.scenarios.minimize import ddmin
from repro.scenarios.report import CaseResult, FuzzReport, StackResult
from repro.scenarios.schedule import (
    ComposedSchedule,
    WorkloadOp,
    WorkloadSchedule,
    compose,
    merge_workloads,
)

#: Redemand factor at or above which the planted probe fires (the
#: self-test violation the minimizer must be able to isolate).
PLANT_THRESHOLD = 2.5
_PLANT_FACTOR = 3.0

#: Stacks the fuzzer knows how to drive.
STACKS = ("mono", "federation")


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzz run.  Everything random derives from ``seed``."""

    seed: int = 1
    cases: int = 3
    #: Wall-clock budget in seconds; when set, no *new* case starts
    #: after it is spent (the in-flight case always completes).  Budget
    #: mode trades byte-identical reports for bounded runtime -- the
    #: nightly lane uses it, the replay gate never does.
    budget_s: float | None = None
    duration_s: float = 16.0
    stacks: tuple[str, ...] = STACKS
    minimize: bool = True
    max_minimize_tests: int = 80
    #: Self-test mode: plant a violation the probes must detect and the
    #: minimizer must isolate (run passes iff that happens).
    plant: bool = False


@dataclass(frozen=True)
class FuzzCase:
    """One composed schedule plus the stack parameters to replay it."""

    index: int
    kinds: tuple[str, ...]
    composed: ComposedSchedule
    deployment_seed: int
    fed_seed: int
    fed_reject_rate: float
    fed_crash_rate: float
    fed_pops: int = 10
    fed_regions: int = 2
    fed_chains: int = 16
    planted: bool = False

    def to_doc(self) -> dict:
        return {
            "composed": self.composed.to_doc(),
            "params": {
                "index": self.index,
                "kinds": list(self.kinds),
                "deployment_seed": self.deployment_seed,
                "fed_seed": self.fed_seed,
                "fed_reject_rate": round(self.fed_reject_rate, 9),
                "fed_crash_rate": round(self.fed_crash_rate, 9),
                "fed_pops": self.fed_pops,
                "fed_regions": self.fed_regions,
                "fed_chains": self.fed_chains,
                "planted": self.planted,
            },
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FuzzCase":
        params = doc["params"]
        return cls(
            index=params["index"],
            kinds=tuple(params["kinds"]),
            composed=ComposedSchedule.from_doc(doc["composed"]),
            deployment_seed=params["deployment_seed"],
            fed_seed=params["fed_seed"],
            fed_reject_rate=params["fed_reject_rate"],
            fed_crash_rate=params["fed_crash_rate"],
            fed_pops=params["fed_pops"],
            fed_regions=params["fed_regions"],
            fed_chains=params["fed_chains"],
            planted=params["planted"],
        )

    def horizon_s(self) -> float:
        return max(self.composed.workload.duration_s,
                   self.composed.faults.duration_s)


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------


def build_case(config: FuzzConfig, index: int) -> FuzzCase:
    """Draw one random-but-reproducible composed case."""
    rng = random.Random(f"fuzz-{config.seed}-{index}")
    ctx = WorkloadContext()
    n_kinds = 1 + (rng.random() < 0.5)
    kinds = tuple(rng.sample(sorted(SCENARIO_KINDS), n_kinds))
    schedules = [
        generate(kind, config.seed * 1000 + index, ctx,
                 duration_s=config.duration_s)
        for kind in kinds
    ]
    workload = (
        schedules[0] if len(schedules) == 1
        else merge_workloads("+".join(kinds), schedules)
    )
    faults = _draw_fault_scenario(rng, config.duration_s)
    return FuzzCase(
        index=index,
        kinds=kinds,
        composed=compose(workload, faults),
        deployment_seed=rng.randrange(1_000_000),
        fed_seed=rng.randrange(1_000_000),
        fed_reject_rate=round(rng.uniform(0.0, 0.3), 6),
        fed_crash_rate=round(rng.uniform(0.0, 0.25), 6),
    )


def build_planted_case(config: FuzzConfig, index: int) -> FuzzCase:
    """A self-test case: churn workload + one planted surge op the
    planted probe is guaranteed to flag."""
    base = generate("site_churn", config.seed * 1000 + index,
                    WorkloadContext(), duration_s=config.duration_s)
    planted = WorkloadSchedule(
        kind="planted_surge", seed=config.seed,
        duration_s=config.duration_s,
        ops=[
            WorkloadOp(
                at=0.6 * config.duration_s, op="redemand", chain="chain0",
                value=_PLANT_FACTOR,
            )
        ],
    )
    workload = merge_workloads("site_churn+planted_surge", [base, planted])
    rng = random.Random(f"fuzz-plant-{config.seed}-{index}")
    faults = _draw_fault_scenario(rng, config.duration_s, quiet=True)
    return FuzzCase(
        index=index,
        kinds=("site_churn", "planted_surge"),
        composed=compose(workload, faults),
        deployment_seed=rng.randrange(1_000_000),
        fed_seed=rng.randrange(1_000_000),
        fed_reject_rate=0.0,
        fed_crash_rate=0.0,
        planted=True,
    )


def _draw_fault_scenario(rng: random.Random, duration_s: float,
                         quiet: bool = False):
    from repro.bus.bus import proxy_name
    from repro.chaos.runner import SITES
    from repro.chaos.scenario import ScenarioConfig, generate_scenario

    if quiet:
        scenario_config = ScenarioConfig(
            duration_s=duration_s, link_flaps=1, loss_windows=0,
            degrade_windows=0, site_outage=False, proxy_crash=False,
            leader_kill=False,
        )
    else:
        scenario_config = ScenarioConfig(
            duration_s=duration_s,
            link_flaps=rng.randrange(0, 4),
            loss_windows=rng.randrange(0, 2),
            degrade_windows=rng.randrange(0, 2),
            site_outage=rng.random() < 0.5,
            proxy_crash=rng.random() < 0.5,
            leader_kill=rng.random() < 0.5,
            partition=rng.random() < 0.25,
        )
    wan_pairs = [
        (f"wan.{a}", proxy_name(b))
        for a in SITES for b in SITES if a != b
    ]
    return generate_scenario(
        rng.randrange(1_000_000), SITES, wan_pairs, scenario_config
    )


# ---------------------------------------------------------------------------
# Stack runners
# ---------------------------------------------------------------------------


def _planted_probes(engine) -> dict:
    def probe() -> list[str]:
        if engine.max_redemand_factor >= PLANT_THRESHOLD:
            return [
                f"planted: redemand factor "
                f"{engine.max_redemand_factor:g} >= {PLANT_THRESHOLD:g}"
            ]
        return []

    return {"planted_redemand_surge": probe}


def run_case_mono(
    case: FuzzCase, composed: ComposedSchedule | None = None
) -> StackResult:
    """Play one composition against the monolithic soak deployment."""
    from repro.chaos.runner import SoakConfig, run_soak

    composed = composed if composed is not None else case.composed
    soak_config = SoakConfig(
        seed=case.deployment_seed,
        duration_s=case.horizon_s(),
    )
    try:
        soak = run_soak(
            soak_config,
            scenario=composed.faults,
            workload=composed.workload,
            workload_probes=_planted_probes if case.planted else None,
        )
    except Exception as exc:  # an escaped exception IS a finding
        return StackResult(
            stack="mono",
            violations=[{
                "at": -1.0,
                "invariant": "crash",
                "detail": f"{type(exc).__name__}: {exc}",
            }],
        )
    return StackResult(
        stack="mono",
        violations=[
            {"at": round(v.at, 9), "invariant": v.invariant,
             "detail": v.detail}
            for v in soak.violations
        ],
        counts={
            **soak.workload_counts,
            "workload_ops_applied": soak.workload_ops_applied,
            "fault_events_applied": len(soak.events_applied),
        },
    )


def run_case_federation(
    case: FuzzCase, composed: ComposedSchedule | None = None
) -> StackResult:
    """Drive the workload half op by op against a federated coordinator
    under a seeded fault policy, probing invariants after every op.

    Fault events of the composition do not apply here (there is no
    simulated network under this stack); the federated fault dimension
    is the seeded reject/crash policy instead, and both are covered by
    the case parameters so a replay is exact.
    """
    from repro.core.lp import LpObjective
    from repro.federation.coordinator import (
        CoordinatorCrash,
        GlobalCoordinator,
    )
    from repro.federation.invariants import federation_probes
    from repro.federation.shard import FederationError
    from repro.federation.soak import FaultPolicy
    from repro.topology.pops import PopGridConfig, generate_federation_workload

    try:
        model, _metro_of = generate_federation_workload(
            PopGridConfig(
                num_pops=case.fed_pops,
                num_metros=case.fed_regions,
                num_chains=case.fed_chains,
                num_vnfs=6,
                seed=case.fed_seed,
            )
        )
        coordinator = GlobalCoordinator(
            model,
            n_regions=case.fed_regions,
            partition_size=8,
            max_workers=1,
            fault_policy=FaultPolicy(
                seed=case.fed_seed,
                reject_rate=case.fed_reject_rate,
                crash_rate=case.fed_crash_rate,
            ),
        )

        # Installed base: every generated chain, minus what the policy
        # rejects/crashes on the way in.
        base_chains = sorted(model.chains.values(), key=lambda c: c.name)
        for chain in base_chains:
            model.remove_chain(chain.name)
        counts = {
            "created": 0, "create_rejected": 0, "removed": 0,
            "remove_skipped": 0, "redemanded": 0, "redemand_skipped": 0,
            "crashes": 0, "swept": 0,
        }
        for chain in base_chains:
            try:
                coordinator.submit(chain)
            except CoordinatorCrash:
                counts["crashes"] += 1
                counts["swept"] += len(coordinator.sweep())
            except FederationError:
                pass

        base = sorted(coordinator.installed())
        nodes = list(model.nodes)
        vnf_names = sorted(model.vnfs)
        violations: list[dict] = []
        last_plan = None
        probes = federation_probes(
            lambda: coordinator,
            plan_of=lambda: last_plan,
            quiescent=True,
        )

        def probe(op_label: str) -> None:
            for invariant, check in probes.items():
                for problem in check():
                    violations.append({
                        "op": op_label,
                        "invariant": invariant,
                        "detail": problem,
                    })

        def resolve_chain_id(chain_id: str) -> str:
            # Logical soak ids ("chain<i>") map onto the installed
            # base; schedule-created ("wl-*") ids are used verbatim.
            if chain_id.startswith("chain") and base:
                try:
                    i = int(chain_id[len("chain"):])
                except ValueError:
                    return chain_id
                return base[i % len(base)]
            return chain_id

        composed = composed if composed is not None else case.composed
        for op in composed.workload.ops:
            name = resolve_chain_id(op.chain)
            label = f"{op.op}:{name}"
            if op.op == "create":
                ingress = nodes[op.ingress % len(nodes)]
                egress = nodes[op.egress % len(nodes)]
                if egress == ingress:
                    egress = nodes[(op.egress + 1) % len(nodes)]
                stages = max(1, min(op.stages, len(vnf_names)))
                vnfs = [
                    vnf_names[(op.ingress + j) % len(vnf_names)]
                    for j in range(stages)
                ]
                vnfs = list(dict.fromkeys(vnfs))
                from repro.core.model import Chain

                chain = Chain(name, ingress, egress, vnfs,
                              op.value, op.value * 0.25)
                try:
                    coordinator.submit(chain)
                    counts["created"] += 1
                except CoordinatorCrash:
                    counts["crashes"] += 1
                    counts["swept"] += len(coordinator.sweep())
                except FederationError:
                    counts["create_rejected"] += 1
                last_plan = None
            elif op.op == "remove":
                if name not in set(coordinator.installed()):
                    counts["remove_skipped"] += 1
                    continue
                coordinator.remove(name)
                counts["removed"] += 1
                last_plan = None
            elif op.op == "redemand":
                if (name not in set(coordinator.installed())
                        or name not in model.chains):
                    counts["redemand_skipped"] += 1
                    continue
                original = model.chains[name]
                model.remove_chain(name)
                model.add_chain(original.scaled(op.value))
                last_plan = None
                try:
                    last_plan = coordinator.resolve(
                        model, [name], LpObjective.MAX_THROUGHPUT
                    )
                    counts["redemanded"] += 1
                except FederationError:
                    # The scaled demand does not fit a border: revert.
                    model.remove_chain(name)
                    model.add_chain(original)
                    counts["redemand_skipped"] += 1
            probe(label)

        last_plan = coordinator.plan_all(LpObjective.MAX_THROUGHPUT)
        probe("final_plan")
    except Exception as exc:  # an escaped exception IS a finding
        return StackResult(
            stack="federation",
            violations=[{
                "op": "crash",
                "invariant": "crash",
                "detail": f"{type(exc).__name__}: {exc}",
            }],
        )
    return StackResult(
        stack="federation", violations=violations, counts=counts
    )


_STACK_RUNNERS = {
    "mono": run_case_mono,
    "federation": run_case_federation,
}


# ---------------------------------------------------------------------------
# Fuzz loop
# ---------------------------------------------------------------------------


def run_case(case: FuzzCase, config: FuzzConfig) -> CaseResult:
    """Run one case on every configured stack, minimizing on failure."""
    composed = case.composed
    result = CaseResult(
        index=case.index,
        kinds=case.kinds,
        schedule_digest=composed.digest(),
        schedule_doc=case.to_doc(),
        workload_ops=len(composed.workload.ops),
        fault_events=len(composed.faults.events),
    )
    stacks = ("mono",) if case.planted else config.stacks
    for stack in stacks:
        result.stacks.append(_STACK_RUNNERS[stack](case))

    failing = next((s for s in result.stacks if not s.passed), None)
    if failing is not None and config.minimize:
        result.minimized = minimize_case(
            case, failing.stack, max_tests=config.max_minimize_tests
        )
    return result


def minimize_case(
    case: FuzzCase, stack: str, max_tests: int = 80
) -> dict:
    """Delta-debug the case's composed schedule on the failing stack."""
    runner = _STACK_RUNNERS[stack]
    composed = case.composed

    def violates(items: list) -> bool:
        candidate = composed.with_items(items)
        return not runner(case, candidate).passed

    outcome = ddmin(composed.items(), violates, max_tests=max_tests)
    minimal = composed.with_items(outcome.items)
    # The minimized repro embeds the case params so it feeds straight
    # back through ``replay_case`` / ``python -m repro fuzz --replay``.
    return {
        "stack": stack,
        "digest": minimal.digest(),
        "schedule": {
            "composed": minimal.to_doc(),
            "params": case.to_doc()["params"],
        },
        "items": outcome.length,
        "original_items": outcome.original_length,
        "workload_ops": len(minimal.workload.ops),
        "fault_events": len(minimal.faults.events),
        "tests_run": outcome.tests_run,
        "one_minimal": outcome.one_minimal,
    }


def run_fuzz(config: FuzzConfig | None = None) -> FuzzReport:
    """Run one seeded fuzz campaign end to end."""
    config = config or FuzzConfig()
    report = FuzzReport(
        seed=config.seed,
        duration_s=config.duration_s,
        stacks=config.stacks,
        cases_planned=config.cases,
        planted=config.plant,
    )
    started = time.monotonic()
    for index in range(config.cases):
        if (
            config.budget_s is not None
            and index > 0
            and time.monotonic() - started >= config.budget_s
        ):
            report.budget_exhausted = True
            break
        case = (
            build_planted_case(config, index) if config.plant
            else build_case(config, index)
        )
        report.cases.append(run_case(case, config))
    return report


def replay_case(case_doc: dict, config: FuzzConfig | None = None) -> CaseResult:
    """Replay a saved case document (e.g. a minimized repro) exactly."""
    config = config or FuzzConfig(minimize=False)
    case = FuzzCase.from_doc(case_doc)
    return run_case(case, config)
