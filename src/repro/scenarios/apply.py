"""Apply a workload schedule to the monolithic soak deployment.

The :class:`WorkloadEngine` is the workload-side twin of
:class:`repro.chaos.runner.ChaosEngine`: it maps timed
:class:`~repro.scenarios.schedule.WorkloadOp`\\ s onto the Global
Switchboard's chain lifecycle entry points on the simulated clock.

The engine is deliberately *tolerant*: a create that the controller
rejects (capacity, failed site) is recorded as a rejection, and a
remove/redemand whose chain is not installed is recorded as a skip --
never an exception.  Tolerance is what makes delta-debugging sound:
the minimizer may drop a ``create`` while keeping its ``remove``, and
the subset must still run to completion so the violation predicate is
meaningful.  Anything *else* that escapes an op is a genuine finding
and propagates to the fuzzer, which records it as a crash violation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controller import ChainSpecification
from repro.controller.chainspec import SpecError
from repro.controller.global_switchboard import InstallationError
from repro.controller.reoptimize import reoptimize
from repro.scenarios.schedule import WorkloadOp, WorkloadSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.runner import Deployment

#: VNF services every soak deployment registers (see
#: ``repro.chaos.runner.build_deployment``).
DEPLOYMENT_VNFS = ("fw", "nat")


class WorkloadEngine:
    """Timed application of workload ops against a soak deployment."""

    def __init__(self, deployment: "Deployment"):
        self.d = deployment
        self.applied: list[tuple[float, str, str]] = []
        self.counts: dict[str, int] = {
            "created": 0,
            "create_rejected": 0,
            "removed": 0,
            "remove_skipped": 0,
            "redemanded": 0,
            "redemand_skipped": 0,
        }
        #: Largest redemand factor actually applied; the planted-probe
        #: self-tests key off this so the fuzz pipeline is provably
        #: non-vacuous.
        self.max_redemand_factor = 0.0
        self._prefix_serial = 0

    # -- scheduling -----------------------------------------------------

    def schedule(self, workload: WorkloadSchedule) -> None:
        for op in workload.ops:
            self.d.sim.schedule_at(op.at, self._apply, op)

    # -- op application -------------------------------------------------

    def _site(self, index: int) -> str:
        return self.d.sites[index % len(self.d.sites)]

    def _apply(self, op: WorkloadOp) -> None:
        handler = getattr(self, f"_on_{op.op}")
        handler(op)
        self.applied.append((round(self.d.sim.now, 9), op.op, op.chain))

    def _on_create(self, op: WorkloadOp) -> None:
        ingress = self._site(op.ingress)
        egress = self._site(op.egress)
        if egress == ingress:
            egress = self._site(op.egress + 1)
        self._prefix_serial += 1
        serial = self._prefix_serial
        try:
            spec = ChainSpecification(
                op.chain, "vpn", f"att-{ingress}", f"att-{egress}",
                DEPLOYMENT_VNFS[: max(1, min(op.stages,
                                             len(DEPLOYMENT_VNFS)))],
                forward_demand=op.value,
                reverse_demand=op.value * 0.25,
                dst_prefixes=[f"23.{serial // 256}.{serial % 256}.0/24"],
            )
            self.d.gs.create_chain(spec)
        except (InstallationError, SpecError):
            self.counts["create_rejected"] += 1
            return
        self.counts["created"] += 1

    def _on_remove(self, op: WorkloadOp) -> None:
        if op.chain not in self.d.gs.installations:
            self.counts["remove_skipped"] += 1
            return
        self.d.gs.remove_chain(op.chain)
        self.counts["removed"] += 1

    def _on_redemand(self, op: WorkloadOp) -> None:
        if op.chain not in self.d.gs.installations:
            self.counts["redemand_skipped"] += 1
            return
        reoptimize(self.d.gs, {op.chain: op.value}, threshold=0.0)
        self.counts["redemanded"] += 1
        self.max_redemand_factor = max(self.max_redemand_factor, op.value)
