"""The workload-scenario library: seeded generators for the ROADMAP's
scenario-diversity mix.

Each generator is a pure function ``(seed, ctx, config) ->``
:class:`~repro.scenarios.schedule.WorkloadSchedule`: every random draw
comes from ``random.Random`` seeded on ``(kind, seed)``, so one integer
seed reproduces the schedule byte-identically (asserted by the scenario
tests and surfaced as the schedule digest in fuzz reports).

The six kinds, generalizing the hand-picked workloads the benches
already drive:

- **diurnal_wave** -- per-site phase-offset demand waves (the
  ``ext_diurnal_reoptimization`` bench generalized to any deployment):
  periodic ``redemand`` ops walk every base chain through a day curve,
  with each logical site in its own timezone phase.
- **flash_crowd** -- a sudden crowd on one hot site: a burst of
  short-lived high-demand chains ramps up within seconds, holds, then
  drains.
- **evacuation_cascade** -- a regional evacuation: every chain homed at
  the evacuated site is torn down and re-created elsewhere, site after
  site, the wave overlapping with the next site's drain.
- **site_churn** -- mobile-CPE churn: a steady arrival process of
  short-lived, low-demand chains at random sites, each with its own
  departure.
- **zipf_mix** -- multi-tenant Zipf mix: tenants hold Zipf-distributed
  shares of chains and demand, arriving throughout the run with a tail
  of removals, so a few heavy tenants dominate while many small ones
  churn.
- **adversarial_matrix** -- worst-case matrix: every create targets the
  same site pair with maximal chain length and capacity-edge demands,
  and every base chain surges at once -- built to sit on admission and
  capacity boundaries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.scenarios.schedule import (
    ScheduleError,
    WorkloadOp,
    WorkloadSchedule,
)


@dataclass(frozen=True)
class WorkloadContext:
    """What a generator may assume about the target deployment.

    Matches the chaos soak defaults (:mod:`repro.chaos.runner`): sites
    are addressed as logical indices ``0 .. num_sites-1``, the
    pre-installed population is ``chain0 .. chain<num_base_chains-1>``
    with ``base_demand`` forward units each, and created chains may use
    up to ``max_stages`` VNFs.
    """

    num_sites: int = 4
    num_base_chains: int = 8
    base_demand: float = 3.0
    max_stages: int = 2

    def base_chain(self, i: int) -> str:
        return f"chain{i % max(1, self.num_base_chains)}"


def _rng(kind: str, seed: int) -> random.Random:
    return random.Random(f"scenario-{kind}-{seed}")


def _pick_pair(rng: random.Random, ctx: WorkloadContext) -> tuple[int, int]:
    ingress = rng.randrange(ctx.num_sites)
    egress = rng.randrange(ctx.num_sites - 1)
    if egress >= ingress:
        egress += 1
    return ingress, egress


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiurnalConfig:
    duration_s: float = 24.0
    epochs: int = 6
    amplitude: float = 0.5          # peak-to-mean demand swing
    min_factor: float = 0.25        # relative-step clamp


def diurnal_wave(
    seed: int, ctx: WorkloadContext, config: DiurnalConfig | None = None
) -> WorkloadSchedule:
    """Multi-region diurnal demand waves over the base population.

    Each base chain follows a sinusoidal day curve whose phase is set by
    its home site (``i % num_sites``), so peaks roll around the regions
    the way evening traffic rolls around timezones.  Ops carry
    *relative* factors (new demand / current demand), matching
    :func:`repro.controller.reoptimize.reoptimize` semantics.
    """
    config = config or DiurnalConfig()
    rng = _rng("diurnal_wave", seed)
    ops: list[WorkloadOp] = []
    jitter = [rng.uniform(-0.05, 0.05) for _ in range(ctx.num_base_chains)]
    current = [1.0] * ctx.num_base_chains
    for epoch in range(1, config.epochs + 1):
        at = config.duration_s * epoch / (config.epochs + 1)
        day_angle = 2 * math.pi * epoch / (config.epochs + 1)
        for i in range(ctx.num_base_chains):
            phase = 2 * math.pi * (i % ctx.num_sites) / ctx.num_sites
            target = 1.0 + config.amplitude * math.sin(
                day_angle + phase
            ) + jitter[i]
            target = max(config.min_factor, target)
            step = target / current[i]
            if abs(step - 1.0) < 1e-3:
                continue
            current[i] = target
            ops.append(
                WorkloadOp(
                    at=at, op="redemand", chain=ctx.base_chain(i),
                    value=round(step, 6),
                )
            )
    return WorkloadSchedule(
        kind="diurnal_wave", seed=seed, duration_s=config.duration_s, ops=ops
    )


@dataclass(frozen=True)
class FlashCrowdConfig:
    duration_s: float = 24.0
    crowd_chains: int = 6
    ramp_s: float = 2.0
    hold_s: float = 6.0
    demand_factor: float = 1.5      # per-crowd-chain demand vs base


def flash_crowd(
    seed: int, ctx: WorkloadContext, config: FlashCrowdConfig | None = None
) -> WorkloadSchedule:
    """A flash crowd converging on one hot site, then draining."""
    config = config or FlashCrowdConfig()
    rng = _rng("flash_crowd", seed)
    hot = rng.randrange(ctx.num_sites)
    start = rng.uniform(0.2, 0.5) * config.duration_s
    ops: list[WorkloadOp] = []
    for i in range(config.crowd_chains):
        ingress = rng.randrange(ctx.num_sites - 1)
        if ingress >= hot:
            ingress += 1
        born = start + config.ramp_s * i / max(1, config.crowd_chains)
        died = min(
            born + config.hold_s + rng.uniform(0.0, config.ramp_s),
            0.95 * config.duration_s,
        )
        name = f"wl-flash-{i}"
        demand = round(config.demand_factor * ctx.base_demand, 6)
        ops.append(
            WorkloadOp(
                at=born, op="create", chain=name,
                ingress=ingress, egress=hot,
                stages=1 + rng.randrange(ctx.max_stages),
                value=demand,
            )
        )
        ops.append(WorkloadOp(at=died, op="remove", chain=name))
    return WorkloadSchedule(
        kind="flash_crowd", seed=seed, duration_s=config.duration_s, ops=ops
    )


@dataclass(frozen=True)
class EvacuationConfig:
    duration_s: float = 24.0
    sites_evacuated: int = 2
    wave_s: float = 4.0


def evacuation_cascade(
    seed: int, ctx: WorkloadContext, config: EvacuationConfig | None = None
) -> WorkloadSchedule:
    """Regional evacuation cascade: drain one site onto the others,
    then the next, the waves overlapping."""
    config = config or EvacuationConfig()
    rng = _rng("evacuation_cascade", seed)
    order = list(range(ctx.num_sites))
    rng.shuffle(order)
    evacuated = order[: max(1, min(config.sites_evacuated, ctx.num_sites - 1))]
    survivors = [s for s in range(ctx.num_sites) if s not in evacuated]
    ops: list[WorkloadOp] = []
    start = rng.uniform(0.15, 0.3) * config.duration_s
    serial = 0
    for wave, site in enumerate(evacuated):
        wave_start = start + wave * 0.6 * config.wave_s
        homed = [
            i for i in range(ctx.num_base_chains) if i % ctx.num_sites == site
        ]
        for k, i in enumerate(homed):
            at = wave_start + config.wave_s * (k + 1) / (len(homed) + 1)
            ops.append(
                WorkloadOp(at=at, op="remove", chain=ctx.base_chain(i))
            )
            refuge = rng.choice(survivors)
            egress = rng.choice(
                [s for s in range(ctx.num_sites) if s != refuge]
            )
            ops.append(
                WorkloadOp(
                    at=at + 0.5, op="create",
                    chain=f"wl-evac-{serial}",
                    ingress=refuge, egress=egress,
                    stages=1 + rng.randrange(ctx.max_stages),
                    value=round(ctx.base_demand, 6),
                )
            )
            serial += 1
    return WorkloadSchedule(
        kind="evacuation_cascade", seed=seed, duration_s=config.duration_s,
        ops=ops,
    )


@dataclass(frozen=True)
class ChurnConfig:
    duration_s: float = 24.0
    arrivals: int = 10
    min_life_s: float = 2.0
    max_life_s: float = 8.0
    demand_factor: float = 0.4      # CPE chains are small


def site_churn(
    seed: int, ctx: WorkloadContext, config: ChurnConfig | None = None
) -> WorkloadSchedule:
    """Mobile-CPE site churn: short-lived small chains arriving and
    departing at random sites throughout the run."""
    config = config or ChurnConfig()
    rng = _rng("site_churn", seed)
    ops: list[WorkloadOp] = []
    for i in range(config.arrivals):
        born = rng.uniform(0.05, 0.8) * config.duration_s
        life = rng.uniform(config.min_life_s, config.max_life_s)
        died = min(born + life, 0.95 * config.duration_s)
        ingress, egress = _pick_pair(rng, ctx)
        name = f"wl-cpe-{i}"
        ops.append(
            WorkloadOp(
                at=born, op="create", chain=name,
                ingress=ingress, egress=egress, stages=1,
                value=round(config.demand_factor * ctx.base_demand, 6),
            )
        )
        ops.append(WorkloadOp(at=died, op="remove", chain=name))
    return WorkloadSchedule(
        kind="site_churn", seed=seed, duration_s=config.duration_s, ops=ops
    )


@dataclass(frozen=True)
class ZipfConfig:
    duration_s: float = 24.0
    tenants: int = 5
    chains: int = 12
    alpha: float = 1.1
    remove_share: float = 0.25


def zipf_mix(
    seed: int, ctx: WorkloadContext, config: ZipfConfig | None = None
) -> WorkloadSchedule:
    """Multi-tenant Zipf chain mix: tenant ``t`` gets a
    ``1/(t+1)^alpha`` share of chains and demand, with a tail of
    removals late in the run."""
    config = config or ZipfConfig()
    rng = _rng("zipf_mix", seed)
    weights = [1.0 / (t + 1) ** config.alpha for t in range(config.tenants)]
    total = sum(weights)
    shares = [w / total for w in weights]
    ops: list[WorkloadOp] = []
    created: list[str] = []
    for i in range(config.chains):
        tenant = rng.choices(range(config.tenants), weights=shares)[0]
        born = rng.uniform(0.05, 0.7) * config.duration_s
        ingress, egress = _pick_pair(rng, ctx)
        name = f"wl-zipf-t{tenant}-{i}"
        demand = ctx.base_demand * (0.3 + 2.0 * shares[tenant])
        ops.append(
            WorkloadOp(
                at=born, op="create", chain=name,
                ingress=ingress, egress=egress,
                stages=1 + (tenant % ctx.max_stages),
                value=round(demand, 6),
            )
        )
        created.append(name)
    removals = int(config.remove_share * len(created))
    for name in rng.sample(created, removals):
        at = rng.uniform(0.75, 0.95) * config.duration_s
        ops.append(WorkloadOp(at=at, op="remove", chain=name))
    return WorkloadSchedule(
        kind="zipf_mix", seed=seed, duration_s=config.duration_s, ops=ops
    )


@dataclass(frozen=True)
class AdversarialConfig:
    duration_s: float = 24.0
    hostile_chains: int = 5
    surge_factor: float = 2.0       # simultaneous base-population surge
    overload_factor: float = 2.5    # hostile demand vs base


def adversarial_matrix(
    seed: int, ctx: WorkloadContext, config: AdversarialConfig | None = None
) -> WorkloadSchedule:
    """Adversarial worst-case matrix: concentrate everything.

    All hostile creates target one site pair with maximal chain length
    and over-capacity demands, arriving back to back, while the whole
    base population surges at the same instant -- the schedule is built
    to pin admission and capacity accounting to their boundaries (the
    invariants must hold even while most of it is being rejected).
    """
    config = config or AdversarialConfig()
    rng = _rng("adversarial_matrix", seed)
    ingress, egress = _pick_pair(rng, ctx)
    surge_at = rng.uniform(0.3, 0.5) * config.duration_s
    ops: list[WorkloadOp] = [
        WorkloadOp(
            at=surge_at, op="redemand", chain=ctx.base_chain(i),
            value=config.surge_factor,
        )
        for i in range(ctx.num_base_chains)
    ]
    for i in range(config.hostile_chains):
        at = surge_at + 0.5 + 0.25 * i
        ops.append(
            WorkloadOp(
                at=at, op="create", chain=f"wl-adv-{i}",
                ingress=ingress, egress=egress, stages=ctx.max_stages,
                value=round(config.overload_factor * ctx.base_demand, 6),
            )
        )
    # Relax late so the run can settle back under capacity.
    relax_at = min(surge_at + 0.35 * config.duration_s,
                   0.9 * config.duration_s)
    for i in range(ctx.num_base_chains):
        ops.append(
            WorkloadOp(
                at=relax_at, op="redemand", chain=ctx.base_chain(i),
                value=round(1.0 / config.surge_factor, 6),
            )
        )
    return WorkloadSchedule(
        kind="adversarial_matrix", seed=seed, duration_s=config.duration_s,
        ops=ops,
    )


#: Scenario kind -> default-config generator, the registry the fuzzer
#: samples from and ``--scenario`` resolves against.
SCENARIO_KINDS: dict[
    str, Callable[[int, WorkloadContext], WorkloadSchedule]
] = {
    "diurnal_wave": diurnal_wave,
    "flash_crowd": flash_crowd,
    "evacuation_cascade": evacuation_cascade,
    "site_churn": site_churn,
    "zipf_mix": zipf_mix,
    "adversarial_matrix": adversarial_matrix,
}

#: Scenario kind -> its config dataclass (all share ``duration_s``).
SCENARIO_CONFIGS: dict[str, type] = {
    "diurnal_wave": DiurnalConfig,
    "flash_crowd": FlashCrowdConfig,
    "evacuation_cascade": EvacuationConfig,
    "site_churn": ChurnConfig,
    "zipf_mix": ZipfConfig,
    "adversarial_matrix": AdversarialConfig,
}


def generate(
    kind: str,
    seed: int,
    ctx: WorkloadContext | None = None,
    duration_s: float | None = None,
) -> WorkloadSchedule:
    """Generate one library scenario by kind name."""
    try:
        factory = SCENARIO_KINDS[kind]
    except KeyError:
        raise ScheduleError(
            f"unknown scenario kind {kind!r} "
            f"(have: {', '.join(sorted(SCENARIO_KINDS))})"
        ) from None
    config = None
    if duration_s is not None:
        config = SCENARIO_CONFIGS[kind](duration_s=duration_s)
    return factory(seed, ctx or WorkloadContext(), config)
