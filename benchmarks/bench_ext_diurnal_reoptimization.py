"""Extension: periodic re-optimization under diurnal traffic.

The paper's first future-work item (Section 7.3) is time-varying traffic
matrices.  This bench drives an installed chain population through a
24-hour diurnal cycle (per-ingress local-time demand factors from the
timezone-aware model) and re-optimizes each hour.

The ablated design choice is the re-route *churn threshold*: demand
changes smaller than the threshold keep their routes.  A low threshold
tracks demand tightly but re-routes constantly; a high threshold is
calm but risks carrying less when demand surges past the stale routes'
capacity.  The bench reports carried share and total re-routes per
threshold over the day.
"""

import random

from _common import emit, fmt, format_table, register_bench

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
    reoptimize,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane.forwarder import DataPlane
from repro.edge import EdgeController, EdgeInstance
from repro.topology.cities import DEFAULT_CITIES
from repro.topology.timeseries import TimeVaryingTrafficMatrix
from repro.topology.traffic import gravity_traffic_matrix
from repro.vnf import VnfService

CITIES = {c.name: c for c in DEFAULT_CITIES}
SITES = ("NYC", "CHI", "DEN", "SFO")
NUM_CHAINS = 8
PEAK_DEMAND = 5.0
THRESHOLDS = (0.0, 0.1, 0.3)
HOURS = range(0, 24, 2)


def build():
    cities = [CITIES[n] for n in SITES]
    nodes = list(SITES)
    latency = {}
    from repro.topology.cities import fibre_delay_ms

    for i, a in enumerate(cities):
        for b in cities[i + 1:]:
            latency[(a.name, b.name)] = fibre_delay_ms(a, b)
    sites = [CloudSite(f"S-{n}", n, 10_000.0) for n in nodes]
    # Capacity sized to the *peak*: every chain fits at the peak hour.
    capacity = {
        f"S-{n}": NUM_CHAINS * 2 * PEAK_DEMAND * 1.25 / 2 for n in nodes
    }
    vnfs = [VNF("fw", 1.0, capacity)]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(0))
    gs = GlobalSwitchboard(model, dp)
    for site in capacity:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, dict(capacity)))
    edge = EdgeController("vpn")
    for n in nodes:
        edge.register_instance(EdgeInstance(f"edge.{n}", f"S-{n}", dp))
        edge.register_attachment(f"att-{n}", f"S-{n}")
    gs.register_edge_service(edge)

    rng = random.Random(4)
    ingress_of = {}
    for i in range(NUM_CHAINS):
        ingress, egress = rng.sample(nodes, 2)
        name = f"chain{i}"
        gs.create_chain(
            ChainSpecification(
                name, "vpn", f"att-{ingress}", f"att-{egress}", ["fw"],
                forward_demand=PEAK_DEMAND,
                reverse_demand=PEAK_DEMAND * 0.25,
                dst_prefixes=[f"20.0.{i}.0/24"],
            )
        )
        ingress_of[name] = ingress
    tvm = TimeVaryingTrafficMatrix(
        gravity_traffic_matrix([CITIES[n] for n in SITES], 100.0),
        [CITIES[n] for n in SITES],
    )
    return gs, tvm, ingress_of


def run_day(threshold: float):
    gs, tvm, ingress_of = build()
    reroutes = 0
    carried_shares = []
    current_factor = {name: 1.0 for name in ingress_of}
    for hour in HOURS:
        target = tvm.chain_demand_factors(ingress_of, float(hour))
        relative = {
            name: target[name] / current_factor[name] for name in target
        }
        report = reoptimize(gs, relative, threshold=threshold)
        for name in report.rerouted:
            current_factor[name] = target[name]
        reroutes += len(report.rerouted)
        carried_shares.append(report.carried_share)
    return reroutes, min(carried_shares), sum(carried_shares) / len(carried_shares)


@register_bench("ext_diurnal_reoptimization", warmup=0, repeats=1)
def run_bench():
    return {t: run_day(t) for t in THRESHOLDS}


def test_ext_diurnal_reoptimization(benchmark):
    results = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    rows = [
        (
            fmt(threshold, 2),
            reroutes,
            fmt(100 * worst, 1) + "%",
            fmt(100 * mean, 1) + "%",
        )
        for threshold, (reroutes, worst, mean) in results.items()
    ]
    emit(
        "ext_diurnal_reoptimization",
        format_table(
            "Extension -- diurnal re-optimization: churn threshold ablation "
            f"({NUM_CHAINS} chains, 24h cycle, 2h epochs)",
            ["churn threshold", "total re-routes", "worst-hour carried",
             "mean carried"],
            rows,
            notes=[
                "threshold 0 tracks demand exactly at maximal churn; "
                "looser thresholds trade a little carried traffic for "
                "far fewer route changes",
            ],
        ),
    )

    zero, loose = results[0.0], results[THRESHOLDS[-1]]
    # Tight tracking carries everything all day.
    assert zero[1] >= 0.999
    # Looser thresholds re-route strictly less.
    reroute_counts = [results[t][0] for t in THRESHOLDS]
    assert reroute_counts == sorted(reroute_counts, reverse=True)
    # And still carry nearly everything (capacity is peak-sized).
    assert loose[2] >= 0.95
