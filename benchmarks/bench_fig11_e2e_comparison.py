"""Figure 11: end-to-end comparison vs distributed load balancing.

Paper setup: a stateful-firewall chain with two routes on two testbeds
-- Amazon (150 ms inter-site RTT, lossier WAN) and a private cloud
(80 ms RTT).  Route 1 crosses the wide area anyway (ingress near site A,
egress near site B); route 2 is local to site A.  The firewall instance
at A can carry exactly one route.

- ANYCAST sends both routes to the firewall at A (lowest propagation
  delay), saturating it.
- COMPUTE-AWARE admits route 1 at A first, then must send the *local*
  route 2 across the wide area to B and back (the trombone).
- Switchboard's LP sees both routes, both instances, and all delays at
  once: route 1 picks up the firewall at B on its way, route 2 stays
  home at A.

Paper results: Switchboard carries 34%/57% more TCP throughput than
ANYCAST (private/AWS), 7%/39% more than COMPUTE-AWARE, with 10-19%
lower latency than ANYCAST and 43-49% lower than COMPUTE-AWARE.

The bench computes each scheme's placement with the *actual* routing
implementations from ``repro.core`` and evaluates throughput/latency on
the E2E testbed model (max-min fair sharing + M/M/1 queueing + Mathis
TCP bound on lossy wide-area hops).
"""

from dataclasses import dataclass

from _common import emit, fmt, format_table, register_bench

from repro.core.baselines import route_anycast, route_compute_aware
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, NetworkModel, VNF
from repro.core.routes import RoutingSolution
from repro.dataplane.e2e import E2ERoute, E2ETestbed, VnfInstanceSpec

FIREWALL_MBPS = 100.0


@dataclass(frozen=True)
class TestbedConfig:
    name: str
    inter_site_rtt_ms: float
    loss_per_crossing: float
    route_demand_mbps: float


TESTBEDS = (
    TestbedConfig("Amazon (150ms RTT)", 150.0, 1.0e-6, 78.5),
    TestbedConfig("private cloud (80ms RTT)", 80.0, 1.2e-6, 67.0),
)


def build_core_model(demand: float) -> NetworkModel:
    """Three nodes: a (both ingresses + route 2 egress), b (site B),
    c (route 1 egress, right next to b)."""
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 70.0, ("b", "c"): 5.0, ("a", "c"): 75.0}
    sites = [CloudSite("A", "a", 10_000.0), CloudSite("B", "b", 10_000.0)]
    # Firewall at A fits exactly one route (load = 2 x demand).
    vnfs = [VNF("fw", 1.0, {"A": 2 * demand, "B": 8 * demand})]
    chains = [
        Chain("route1", "a", "c", ["fw"], demand),
        Chain("route2", "a", "a", ["fw"], demand),
    ]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


def placements(solution: RoutingSolution) -> dict[str, dict[str, float]]:
    """chain -> {firewall site: fraction} from the stage-1 flows."""
    result: dict[str, dict[str, float]] = {}
    for chain in solution.model.chains:
        result[chain] = {
            dst: frac
            for (_src, dst), frac in solution.stage_flows(chain, 1).items()
        }
    return result


def evaluate_on_testbed(
    placement: dict[str, dict[str, float]], config: TestbedConfig
):
    rtt = config.inter_site_rtt_ms
    bed = E2ETestbed(
        rtt_ms={("a", "b"): rtt, ("b", "c"): 2.0, ("a", "c"): rtt}
    )
    bed.add_instance(VnfInstanceSpec("fw@A", "a", FIREWALL_MBPS))
    bed.add_instance(VnfInstanceSpec("fw@B", "b", FIREWALL_MBPS))
    bed.set_loss("a", "b", config.loss_per_crossing)
    bed.set_loss("a", "c", config.loss_per_crossing)
    endpoints = {"route1": ("a", "c"), "route2": ("a", "a")}
    site_node = {"A": "a", "B": "b"}
    for chain, sites in placement.items():
        ingress, egress = endpoints[chain]
        for site, fraction in sites.items():
            if fraction <= 1e-9:
                continue
            bed.add_route(
                E2ERoute(
                    f"{chain}@{site}",
                    [ingress, site_node[site], egress],
                    [f"fw@{site}"],
                    config.route_demand_mbps * fraction,
                )
            )
    return bed.evaluate()


@register_bench("fig11_e2e_comparison", warmup=0, repeats=1)
def run_figure11():
    results = {}
    for config in TESTBEDS:
        model = build_core_model(config.route_demand_mbps)
        sb = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert sb.ok
        schemes = {
            "Switchboard": placements(sb.solution),
            "Anycast": placements(route_anycast(model)),
            "Compute-Aware": placements(route_compute_aware(model)),
        }
        results[config.name] = {
            name: evaluate_on_testbed(placement, config)
            for name, placement in schemes.items()
        }
    return results


def test_fig11_e2e_comparison(benchmark):
    results = benchmark.pedantic(run_figure11, iterations=1, rounds=1)
    rows = []
    gains = {}
    for testbed, by_scheme in results.items():
        sb = by_scheme["Switchboard"]
        for scheme, outcome in by_scheme.items():
            rows.append(
                (
                    testbed,
                    scheme,
                    fmt(outcome.total_throughput_mbps, 1),
                    fmt(outcome.mean_rtt_ms, 1),
                )
            )
        gains[testbed] = {
            scheme: (
                sb.total_throughput_mbps / outcome.total_throughput_mbps - 1,
                1 - sb.mean_rtt_ms / outcome.mean_rtt_ms,
            )
            for scheme, outcome in by_scheme.items()
            if scheme != "Switchboard"
        }
    notes = []
    for testbed, by_scheme in gains.items():
        for scheme, (tput_gain, lat_gain) in by_scheme.items():
            notes.append(
                f"{testbed} vs {scheme}: +{fmt(100 * tput_gain, 0)}% "
                f"throughput, -{fmt(100 * lat_gain, 0)}% latency"
            )
    notes.append(
        "paper: +34%/57% tput and -10%/-19% latency vs Anycast; "
        "+7%/39% tput and -43%/-49% latency vs Compute-Aware"
    )
    emit(
        "fig11_e2e_comparison",
        format_table(
            "Figure 11 -- Switchboard vs distributed load balancing",
            ["testbed", "scheme", "TCP throughput (Mbps)", "mean RTT (ms)"],
            rows,
            notes=notes,
        ),
    )

    for by_scheme in results.values():
        sb = by_scheme["Switchboard"]
        anycast = by_scheme["Anycast"]
        ca = by_scheme["Compute-Aware"]
        # Orderings: Switchboard wins throughput and latency everywhere.
        assert sb.total_throughput_mbps > anycast.total_throughput_mbps
        assert sb.total_throughput_mbps >= ca.total_throughput_mbps - 1e-9
        assert sb.mean_rtt_ms < anycast.mean_rtt_ms
        assert sb.mean_rtt_ms < ca.mean_rtt_ms
    # Magnitudes in the paper's neighbourhood on the AWS-like testbed.
    aws = gains["Amazon (150ms RTT)"]
    assert 0.40 <= aws["Anycast"][0] <= 0.75          # paper: 0.57
    assert 0.25 <= aws["Compute-Aware"][0] <= 0.60    # paper: 0.39
    assert aws["Compute-Aware"][1] >= 0.30            # paper: 0.49
    private = gains["private cloud (80ms RTT)"]
    assert 0.20 <= private["Anycast"][0] <= 0.50      # paper: 0.34
    assert 0.0 <= private["Compute-Aware"][0] <= 0.25  # paper: 0.07
