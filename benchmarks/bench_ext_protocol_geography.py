"""Extension: emergent control-plane latency vs controller placement.

The Figure 10a / Table 2 numbers in the paper come from one testbed
geometry.  With the bus-driven Figure 4 protocol (messages over the
simulated WAN instead of a fixed latency budget), installation latency
becomes an *emergent* property of where the controllers sit.  This bench
sweeps the Global Switchboard's placement -- colocated with the ingress
edge, at the VNF's site, or at a third site -- and the WAN delay,
reporting the end-to-end installation latency for each.

The design insight it quantifies: the 2PC round trips and the
instance-announcement propagation dominate, so placing Global
Switchboard near the VNF controllers (not near the customer) minimizes
chain-creation latency.
"""

import random

from _common import emit, fmt, format_table, register_bench

from repro.bus.bus import make_bus
from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.protocol import BusDrivenInstaller
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane.forwarder import DataPlane
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService

SITES = ["A", "B", "C"]
WAN_DELAYS_MS = (10.0, 30.0, 70.0)
GS_PLACEMENTS = ("A (ingress)", "B (VNF)", "C (elsewhere)")


def build():
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [CloudSite(s, s.lower(), 100.0) for s in SITES]
    vnfs = [VNF("fw", 1.0, {"B": 40.0})]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(3))
    gs = GlobalSwitchboard(model, dp)
    for site in SITES:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, {"B": 40.0}))
    edge = EdgeController("vpn")
    edge.register_instance(EdgeInstance("edge.A", "A", dp))
    edge.register_instance(EdgeInstance("edge.C", "C", dp))
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    return gs


def install_once(gs_site: str, wan_delay_s: float) -> float:
    gs = build()
    bus = make_bus(SITES, wan_delay_s=wan_delay_s, uplink_bps=100e6)
    installer = BusDrivenInstaller(
        gs,
        bus,
        gs_site=gs_site,
        edge_controller_site="A",
        vnf_controller_sites={"fw": "B"},
    )
    timeline = installer.install(
        ChainSpecification(
            "corp", "vpn", "in", "out", ["fw"],
            forward_demand=5.0, src_prefix="10.0.0.0/24",
            dst_prefixes=["20.0.0.0/24"],
        )
    )
    installer.network.run()
    assert timeline.failed is None, timeline.failed
    return timeline.total_s


@register_bench("ext_protocol_geography")
def run_bench():
    rows = []
    for placement, gs_site in zip(GS_PLACEMENTS, SITES):
        row = [placement]
        for delay_ms in WAN_DELAYS_MS:
            row.append(install_once(gs_site, delay_ms / 1e3) * 1e3)
        rows.append(row)
    return rows


def test_ext_protocol_geography(benchmark):
    rows = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    formatted = [
        [row[0]] + [fmt(v, 0) + " ms" for v in row[1:]] for row in rows
    ]
    emit(
        "ext_protocol_geography",
        format_table(
            "Extension -- chain installation latency vs Global Switchboard "
            "placement (bus-driven Figure 4 protocol)",
            ["GS placement"] + [f"WAN {d:.0f} ms" for d in WAN_DELAYS_MS],
            formatted,
            notes=[
                "2PC round trips to the VNF controller dominate: placing "
                "GS at the VNF's site is fastest at every WAN delay",
            ],
        ),
    )

    by_placement = {row[0]: row[1:] for row in rows}
    # GS at the VNF site wins at every WAN delay (2PC RTTs vanish).
    for i in range(len(WAN_DELAYS_MS)):
        assert by_placement["B (VNF)"][i] <= by_placement["A (ingress)"][i]
        assert by_placement["B (VNF)"][i] <= by_placement["C (elsewhere)"][i]
    # Latency grows with WAN delay for every placement.
    for row in rows:
        assert row[1] < row[2] < row[3]
