"""Figure 13b: cloud capacity planning.

Paper result: given a fixed budget of additional compute to deploy
across sites, Switchboard's capacity-planning LP (maximize the uniform
traffic scale factor alpha) improves maximum sustainable throughput by
up to 22% over provisioning the same budget uniformly across sites.
"""

from _common import emit, fmt, format_table, register_bench

from repro.core.capacity import max_alpha, plan_cloud_capacity, uniform_cloud_plan
from repro.topology import WorkloadConfig, build_backbone, generate_workload
from repro.topology.cities import DEFAULT_CITIES

CITIES = DEFAULT_CITIES[:12]
#: Budgets as fractions of total current site capacity.
BUDGET_FRACTIONS = (0.1, 0.25, 0.5)


def make_model():
    config = WorkloadConfig(
        num_chains=30,
        num_vnfs=10,
        coverage=0.5,
        total_traffic=500.0,
        site_capacity=120.0,
        cities=CITIES,
        seed=11,
    )
    return generate_workload(config, build_backbone(CITIES))


@register_bench("fig13b_cloud_capacity", model_factory=make_model)
def run_figure13b():
    model = make_model()
    base_alpha = max_alpha(model)
    total_capacity = sum(s.capacity for s in model.sites.values())
    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget = fraction * total_capacity
        optimized = plan_cloud_capacity(model, budget)
        uniform = uniform_cloud_plan(model, budget)
        rows.append((fraction, budget, base_alpha, optimized.alpha, uniform.alpha))
    return rows


def test_fig13b_cloud_capacity(benchmark):
    rows = benchmark.pedantic(run_figure13b, iterations=1, rounds=1)
    formatted = [
        (
            f"{int(100 * fraction)}%",
            fmt(budget, 0),
            fmt(base, 2),
            fmt(opt, 2),
            fmt(uni, 2),
            "+" + fmt(100 * (opt / uni - 1), 0) + "%",
        )
        for fraction, budget, base, opt, uni in rows
    ]
    emit(
        "fig13b_cloud_capacity",
        format_table(
            "Figure 13b -- cloud capacity planning "
            "(max sustainable traffic scale alpha)",
            ["budget", "compute units", "alpha (no budget)",
             "alpha (optimized)", "alpha (uniform)", "gain"],
            formatted,
            notes=[
                "paper: optimized placement improves max throughput by "
                "up to 22% over uniform provisioning",
            ],
        ),
    )

    for _fraction, _budget, base, opt, uni in rows:
        assert opt >= uni - 1e-6      # optimizer never loses to uniform
        assert opt >= base - 1e-6     # budget never hurts
    gains = [opt / uni - 1 for _f, _b, _base, opt, uni in rows]
    # A material gain appears somewhere in the sweep (paper: up to 22%).
    assert max(gains) > 0.05
    assert max(gains) < 1.0
