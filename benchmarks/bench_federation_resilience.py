"""Federated chaos soak across seeds: partition-tolerant by invariant.

Five distinct seeds each play a generated fault schedule (link flaps, a
coordinator<->region partition, a regional process restart, and a
coordinator crash) against the deployed federation -- primary + standby
coordinator over the quorum store and leader lease, one regional node
per shard -- while the unified probe registry checks ledger
consistency, 2PC atomicity, capacity safety, single-active-coordinator,
and no-lost-queued-request after every event.  The headline numbers are
the resilience costs: how fast the standby recovers the control plane
after the crash, and how much work the degraded/queued paths carried.
"""

from _common import emit, fmt, format_table, register_bench

from repro.federation import FederationChaosConfig, run_federation_chaos

SEEDS = (1, 2, 3, 4, 5)
DURATION_S = 40.0


@register_bench("federation_resilience", warmup=0, repeats=1)
def run_soaks():
    reports = []
    for seed in SEEDS:
        reports.append(
            run_federation_chaos(
                FederationChaosConfig(seed=seed, duration_s=DURATION_S)
            )
        )
    return reports


def test_federation_resilience(benchmark):
    reports = benchmark.pedantic(run_soaks, iterations=1, rounds=1)

    rows = []
    for report in reports:
        throughput = report.installed_total / max(
            report.base_installed + report.live_submitted, 1
        )
        rows.append(
            (
                report.seed,
                report.scenario_digest[:12],
                sum(report.event_counts.values()),
                report.probes_run,
                fmt(report.recovery_s, 3) if report.recovery_s else "-",
                report.queued_peak,
                report.degraded_admissions,
                report.reconciliations,
                fmt(100 * throughput, 0) + "%",
                len(report.violations),
            )
        )
    emit(
        "federation_resilience",
        format_table(
            "Federated chaos soak -- failover, ledgers, degraded regions",
            ["seed", "schedule digest", "events", "probes",
             "recovery (s)", "queue peak", "degraded", "reconciles",
             "installed", "violations"],
            rows,
            notes=[
                "each seed mixes link flaps, a coordinator<->region "
                "partition, a regional restart, and a coordinator crash",
                "recovery = crash-to-takeover time of the standby "
                "coordinator (lease expiry + WAL settle)",
                "installed = chains with a terminal 'installed' outcome "
                "over all base + live submissions",
            ],
        ),
    )

    for report in reports:
        assert report.passed, report.render()
        # The schedule ran: the crash happened and the standby took over.
        assert report.coordinator_crashes == 1
        assert report.takeovers >= 1
        assert report.recovery_s is not None
        # Nothing queued was lost: the queue fully drained by the end.
        assert report.queued_final == 0
        # Reconciliation ran (heal + takeover both trigger it).
        assert report.reconciliations > 0
    # Distinct seeds produce distinct schedules.
    digests = {report.scenario_digest for report in reports}
    assert len(digests) == len(SEEDS)
