"""Ablation: label switching vs source routing header overhead.

Section 8: "Segment Routing and Network Services Headers use source
routing for service chaining.  However, source routing can inflate
packet header sizes, especially when using IPv6 headers or when routing
through long chains of VNFs.  In contrast, Switchboard's data plane
uses label switching whose data plane overhead remains low even for
longer chains."

The bench tabulates per-packet header bytes for the three encodings as
chains grow, and goodput efficiency at the paper's two reference packet
sizes (64 B minimum and 500 B average).
"""

from _common import emit, fmt, format_table, register_bench

from repro.dataplane.headers import compare_overheads

CHAIN_LENGTHS = (1, 2, 3, 5, 8, 12)


@register_bench("ablation_header_overhead", warmup=1, repeats=5)
def run_bench():
    return [compare_overheads(n) for n in CHAIN_LENGTHS]


def test_ablation_header_overhead(benchmark):
    comparisons = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    rows = [
        (
            c.chain_length,
            c.switchboard_bytes,
            c.nsh_bytes,
            c.srv6_bytes,
            fmt(100 * c.efficiency(64)["switchboard"], 1) + "%",
            fmt(100 * c.efficiency(64)["srv6"], 1) + "%",
        )
        for c in comparisons
    ]
    emit(
        "ablation_header_overhead",
        format_table(
            "Ablation -- per-packet header overhead by encoding (bytes)",
            ["chain length", "Switchboard (labels)", "NSH", "SRv6",
             "SB 64B efficiency", "SRv6 64B efficiency"],
            rows,
            notes=[
                "label switching is constant in chain length; SRv6 grows "
                "16 B per VNF (the Section 8 argument)",
            ],
        ),
    )

    sb = [c.switchboard_bytes for c in comparisons]
    srv6 = [c.srv6_bytes for c in comparisons]
    assert len(set(sb)) == 1                      # constant
    assert srv6 == sorted(srv6) and srv6[-1] > srv6[0]  # strictly grows
    for c in comparisons:
        assert c.switchboard_bytes < c.srv6_bytes
        eff = c.efficiency(64)
        assert eff["switchboard"] > eff["srv6"]
    # At chain length 12, SRv6 headers dwarf a minimum-size payload.
    long = comparisons[-1]
    assert long.srv6_bytes > 64 * 3
