"""Benchmark-suite fixtures (re-exported from ``_common``)."""

from _common import obs_registry  # noqa: F401
