"""Figure 7: OVS forwarder overhead vs a plain bridge.

Paper result: relative to a normal bridge, overlay labels (VXLAN+MPLS)
cost 19-29% of throughput and flow-affinity rules a further 33-44%, the
overhead shrinking as concurrent flows grow from 1 to 50; beyond that,
OVS scales poorly in the number of flows.
"""

from _common import emit, fmt, format_table, register_bench

from repro.dataplane.perfmodel import OvsForwarderModel

FLOW_POINTS = (1, 2, 5, 10, 20, 50)


@register_bench("fig7_ovs_overhead", warmup=1, repeats=5)
def run_figure7():
    model = OvsForwarderModel()
    rows = []
    for flows in FLOW_POINTS:
        bridge = model.throughput_pps("bridge", flows)
        labels = model.throughput_pps("labels", flows)
        affinity = model.throughput_pps("labels+affinity", flows)
        rows.append(
            (
                flows,
                fmt(bridge / 1e6),
                fmt(labels / 1e6),
                fmt(affinity / 1e6),
                fmt(100 * (1 - labels / bridge), 1) + "%",
                fmt(100 * (1 - affinity / labels), 1) + "%",
            )
        )
    scaling = [
        (flows, fmt(model.throughput_pps("labels+affinity", flows) / 1e6))
        for flows in (50, 1000, 5000, 20000, 50000)
    ]
    return model, rows, scaling


def test_fig7_ovs_overhead(benchmark):
    model, rows, scaling = benchmark.pedantic(
        run_figure7, iterations=1, rounds=1
    )
    emit(
        "fig7_ovs_overhead",
        format_table(
            "Figure 7 -- OVS forwarder throughput (Mpps) by pipeline config",
            ["flows", "(c) bridge", "(b) +labels", "(a) +affinity",
             "label ovh", "affinity ovh"],
            rows,
            notes=[
                "paper: labels add 19-29% overhead, affinity a further "
                "33-44%, shrinking with more flows",
            ],
        )
        + format_table(
            "Figure 7 (cont.) -- flow-count scalability of the full pipeline",
            ["flows", "Mpps"],
            scaling,
            notes=["paper: 'poor scalability upon increasing the number of "
                   "flows' motivates the DPDK forwarder"],
        ),
    )

    # Paper bands at the endpoints.
    assert 0.27 <= model.label_overhead(1) <= 0.29
    assert 0.19 <= model.label_overhead(50) <= 0.21
    assert 0.42 <= model.affinity_overhead(1) <= 0.44
    assert 0.33 <= model.affinity_overhead(50) <= 0.35
    # Overheads shrink with flows; full pipeline collapses at high counts.
    assert model.throughput_pps("labels+affinity", 50_000) < (
        model.throughput_pps("labels+affinity", 50) / 5
    )
