"""Ablation: DHT-replicated flow tables vs private per-forwarder tables.

DESIGN.md calls out the Section 5.3 design choice: the base Switchboard
forwarder keeps private flow tables, which break flow affinity when a
forwarder fails or the fleet is rescaled; the paper sketches (and this
repo implements) a replicated-DHT flow table as the remedy.

The bench measures, under forwarder churn, the fraction of established
connections whose VNF-instance binding survives:

- **private** tables: all state on the failed forwarder is lost;
- **DHT r=1**: consistent hashing without replication -- graceful
  rescaling is loss-free, crashes still lose the failed node's shard;
- **DHT r=2**: single crashes are fully masked.

It also reports the DHT's costs: remote lookups and rebalance transfers.
"""

import random

from _common import emit, fmt, format_table, register_bench

from repro.dataplane.dht import DhtFlowTableView, ReplicatedFlowTable
from repro.dataplane.forwarder import DataPlane, Forwarder, VnfInstance
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice

NUM_FORWARDERS = 4
NUM_FLOWS = 400
LBL = Labels(chain=1, egress_site="E")


class _Sink:
    name = "out"

    def receive_from_chain(self, packet, came_from):
        packet.record("out")


def flow(i: int) -> FiveTuple:
    return FiveTuple("10.0.0.1", "20.0.0.1", "tcp", i + 1, 80)


def build(mode: str):
    """mode: 'private', 'dht1', or 'dht2'."""
    table = None
    if mode != "private":
        table = ReplicatedFlowTable(replication=1 if mode == "dht1" else 2)
    dp = DataPlane(random.Random(1))
    forwarders = []
    instances = []
    rule_instances = {}
    for i in range(NUM_FORWARDERS):
        name = f"f{i}"
        ft = DhtFlowTableView(table, name) if table is not None else None
        fwd = dp.add_forwarder(Forwarder(name, "A", flow_table=ft))
        inst = VnfInstance(f"g{i}", "G", "A")
        fwd.attach(inst)
        forwarders.append(fwd)
        instances.append(inst)
        rule_instances[f"g{i}"] = 1.0
    dp.add_endpoint(_Sink())
    for i, fwd in enumerate(forwarders):
        fwd.install_rule(
            1,
            "E",
            LoadBalancingRule(
                local_instances=WeightedChoice({f"g{i}": 1.0}),
                next_forwarders=WeightedChoice({"out": 1.0}),
            ),
        )
    return dp, table, forwarders, instances


def run_mode(mode: str):
    dp, table, forwarders, instances = build(mode)
    # Establish flows, spread round-robin over entry forwarders.
    pinned = {}
    for i in range(NUM_FLOWS):
        entry = forwarders[i % NUM_FORWARDERS]
        packet = Packet(flow(i), labels=LBL)
        dp.send_forward(packet, entry.name, "edge")
        pinned[i] = [e for e in packet.trace if e.startswith("g")][0]

    # Crash f0; its VNF instance re-homes to f1 (same site).
    crashed, fallback = forwarders[0], forwarders[1]
    if table is not None:
        table.fail(crashed.name)
    del dp.forwarders[crashed.name]
    fallback.attach(instances[0])
    fallback.install_rule(
        1,
        "E",
        LoadBalancingRule(
            local_instances=WeightedChoice(
                {instances[0].name: 1.0, instances[1].name: 1.0}
            ),
            next_forwarders=WeightedChoice({"out": 1.0}),
        ),
    )

    preserved = 0
    for i in range(NUM_FLOWS):
        entry = forwarders[i % NUM_FORWARDERS]
        if entry is crashed:
            entry = fallback
        packet = Packet(flow(i), labels=LBL)
        dp.send_forward(packet, entry.name, "edge")
        chosen = [e for e in packet.trace if e.startswith("g")]
        if chosen and chosen[0] == pinned[i]:
            preserved += 1
    remote = table.stats.remote_hits if table is not None else 0
    transfers = table.stats.transferred_entries if table is not None else 0
    return preserved / NUM_FLOWS, remote, transfers


@register_bench("ablation_dht_flowtable")
def run_ablation():
    return {mode: run_mode(mode) for mode in ("private", "dht1", "dht2")}


def test_ablation_dht_flowtable(benchmark):
    results = benchmark.pedantic(run_ablation, iterations=1, rounds=1)
    rows = [
        (
            {"private": "private tables",
             "dht1": "DHT, replication=1",
             "dht2": "DHT, replication=2"}[mode],
            fmt(100 * preserved, 1) + "%",
            remote,
            transfers,
        )
        for mode, (preserved, remote, transfers) in results.items()
    ]
    emit(
        "ablation_dht_flowtable",
        format_table(
            "Ablation -- flow affinity across a forwarder crash "
            f"({NUM_FORWARDERS} forwarders, {NUM_FLOWS} flows)",
            ["flow-table design", "affinity preserved", "remote lookups",
             "rebalance transfers"],
            rows,
            notes=[
                "private tables lose the crashed forwarder's connections;"
                " DHT replication=2 masks any single crash",
            ],
        ),
    )

    private, dht1, dht2 = (
        results["private"][0], results["dht1"][0], results["dht2"][0]
    )
    assert dht2 == 1.0                 # full affinity despite the crash
    assert private < 1.0               # base design loses state
    assert private <= dht1 <= dht2 + 1e-9
    assert results["dht2"][1] > 0      # the cost: remote lookups happen
