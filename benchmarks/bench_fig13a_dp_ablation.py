"""Figure 13a: why SB-DP works -- cost-function and holism ablations.

Paper result: SB-DP improves throughput by up to 6x over DP-LATENCY
(same holistic DP but latency-only cost) and up to 2.3x over ONEHOP
(same cost function applied greedily per hop).  DP-LATENCY approaches
SB-DP only at high coverage (>= 0.75), where the shortest-latency site
is usually good enough; ONEHOP stays behind at every coverage.
"""

from functools import partial

from _common import emit, fmt, format_table, register_bench

from repro.core.dp import DpConfig, route_chains_dp
from repro.topology import WorkloadConfig, build_backbone, generate_workload
from repro.topology.cities import DEFAULT_CITIES

CITIES = DEFAULT_CITIES[:15]
COVERAGES = (0.25, 0.5, 0.75, 1.0)


def make_model(coverage):
    config = WorkloadConfig(
        num_chains=40,
        num_vnfs=12,
        coverage=coverage,
        total_traffic=6000.0,
        site_capacity=7200.0,
        cities=CITIES,
        seed=42,
    )
    return generate_workload(config, build_backbone(CITIES))


@register_bench(
    "fig13a_dp_ablation", model_factory=partial(make_model, 0.5)
)
def run_figure13a():
    rows = []
    for coverage in COVERAGES:
        model = make_model(coverage)
        full = route_chains_dp(model).solution.throughput()
        latency_only = route_chains_dp(
            model, DpConfig.latency_only()
        ).solution.throughput()
        one_hop = route_chains_dp(
            model, DpConfig.one_hop()
        ).solution.throughput()
        rows.append((coverage, full, latency_only, one_hop))
    return rows


def test_fig13a_dp_ablation(benchmark):
    rows = benchmark.pedantic(run_figure13a, iterations=1, rounds=1)
    formatted = [
        (
            cov,
            fmt(full, 0),
            fmt(lat, 0),
            fmt(hop, 0),
            fmt(full / lat, 2) + "x",
            fmt(full / hop, 2) + "x",
        )
        for cov, full, lat, hop in rows
    ]
    emit(
        "fig13a_dp_ablation",
        format_table(
            "Figure 13a -- SB-DP vs its ablations (throughput)",
            ["coverage", "SB-DP", "DP-LATENCY", "ONEHOP",
             "vs DP-LATENCY", "vs ONEHOP"],
            formatted,
            notes=[
                "paper: SB-DP up to 6x over DP-LATENCY and 2.3x over "
                "ONEHOP; DP-LATENCY catches up at coverage >= 0.75",
            ],
        ),
    )

    for _cov, full, lat, hop in rows:
        assert full >= lat - 1e-6
        assert full >= hop - 1e-6
    # Both ablation gaps are material somewhere in the sweep.
    assert max(full / lat for _c, full, lat, _h in rows) > 1.3
    assert max(full / hop for _c, full, _l, hop in rows) > 1.15
    # DP-LATENCY's gap shrinks as coverage grows (the paper's crossover
    # observation near coverage 0.75).
    gaps = [full / lat for _cov, full, lat, _hop in rows]
    assert gaps[-1] < gaps[0]
