"""Figure 10: dynamic chain-route creation.

Paper result (single AWS site split into virtual sites A and B, a NAT
chain initially routed only through A):

(a) adding a new route through B takes 595 ms end to end, and the
    existing route's throughput is unaffected -- load balances evenly
    across both routes afterwards;
(b) the addition doubles the chain's total throughput, commensurate with
    the new route's capacity.

This bench reproduces both halves: the control-plane latency on the
timed Figure 4 message flow, and the data-plane throughput before/after
via the Global Switchboard + E2E model.
"""

import random

import pytest
from _common import emit, fmt, format_table, register_bench

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.timing import (
    PAPER_ROUTE_UPDATE_MS,
    simulate_chain_route_update,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane.e2e import E2ERoute, E2ETestbed, VnfInstanceSpec
from repro.dataplane.forwarder import DataPlane
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService

NAT_CAPACITY_MBPS = 100.0


def run_control_plane():
    """The orchestration half: route a chain through A only, then open
    capacity at B and extend the chain (the paper's 'new chain route')."""
    nodes = ["a", "b"]
    latency = {("a", "b"): 1.0}  # two virtual sites in one datacenter
    sites = [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)]
    # The NAT at A carries exactly half the chain's demand (load per
    # unit fraction = 2 x (10 + 10) = 40), as in the paper's experiment
    # where the single-site route saturates.
    vnfs = [VNF("nat", 1.0, {"A": 20.0, "B": 0.0})]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(0))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    service = VnfService("nat", 1.0, {"A": 20.0, "B": 0.0})
    gs.register_vnf_service(service)
    edge = EdgeController("vpn")
    for name, site in (("edge.A", "A"), ("edge.B", "B")):
        edge.register_instance(EdgeInstance(name, site, dp))
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "B")
    gs.register_edge_service(edge)

    spec = ChainSpecification(
        "natchain", "vpn", "in", "out", ["nat"],
        forward_demand=10.0, reverse_demand=10.0,
        src_prefix="10.0.0.0/24", dst_prefixes=["20.0.0.0/24"],
    )
    installation = gs.create_chain(spec)
    before = installation.routed_fraction

    # The operator requests a route via B (B's NAT comes online).
    gs.model.vnfs["nat"] = VNF("nat", 1.0, {"A": 20.0, "B": 20.0})
    service.site_capacity["B"] = 20.0
    service._committed.setdefault("B", 0.0)
    gained = gs.extend_chain("natchain")
    after = installation.routed_fraction
    stage1 = gs.router.solution.stage_flows("natchain", 1)
    return before, gained, after, stage1


def run_data_plane():
    """The throughput half on the E2E model: one NAT instance, then two."""
    def evaluate(instances):
        bed = E2ETestbed(rtt_ms={("A", "B"): 1.0})
        for name in instances:
            bed.add_instance(
                VnfInstanceSpec(name, name[-1], NAT_CAPACITY_MBPS)
            )
        for i, name in enumerate(instances):
            bed.add_route(
                E2ERoute(
                    f"route{i}", ["A", name[-1], "B"], [name], 500.0
                )
            )
        return bed.evaluate()

    one = evaluate(["natA"])
    two = evaluate(["natA", "natB"])
    return one, two


@register_bench("fig10_dynamic_chaining")
def run_figure10():
    timeline = simulate_chain_route_update()
    control = run_control_plane()
    data = run_data_plane()
    return timeline, control, data


def test_fig10_dynamic_chaining(benchmark):
    timeline, control, data = benchmark.pedantic(
        run_figure10, iterations=1, rounds=1
    )
    before, gained, after, stage1 = control
    one, two = data
    total_ms = timeline.total_s * 1e3

    step_rows = [
        (m.operation, fmt(m.duration_s * 1e3, 0)) for m in timeline.milestones
    ]
    emit(
        "fig10_dynamic_chaining",
        format_table(
            "Figure 10a -- chain route update latency breakdown",
            ["operation", "ms"],
            step_rows,
            notes=[
                f"total: {fmt(total_ms, 0)} ms "
                f"(paper: {fmt(PAPER_ROUTE_UPDATE_MS, 0)} ms)",
            ],
        )
        + format_table(
            "Figure 10a (cont.) -- routed demand before/after the new route",
            ["phase", "routed fraction"],
            [
                ("route via A only", fmt(before)),
                ("after route via B", fmt(after)),
            ],
            notes=["load balances evenly: " + ", ".join(
                f"{dst}={fmt(frac)}" for (_s, dst), frac in sorted(stage1.items())
            )],
        )
        + format_table(
            "Figure 10b -- chain throughput before/after (E2E model)",
            ["configuration", "total Mbps"],
            [
                ("1 NAT instance (site A)", fmt(one.total_throughput_mbps, 0)),
                ("2 NAT instances (A+B)", fmt(two.total_throughput_mbps, 0)),
            ],
            notes=["paper: the new chain route doubles total throughput"],
        ),
    )

    # Control-plane latency within 5% of the paper's 595 ms.
    assert abs(total_ms - PAPER_ROUTE_UPDATE_MS) / PAPER_ROUTE_UPDATE_MS < 0.05
    # The new route doubles the admitted demand and splits load evenly.
    assert after == pytest.approx(2 * before, rel=0.01)
    assert gained > 0
    fractions = sorted(stage1.values())
    assert fractions[0] == pytest.approx(fractions[1], rel=0.01)
    # Data plane: throughput exactly doubles.
    assert two.total_throughput_mbps == pytest.approx(
        2 * one.total_throughput_mbps
    )
