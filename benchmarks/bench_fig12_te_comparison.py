"""Figure 12: wide-area routing comparison on the tier-1-style dataset.

Paper results (AT&T backbone, 10 000 chains, 100 VNFs):

(a) throughput vs VNF coverage -- SB-LP and SB-DP improve with coverage
    and sit within 0-11% of each other; ANYCAST is more than an order of
    magnitude worse and cannot exploit coverage;
(b) throughput vs CPU/byte -- SB schemes vastly outperform ANYCAST both
    when the network is the bottleneck (low CPU/byte) and when compute
    is (high CPU/byte); SB-DP within 11-36% of SB-LP;
(c) latency vs load -- ANYCAST's latency is >40% higher than SB-LP even
    at low load and it cannot handle loads beyond a small fraction of
    what SB-LP sustains; SB-DP stays within ~8% of SB-LP.

Scale note: this harness runs the identical formulations on a synthetic
15-PoP backbone with 40 chains and 12 VNF services so that SB-LP (3 h
with CPLEX for the authors) completes in seconds.  Orderings and trends
are the reproduction target.
"""

import os
from functools import lru_cache

from _common import emit, fmt, format_table, register_bench

from repro.core.baselines import route_anycast, scale_to_capacity
from repro.core.dp import route_chains_dp
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.topology import WorkloadConfig, build_backbone, generate_workload
from repro.topology.cities import DEFAULT_CITIES

# REPRO_FULL_SCALE=1 runs the sweep on the full 25-PoP backbone with a
# 4x chain count -- SB-LP then takes minutes per point (the paper's
# CPLEX runs took hours at 10 000 chains), so the default stays small.
_FULL = os.environ.get("REPRO_FULL_SCALE") == "1"
CITIES = DEFAULT_CITIES if _FULL else DEFAULT_CITIES[:15]
NUM_CHAINS = 160 if _FULL else 40
NUM_VNFS = 20 if _FULL else 12
TOTAL_TRAFFIC = 12000.0 if _FULL else 6000.0
SITE_CAPACITY = 14400.0 if _FULL else 7200.0
COVERAGES = (0.25, 0.5, 0.75, 1.0)
CPU_PER_BYTE = (0.25, 0.5, 1.0, 2.0, 4.0)
LOAD_FACTORS = (0.1, 0.2, 0.4, 0.7, 1.0)


@lru_cache(maxsize=1)
def backbone():
    return build_backbone(CITIES)


def make_model(coverage=0.5, cpu_per_byte=1.0, traffic=TOTAL_TRAFFIC):
    config = WorkloadConfig(
        num_chains=NUM_CHAINS,
        num_vnfs=NUM_VNFS,
        coverage=coverage,
        cpu_per_byte=cpu_per_byte,
        total_traffic=traffic,
        site_capacity=SITE_CAPACITY,
        cities=CITIES,
        seed=42,
    )
    return generate_workload(config, backbone())


def throughputs(model):
    lp = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    dp = route_chains_dp(model)
    anycast = scale_to_capacity(route_anycast(model))
    return (
        lp.solution.throughput(),
        dp.solution.throughput(),
        anycast.throughput(),
    )


def run_figure12a():
    rows = []
    for coverage in COVERAGES:
        model = make_model(coverage=coverage)
        lp, dp, anycast = throughputs(model)
        rows.append((coverage, model.total_demand(), lp, dp, anycast))
    return rows


def run_figure12b():
    rows = []
    for cpu in CPU_PER_BYTE:
        model = make_model(cpu_per_byte=cpu)
        lp, dp, anycast = throughputs(model)
        rows.append((cpu, model.total_demand(), lp, dp, anycast))
    return rows


def run_figure12c():
    """Latency vs uniform load scaling (SB-LP objective: min latency)."""
    rows = []
    for factor in LOAD_FACTORS:
        model = make_model(traffic=TOTAL_TRAFFIC * factor)
        lp = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
        lp_latency = lp.solution.mean_latency() if lp.ok else None
        dp = route_chains_dp(model)
        dp_latency = (
            dp.solution.mean_latency() if dp.fully_routed else None
        )
        anycast = scale_to_capacity(route_anycast(model))
        offered = model.total_demand()
        anycast_ok = anycast.throughput() >= 0.999 * offered
        anycast_latency = anycast.mean_latency() if anycast_ok else None
        rows.append((factor, lp_latency, dp_latency, anycast_latency))
    return rows


@register_bench(
    "fig12_te_comparison", warmup=0, repeats=1, model_factory=make_model
)
def run_figure12():
    return run_figure12a(), run_figure12b(), run_figure12c()


def _tp_table(title, x_label, rows):
    formatted = [
        (
            x,
            fmt(offered, 0),
            fmt(lp, 0),
            fmt(dp, 0),
            fmt(anycast, 0),
            fmt(dp / lp, 2),
            fmt(lp / anycast, 1) + "x",
        )
        for x, offered, lp, dp, anycast in rows
    ]
    return format_table(
        title,
        [x_label, "offered", "SB-LP", "SB-DP", "ANYCAST",
         "DP/LP", "LP/ANY"],
        formatted,
    )


def test_fig12_te_comparison(benchmark):
    fig_a, fig_b, fig_c = benchmark.pedantic(
        run_figure12, iterations=1, rounds=1
    )
    latency_rows = [
        (
            factor,
            fmt(lp, 1) if lp is not None else "infeasible",
            fmt(dp, 1) if dp is not None else "partial",
            fmt(anycast, 1) if anycast is not None else "overloaded",
        )
        for factor, lp, dp, anycast in fig_c
    ]
    emit(
        "fig12_te_comparison",
        _tp_table(
            "Figure 12a -- throughput vs VNF coverage", "coverage", fig_a
        )
        + _tp_table(
            "Figure 12b -- throughput vs CPU/byte", "CPU/byte", fig_b
        )
        + format_table(
            "Figure 12c -- mean chain latency (ms) vs load factor",
            ["load factor", "SB-LP (min-latency)", "SB-DP", "ANYCAST"],
            latency_rows,
            notes=[
                "'overloaded' = ANYCAST cannot carry the offered load; "
                "'infeasible' = no full routing exists",
                "paper: ANYCAST fails above 10% of SB-LP's sustainable "
                "load and is >40% worse at low load; SB-DP within 8% of "
                "SB-LP",
            ],
        ),
    )

    # (a) Coverage helps the SB schemes...
    assert fig_a[2][2] > fig_a[0][2] * 1.15  # LP, cov 0.75 vs 0.25
    assert fig_a[2][3] > fig_a[0][3] * 1.15  # DP
    # ...while ANYCAST stays behind everywhere (the gap narrows at full
    # coverage, where every VNF is local to its ingress).
    for cov, _offered, lp, dp, anycast in fig_a:
        assert lp >= dp - 1e-6
        assert anycast < 0.8 * lp
        if cov <= 0.5:
            assert anycast < 0.5 * lp
    assert fig_a[0][2] / fig_a[0][4] > 3.0  # low coverage: LP >> ANYCAST

    # (b) SB beats ANYCAST across the bottleneck spectrum; DP tracks LP.
    # Paper: SB-DP within 11-36% of SB-LP; we allow a slightly wider band
    # at the extreme compute-bound point on the scaled-down workload.
    for _cpu, _offered, lp, dp, anycast in fig_b:
        assert anycast < 0.8 * lp
        assert dp >= 0.55 * lp

    # (c) ANYCAST saturates at a much lower load than SB-LP.
    lp_feasible = [f for f, lp, _dp, _a in fig_c if lp is not None]
    anycast_feasible = [f for f, _lp, _dp, a in fig_c if a is not None]
    assert max(anycast_feasible, default=0.0) < max(lp_feasible)
    # At the lowest load, ANYCAST's latency exceeds SB-LP's.
    factor0, lp0, dp0, any0 = fig_c[0]
    assert any0 is None or any0 > lp0
    # SB-DP's latency within a modest factor of SB-LP (paper: 8%).
    assert dp0 is not None and dp0 <= 1.25 * lp0
