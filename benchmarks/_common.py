"""Shared helpers for the per-figure/table benchmark harnesses.

Every bench writes its paper-style table both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers recorded in
EXPERIMENTS.md can be regenerated with
``pytest benchmarks/ --benchmark-only``.

Besides the pytest entry points, every suite registers its measured
function with :data:`REGISTRY` via the :func:`register_bench`
decorator.  ``python -m repro bench`` (the ``repro.bench`` runner)
imports the same modules, pulls the registered callables out of the
registry, and times them with warmup/repeat control -- no pytest
involved -- emitting machine-readable ``BENCH_<suite>.json`` documents
next to the human-readable tables.

Scale note: the paper's Section 7.3 simulations use the full AT&T
backbone with 10 000 chains and CPLEX; this harness runs the identical
formulations on the synthetic 25-PoP backbone with a reduced chain count
so that SB-LP (which took the authors up to 3 hours) completes in
seconds-to-minutes.  Trends, orderings, and gap magnitudes are the
reproduction target, not absolute Gbps.
"""

from __future__ import annotations

import inspect
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def metrics_enabled() -> bool:
    """True when the REPRO_METRICS environment variable opts in."""
    return os.environ.get("REPRO_METRICS", "0") not in ("", "0")


@dataclass(frozen=True)
class BenchSuite:
    """One registered benchmark suite: a measured callable plus its
    timing policy and comparison tolerances.

    ``fn`` is the exact function the pytest benchmark times via
    ``benchmark.pedantic`` -- registration adds a second, pytest-free
    entry point to the same code, it never forks the measured path.
    """

    name: str
    fn: Callable[..., object]
    module: str
    warmup: int = 1
    repeats: int = 3
    #: Builds the scenario's NetworkModel so the result document can
    #: embed its content digest (``None`` for suites without one model).
    model_factory: Callable[[], object] | None = None
    #: Whether ``fn`` accepts a ``metrics=`` registry (REPRO_METRICS=1).
    accepts_metrics: bool = False
    #: Per-suite comparison tolerances (see ``repro.bench.compare``):
    #: a run regresses when its median exceeds the baseline median by
    #: more than ``max(rel_tol * baseline_median, k * pooled_stddev)``.
    rel_tol: float = 0.25
    k: float = 3.0
    tags: tuple[str, ...] = field(default_factory=tuple)


#: Suite name -> BenchSuite, populated at import time by the
#: ``bench_*.py`` modules.  ``repro.bench.discovery`` imports those
#: modules and reads this mapping.
REGISTRY: dict[str, BenchSuite] = {}


def register_bench(
    name: str,
    *,
    warmup: int = 1,
    repeats: int = 3,
    model_factory: Callable[[], object] | None = None,
    rel_tol: float = 0.25,
    k: float = 3.0,
    tags: Sequence[str] = (),
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Register ``fn`` as the measured entry point of suite ``name``.

    By convention ``name`` equals the module filename minus its
    ``bench_`` prefix, so ``python -m repro bench --suites X`` knows to
    import ``bench_X.py`` without importing everything else.  The
    decorated function is returned unchanged -- pytest keeps calling it
    through ``benchmark.pedantic`` exactly as before.
    """

    def decorator(fn: Callable[..., object]) -> Callable[..., object]:
        accepts_metrics = "metrics" in inspect.signature(fn).parameters
        if name in REGISTRY and REGISTRY[name].fn is not fn:
            raise ValueError(f"duplicate bench suite registration: {name!r}")
        REGISTRY[name] = BenchSuite(
            name=name,
            fn=fn,
            module=fn.__module__,
            warmup=warmup,
            repeats=repeats,
            model_factory=model_factory,
            accepts_metrics=accepts_metrics,
            rel_tol=rel_tol,
            k=k,
            tags=tuple(tags),
        )
        return fn

    return decorator


@pytest.fixture
def obs_registry():
    """Opt-in observability for benchmark runs.

    Yields ``None`` by default, so instrumented code paths stay on their
    zero-cost branch and benchmark numbers are unaffected.  Run with
    ``REPRO_METRICS=1`` to get a live :class:`repro.obs.MetricsRegistry`
    instead; its full report is printed at teardown (use ``pytest -s``).
    """
    if not metrics_enabled():
        yield None
        return
    from repro.obs import MetricsRegistry, render_report

    registry = MetricsRegistry()
    yield registry
    print("\n" + render_report(registry, title="benchmark metrics"))


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines) + "\n"


def write_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    Parallel benchmark runs (``pytest -n``) and the ``repro.bench``
    runner may emit the same result file concurrently; the unique tmp
    name keeps writers from clobbering each other mid-write and the
    rename makes the final file appear whole or not at all.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def emit(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + table)
    write_atomic(os.path.join(RESULTS_DIR, f"{name}.txt"), table)


def fmt(value: float, digits: int = 2) -> str:
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"
