"""Shared helpers for the per-figure/table benchmark harnesses.

Every bench writes its paper-style table both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers recorded in
EXPERIMENTS.md can be regenerated with
``pytest benchmarks/ --benchmark-only``.

Scale note: the paper's Section 7.3 simulations use the full AT&T
backbone with 10 000 chains and CPLEX; this harness runs the identical
formulations on the synthetic 25-PoP backbone with a reduced chain count
so that SB-LP (which took the authors up to 3 hours) completes in
seconds-to-minutes.  Trends, orderings, and gap magnitudes are the
reproduction target, not absolute Gbps.
"""

from __future__ import annotations

import os
from typing import Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def metrics_enabled() -> bool:
    """True when the REPRO_METRICS environment variable opts in."""
    return os.environ.get("REPRO_METRICS", "0") not in ("", "0")


@pytest.fixture
def obs_registry():
    """Opt-in observability for benchmark runs.

    Yields ``None`` by default, so instrumented code paths stay on their
    zero-cost branch and benchmark numbers are unaffected.  Run with
    ``REPRO_METRICS=1`` to get a live :class:`repro.obs.MetricsRegistry`
    instead; its full report is printed at teardown (use ``pytest -s``).
    """
    if not metrics_enabled():
        yield None
        return
    from repro.obs import MetricsRegistry, render_report

    registry = MetricsRegistry()
    yield registry
    print("\n" + render_report(registry, title="benchmark metrics"))


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines) + "\n"


def emit(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(table)


def fmt(value: float, digits: int = 2) -> str:
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"
