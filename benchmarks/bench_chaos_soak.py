"""Chaos soak across seeds: invariant violations must stay at zero.

Five distinct seeds each play a generated fault schedule (link flaps,
loss and degradation windows, one site outage, one bus-proxy crash, one
controller leader kill) against a full deployment while the invariant
checker probes continuously.  The assertion is the acceptance bar of the
chaos subsystem: zero violations on every seed, full recovery of the
site outage (capacity is provisioned for it), and honest accounting
(every fault-induced loss shows up in the drop-reason tally).
"""

from _common import emit, fmt, format_table, register_bench

from repro.chaos import SoakConfig, run_soak

SEEDS = (1, 2, 3, 4, 5)
DURATION_S = 30.0


@register_bench("chaos_soak", warmup=0, repeats=1)
def run_soaks():
    reports = []
    for seed in SEEDS:
        reports.append(run_soak(SoakConfig(seed=seed, duration_s=DURATION_S)))
    return reports


def test_chaos_soak(benchmark):
    reports = benchmark.pedantic(run_soaks, iterations=1, rounds=1)

    rows = []
    for report in reports:
        fault_drops = sum(report.drop_reasons.values())
        site_recovery = [r for r in report.recovery if r["kind"] == "site"]
        recovery = min(
            (r["ratio"] for r in site_recovery), default=1.0
        )
        rows.append(
            (
                report.seed,
                report.scenario_digest[:12],
                sum(report.event_counts.values()),
                report.probes_run,
                fault_drops,
                fmt(100 * recovery, 0) + "%",
                fmt(report.carried_after, 3),
                len(report.violations),
            )
        )
    emit(
        "chaos_soak",
        format_table(
            "Chaos soak -- seeded fault schedules vs system invariants",
            ["seed", "schedule digest", "events", "probes",
             "fault drops", "outage recovery", "carried after",
             "violations"],
            rows,
            notes=[
                "each seed mixes link flaps, loss/degradation windows, a "
                "site outage, a proxy crash, and a leader kill",
                "zero violations = conservation, 2PC atomicity, capacity "
                "safety, bus delivery, and lease safety all held",
            ],
        ),
    )

    for report in reports:
        assert report.passed, report.render()
        # The schedule ran: every kind of fault was applied.
        assert sum(report.event_counts.values()) >= 10
        assert report.leaders_killed == 1
        # Faults really disturbed the system (drops were taken and
        # accounted) and the provisioned headroom absorbed the outage.
        assert sum(report.drop_reasons.values()) > 0
        assert report.carried_after >= 0.999
    # Distinct seeds produce distinct schedules.
    digests = {report.scenario_digest for report in reports}
    assert len(digests) == len(SEEDS)
