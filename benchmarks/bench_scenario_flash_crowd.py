"""Scenario bench: flash crowd composed with link flaps.

The ``flash_crowd`` library scenario slams a burst of new chains onto
one hot egress inside a short ramp window; this bench composes it with
a seeded schedule of WAN link flaps so the install burst lands while
the bus is rerouting around failures -- the worst-case moment for the
2PC install path.  The measured cost covers schedule generation,
composition, fault injection, the install burst, and continuous
invariant probing.

Every run must stay violation-free even with the flaps; a regression
here usually means schedule composition or the install path under
degraded links got slower.
"""

from _common import emit, format_table, register_bench

from repro.bus.bus import proxy_name
from repro.chaos import ScenarioConfig, SoakConfig, generate_scenario, run_soak
from repro.chaos.runner import SITES
from repro.scenarios import generate

SEEDS = (21, 22, 23)
DURATION_S = 16.0


def fault_schedule(seed: int):
    wan_pairs = [
        (f"wan.{a}", proxy_name(b)) for a in SITES for b in SITES if a != b
    ]
    return generate_scenario(
        seed, SITES, wan_pairs,
        ScenarioConfig(
            duration_s=DURATION_S, link_flaps=2, loss_windows=0,
            degrade_windows=0, site_outage=False, proxy_crash=False,
            leader_kill=False,
        ),
    )


def run_one(seed: int):
    workload = generate("flash_crowd", seed, duration_s=DURATION_S)
    report = run_soak(
        SoakConfig(seed=seed, duration_s=DURATION_S),
        scenario=fault_schedule(seed),
        workload=workload,
    )
    return workload, report


@register_bench("scenario_flash_crowd", warmup=1, repeats=3)
def run_bench():
    return {seed: run_one(seed) for seed in SEEDS}


def test_scenario_flash_crowd(benchmark):
    results = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    rows = []
    for seed, (workload, report) in results.items():
        counts = report.workload_counts
        rows.append((
            seed,
            len(workload.ops),
            counts.get("created", 0),
            counts.get("create_rejected", 0),
            counts.get("removed", 0),
            len(report.events_applied),
            len(report.violations),
        ))
        assert report.passed, report.render()
        assert report.workload_digest == workload.digest()
        assert counts.get("created", 0) > 0, "flash crowd must install chains"
        assert report.events_applied, "fault schedule must fire"
    emit(
        "scenario_flash_crowd",
        format_table(
            "Scenario -- flash crowd under WAN link flaps "
            f"({len(SEEDS)} seeds, {DURATION_S:g}s simulated)",
            ["seed", "scheduled ops", "created", "rejected", "removed",
             "faults applied", "violations"],
            rows,
            notes=[
                "the install burst lands while links flap: worst case "
                "for the 2PC install path; must stay violation-free",
            ],
        ),
    )
