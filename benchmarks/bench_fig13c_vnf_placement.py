"""Figure 13c: VNF capacity planning (placement hints).

Paper result: when VNF providers add deployments at y_f new sites,
Switchboard's placement MIP picks sites that give up to 27% lower
chain latency than selecting the new sites at random.
"""

import random

from _common import emit, fmt, format_table, register_bench

from repro.core.capacity import plan_vnf_placement, random_vnf_placement
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.topology import WorkloadConfig, build_backbone, generate_workload
from repro.topology.cities import DEFAULT_CITIES

CITIES = DEFAULT_CITIES[:10]
NEW_SITES_PER_VNF = 2
NEW_SITE_CAPACITY = 60.0
RANDOM_TRIALS = 5


def make_model():
    config = WorkloadConfig(
        num_chains=15,
        num_vnfs=4,
        coverage=0.3,
        min_chain_length=2,
        max_chain_length=3,
        total_traffic=300.0,
        site_capacity=240.0,
        cities=CITIES,
        seed=23,
    )
    return generate_workload(config, build_backbone(CITIES))


def weighted_latency(model) -> float:
    result = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
    assert result.ok, "placement evaluation LP must be feasible"
    return result.objective


@register_bench(
    "fig13c_vnf_placement", warmup=0, repeats=2, model_factory=make_model
)
def run_figure13c():
    model = make_model()
    quotas = {name: NEW_SITES_PER_VNF for name in model.vnfs}
    baseline = weighted_latency(model)

    optimal = plan_vnf_placement(
        model, quotas, new_site_capacity=NEW_SITE_CAPACITY, time_limit=120.0
    )
    optimal_latency = weighted_latency(optimal.apply(model))

    rng = random.Random(99)
    random_latencies = []
    for _ in range(RANDOM_TRIALS):
        plan = random_vnf_placement(model, quotas, NEW_SITE_CAPACITY, rng)
        random_latencies.append(weighted_latency(plan.apply(model)))
    return baseline, optimal, optimal_latency, random_latencies


def test_fig13c_vnf_placement(benchmark):
    baseline, optimal, optimal_latency, random_latencies = benchmark.pedantic(
        run_figure13c, iterations=1, rounds=1
    )
    mean_random = sum(random_latencies) / len(random_latencies)
    reduction = 1 - optimal_latency / mean_random
    rows = [
        ("no new sites", fmt(baseline, 1), "--"),
        (
            "random placement (mean of "
            f"{len(random_latencies)} trials)",
            fmt(mean_random, 1),
            "--",
        ),
        (
            "Switchboard MIP placement",
            fmt(optimal_latency, 1),
            "-" + fmt(100 * reduction, 0) + "% vs random",
        ),
    ]
    emit(
        "fig13c_vnf_placement",
        format_table(
            "Figure 13c -- VNF placement hints "
            "(weighted chain latency, Equation 3)",
            ["scheme", "weighted latency", "delta"],
            rows,
            notes=[
                f"MIP status: {optimal.status}; new sites: "
                + "; ".join(
                    f"{vnf}:{','.join(sites)}"
                    for vnf, sites in sorted(optimal.new_sites.items())
                ),
                "paper: up to 27% lower latency than random site selection",
            ],
        ),
    )

    assert optimal.status in ("optimal", "feasible")
    # New sites always help, and the MIP beats every random draw.
    assert optimal_latency <= baseline + 1e-6
    assert all(optimal_latency <= r + 1e-6 for r in random_latencies)
    # Material improvement over random (paper: up to 27%).
    assert reduction > 0.08
