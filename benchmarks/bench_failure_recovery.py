"""Failure recovery: compute-site failure under global re-routing.

The paper defers failures to future work ("evaluate performance and cost
metrics in case of network and compute failures", Section 7.3).  This
bench implements the natural experiment: install a population of chains,
fail the busiest cloud site, re-route every affected chain on the
surviving capacity, and measure

- how much of the affected traffic is restored (recovery ratio),
- the latency cost of the detours (mean latency before/after),
- and the blast radius (affected vs. untouched chains).

The sweep varies how much spare capacity the deployment has, showing the
provisioning/resilience trade-off a Switchboard operator would use for
planning.
"""

import random

from _common import emit, fmt, format_table, register_bench

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
    fail_site,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane.forwarder import DataPlane
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService

NUM_CHAINS = 12
CHAIN_DEMAND = 4.0
#: Headroom factors: total VNF capacity as a multiple of total demand load.
HEADROOM = (1.0, 1.5, 2.0)


def build(headroom: float):
    # a is the central hub: failing its site forces latency detours.
    nodes = ["a", "b", "c", "d"]
    latency = {
        ("a", "b"): 8.0, ("a", "c"): 8.0, ("a", "d"): 8.0,
        ("b", "c"): 16.0, ("b", "d"): 16.0, ("c", "d"): 16.0,
    }
    sites = [CloudSite(s.upper(), s, 10_000.0) for s in nodes]
    # Total load = chains * 2 * (fwd + rev) = 12 * 2 * 5 = 120 per unit
    # headroom; spread over three deployment sites (A is the busiest:
    # it is nearest to most ingresses).
    per_site = NUM_CHAINS * 2 * (CHAIN_DEMAND * 1.25) * headroom / 3
    capacity = {"A": per_site, "B": per_site, "C": per_site}
    vnfs = [VNF("fw", 1.0, dict(capacity))]
    model = NetworkModel(nodes, latency, sites, vnfs)

    dp = DataPlane(random.Random(0))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B", "C", "D"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, dict(capacity)))
    edge = EdgeController("vpn")
    for site in ("A", "B", "C", "D"):
        edge.register_instance(EdgeInstance(f"edge.{site}", site, dp))
        edge.register_attachment(f"att-{site}", site)
    gs.register_edge_service(edge)

    rng = random.Random(42)
    for i in range(NUM_CHAINS):
        ingress, egress = rng.sample(["A", "B", "C", "D"], 2)
        gs.create_chain(
            ChainSpecification(
                f"chain{i}", "vpn", f"att-{ingress}", f"att-{egress}",
                ["fw"],
                forward_demand=CHAIN_DEMAND,
                reverse_demand=CHAIN_DEMAND * 0.25,
                dst_prefixes=[f"20.0.{i}.0/24"],
            )
        )
    return gs


def busiest_site(gs: GlobalSwitchboard) -> str:
    loads = gs.router.solution.site_loads()
    return max(loads, key=loads.get)


@register_bench("failure_recovery", warmup=0, repeats=2)
def run_failure_recovery():
    rows = []
    for headroom in HEADROOM:
        gs = build(headroom)
        latency_before = gs.router.solution.mean_latency()
        carried_before = gs.router.solution.throughput()
        victim = busiest_site(gs)
        report = fail_site(gs, victim)
        latency_after = gs.router.solution.mean_latency()
        carried_after = gs.router.solution.throughput()
        rows.append(
            (
                headroom,
                victim,
                len(report.affected_chains),
                NUM_CHAINS - len(report.affected_chains),
                report.recovery_ratio(),
                carried_after / carried_before,
                latency_before,
                latency_after,
            )
        )
    return rows


def test_failure_recovery(benchmark):
    rows = benchmark.pedantic(run_failure_recovery, iterations=1, rounds=1)
    formatted = [
        (
            fmt(headroom, 1) + "x",
            victim,
            affected,
            untouched,
            fmt(100 * recovery, 0) + "%",
            fmt(100 * carried, 0) + "%",
            fmt(lat_before, 1),
            fmt(lat_after, 1),
        )
        for (headroom, victim, affected, untouched, recovery, carried,
             lat_before, lat_after) in rows
    ]
    emit(
        "failure_recovery",
        format_table(
            "Failure recovery -- busiest-site failure vs provisioning headroom",
            ["headroom", "failed site", "affected chains", "untouched",
             "affected traffic restored", "total carried after",
             "latency before (ms)", "latency after (ms)"],
            formatted,
            notes=[
                "global re-routing restores affected chains onto surviving "
                "sites; restoration is capacity-limited at 1.0x headroom",
            ],
        ),
    )

    by_headroom = {r[0]: r for r in rows}
    # With 2x headroom the failure is fully masked (throughput-wise).
    assert by_headroom[2.0][4] >= 0.999
    # With no headroom the recovery is partial.
    assert by_headroom[1.0][4] < 0.999
    # More headroom never recovers less.
    recoveries = [r[4] for r in rows]
    assert recoveries == sorted(recoveries)
    # Where recovery is complete, the detours cost latency (the failed
    # site was the central hub).  At 1.0x headroom the mean is computed
    # over surviving traffic only, so it is not comparable.
    for row in rows:
        if row[4] >= 0.999:
            assert row[7] >= row[6] - 1e-6
