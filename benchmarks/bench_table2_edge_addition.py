"""Table 2: latency of adding a new edge site to a chain.

Paper result: six operations with latencies 0 / 63 / 93 / 74 / 233 / 104
ms; the total for the remaining operations (after the 0 ms local choice)
stays below 600 ms, so a chain extends to a new edge site within the
first packet's connection-setup budget.
"""

from _common import emit, fmt, format_table, register_bench

from repro.controller.timing import (
    PAPER_TABLE2_MS,
    simulate_edge_site_addition,
)


@register_bench("table2_edge_addition", warmup=1, repeats=5)
def run_table2():
    return simulate_edge_site_addition()


def test_table2_edge_addition(benchmark):
    timeline = benchmark.pedantic(run_table2, iterations=1, rounds=1)
    rows = []
    for operation, paper_ms in PAPER_TABLE2_MS.items():
        model_ms = timeline.duration_of(operation) * 1e3
        rows.append((operation, fmt(paper_ms, 0), fmt(model_ms, 0)))
    total_model = timeline.summed_durations_s * 1e3
    total_paper = sum(PAPER_TABLE2_MS.values())
    emit(
        "table2_edge_addition",
        format_table(
            "Table 2 -- latency in adding a new edge site to a chain",
            ["operation", "paper (ms)", "model (ms)"],
            rows,
            notes=[
                f"sum of operations: model {fmt(total_model, 0)} ms, "
                f"paper {fmt(total_paper, 0)} ms (paper: below 600 ms)",
            ],
        ),
    )

    for operation, paper_ms in PAPER_TABLE2_MS.items():
        assert abs(timeline.duration_of(operation) * 1e3 - paper_ms) <= 1.0
    assert total_model < 600.0
    # The first step is a purely local computation.
    assert timeline.duration_of("Local SB chooses the 1st VNF's site") == 0.0
