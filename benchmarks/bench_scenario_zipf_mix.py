"""Scenario bench: multi-tenant Zipf chain mix through the full soak stack.

Drives the ``zipf_mix`` library scenario (tenant popularity follows a
Zipf law, so a few tenants dominate the create stream) against the
monolithic soak deployment with a quiet fault schedule: the measured
cost is pure workload processing -- chain installs through the 2PC
path, removals, and re-demand re-optimizations -- plus the invariant
probes on the simulated clock.  Regressions here mean the scenario
engine, the install path, or the probe cadence got slower.

Every run must stay violation-free; the table reports the op mix the
schedule applied so a generator change that silently shrinks the
workload is visible in review.
"""

from _common import emit, format_table, register_bench

from repro.chaos import Scenario, SoakConfig, run_soak
from repro.scenarios import generate

SEEDS = (11, 12, 13)
DURATION_S = 16.0


def run_one(seed: int):
    workload = generate("zipf_mix", seed, duration_s=DURATION_S)
    report = run_soak(
        SoakConfig(seed=seed, duration_s=DURATION_S),
        scenario=Scenario(seed=seed, duration_s=DURATION_S, events=[]),
        workload=workload,
    )
    return workload, report


@register_bench("scenario_zipf_mix", warmup=1, repeats=3)
def run_bench():
    return {seed: run_one(seed) for seed in SEEDS}


def test_scenario_zipf_mix(benchmark):
    results = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    rows = []
    for seed, (workload, report) in results.items():
        counts = report.workload_counts
        rows.append((
            seed,
            len(workload.ops),
            report.workload_ops_applied,
            counts.get("created", 0),
            counts.get("create_rejected", 0),
            counts.get("removed", 0),
            len(report.violations),
        ))
        assert report.passed, report.render()
        assert report.workload_digest == workload.digest()
        assert report.workload_ops_applied == len(workload.ops)
        assert counts.get("created", 0) > 0, "zipf mix must install chains"
    emit(
        "scenario_zipf_mix",
        format_table(
            "Scenario -- multi-tenant Zipf mix through the soak stack "
            f"({len(SEEDS)} seeds, {DURATION_S:g}s simulated)",
            ["seed", "scheduled ops", "applied", "created", "rejected",
             "removed", "violations"],
            rows,
            notes=[
                "quiet fault schedule: the measured cost is workload "
                "processing (installs, removals, re-demands) plus "
                "invariant probes",
            ],
        ),
    )
