"""Table 3: sharing a cache VNF instance across chains.

Paper setup: five service chains fetch web objects (Zipf exponent 1,
50 KB mean size) through Squid caches, with a 60 ms RTT to the origin
site.  One *shared* cache instance for all chains is compared against
five vertically siloed instances of one-fifth the size.

Paper result: sharing yields a 57.45% hit rate vs 44.25% (a ~30%
relative improvement) and a 56.49 ms vs 70.02 ms mean download time
(19% better).
"""

from _common import emit, fmt, format_table, register_bench

from repro.vnf.cache import run_cache_experiment

PAPER = {
    "shared": (57.45, 56.49),
    "siloed": (44.25, 70.02),
}

# Calibrated so absolute hit rates land near the paper's Squid numbers:
# a catalog an order of magnitude larger than the cache, Zipf(1).
PARAMS = dict(
    num_chains=5,
    total_cache_objects=600,
    requests_per_chain=4000,
    catalog_objects=6000,
    zipf_exponent=1.0,
    mean_file_kb=50.0,
    client_cache_rtt_ms=2.0,
    cache_origin_rtt_ms=60.0,
    bandwidth_mbps=100.0,
    seed=7,
    # Each customer's popularity ranking is rotated, so hot sets overlap
    # only partially -- calibrated to the paper's Squid hit rates.
    popularity_spread=100,
)


@register_bench("table3_cache_sharing")
def run_table3():
    shared = run_cache_experiment(shared=True, **PARAMS)
    siloed = run_cache_experiment(shared=False, **PARAMS)
    return shared, siloed


def test_table3_cache_sharing(benchmark):
    shared, siloed = benchmark.pedantic(run_table3, iterations=1, rounds=1)
    rows = [
        (
            "Shared cache inst.",
            fmt(100 * shared.hit_rate, 2) + "%",
            fmt(shared.mean_download_ms, 2),
            f"{PAPER['shared'][0]}%",
            PAPER["shared"][1],
        ),
        (
            "Vertically siloed cache inst.",
            fmt(100 * siloed.hit_rate, 2) + "%",
            fmt(siloed.mean_download_ms, 2),
            f"{PAPER['siloed'][0]}%",
            PAPER["siloed"][1],
        ),
    ]
    hit_gain = (shared.hit_rate - siloed.hit_rate) / siloed.hit_rate
    dl_gain = 1 - shared.mean_download_ms / siloed.mean_download_ms
    emit(
        "table3_cache_sharing",
        format_table(
            "Table 3 -- advantage of sharing a cache across chains",
            ["scheme", "hit rate", "download (ms)",
             "paper hit rate", "paper dl (ms)"],
            rows,
            notes=[
                f"relative hit-rate gain: {fmt(100 * hit_gain, 0)}% "
                "(paper: 30%)",
                f"download-time improvement: {fmt(100 * dl_gain, 0)}% "
                "(paper: 19%)",
            ],
        ),
    )

    # Absolute values near the paper's Squid measurements.
    assert abs(shared.hit_rate - 0.5745) < 0.08
    assert abs(siloed.hit_rate - 0.4425) < 0.08
    # Relative effects: the paper's 30% hit gain and 19% download gain.
    assert 0.15 <= hit_gain <= 0.50
    assert 0.10 <= dl_gain <= 0.30
    assert shared.mean_download_ms < siloed.mean_download_ms
