"""Solver farm vs. monolithic SB-LP (the Section 7 scalability story).

The paper reports SB-LP solve times that grow superlinearly with the
chain count (up to three hours at 10 000 chains on CPLEX).  The
``repro.scale`` farm attacks that curve by partitioning the chain set,
solving partitions independently (optionally across processes), caching
partition solutions by model digest, and re-solving only changed
partitions on re-optimization.

Measured here on a 128-chain workload.  With the column-generation
direct-HiGHS backend the *monolithic* solve is no longer superlinearly
slow at this size, so the farm's edge is amortization, not raw cold
wall time:

- cold farm solve stays within a small factor of monolithic (the
  decomposition overhead -- partitioning plus per-partition solver
  setup -- is bounded);
- merged-objective optimality gap vs. the documented
  ``DEFAULT_GAP_TOLERANCE`` contract;
- warm-cache re-solve (every partition a cache hit) beats monolithic
  by >= 2x;
- incremental ``resolve`` after one chain's demand changes (exactly one
  partition re-solved, asserted via the ``scale.*`` obs counters)
  beats a full monolithic re-solve by >= 2x.

Each invocation clears the module-global LP matrix cache first so
every repeat measures a cold monolithic solve against a cold farm
solve -- otherwise the cache populated by repeat N makes repeat N+1
incomparable.
"""

import time

from _common import emit, fmt, format_table, register_bench

from repro.core.lp import (
    LpObjective,
    clear_matrix_cache,
    solve_chain_routing_lp,
)
from repro.obs import MetricsRegistry
from repro.scale import DEFAULT_GAP_TOLERANCE, SolverFarm
from repro.topology import WorkloadConfig, build_backbone, generate_workload
from repro.topology.cities import DEFAULT_CITIES

CITIES = DEFAULT_CITIES[:14]
NUM_CHAINS = 128
PARTITION_SIZE = 16


def make_model():
    config = WorkloadConfig(
        num_chains=NUM_CHAINS,
        num_vnfs=10,
        coverage=0.5,
        total_traffic=8000.0,
        site_capacity=26000.0,
        cities=CITIES,
        seed=11,
    )
    return generate_workload(config, build_backbone(CITIES))


@register_bench(
    "scale_solver_farm", warmup=0, repeats=2, model_factory=make_model
)
def run_solver_farm():
    clear_matrix_cache()
    model = make_model()
    registry = MetricsRegistry()

    start = time.perf_counter()
    mono = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    mono_s = time.perf_counter() - start
    assert mono.ok

    farm = SolverFarm(
        partition_size=PARTITION_SIZE, max_workers=1, metrics=registry
    )
    start = time.perf_counter()
    cold = farm.solve(model)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = farm.solve(model)
    warm_s = time.perf_counter() - start
    # Validate now: the solution references the live model, which the
    # incremental step below mutates.
    cold_violations = cold.solution.violations()

    # Scale one chain's demand by 1.5x and re-solve incrementally.
    solves_before = registry.value("scale.partition_solves")
    changed = sorted(model.chains)[0]
    chain = model.chains[changed]
    model.remove_chain(changed)
    model.add_chain(chain.scaled(1.5))
    start = time.perf_counter()
    incr = farm.resolve(model, [changed])
    incr_s = time.perf_counter() - start
    incr_solves = registry.value("scale.partition_solves") - solves_before

    rows = [
        ("monolithic", mono_s, mono.solution.throughput(), None, None),
        ("farm cold", cold_s, cold.solution.throughput(), cold, mono_s),
        ("farm warm", warm_s, warm.solution.throughput(), warm, mono_s),
        ("incremental", incr_s, incr.solution.throughput(), incr, mono_s),
    ]
    return rows, incr_solves, cold_violations, incr, registry


def test_scale_solver_farm(benchmark):
    rows, incr_solves, cold_violations, incr, registry = benchmark.pedantic(
        run_solver_farm, iterations=1, rounds=1
    )
    (_, mono_s, mono_thr, _, _) = rows[0]
    formatted = []
    for name, seconds, thr, result, base_s in rows:
        if result is None:
            formatted.append(
                (name, fmt(seconds), fmt(thr, 1), "-", "-", "-")
            )
        else:
            formatted.append(
                (
                    name,
                    fmt(seconds),
                    fmt(thr, 1),
                    f"{len(result.solved)}/{result.partitions}",
                    str(result.cache_hits),
                    fmt(base_s / seconds, 1) + "x",
                )
            )
    gap = abs(rows[1][2] - mono_thr) / mono_thr
    emit(
        "scale_solver_farm",
        format_table(
            f"repro.scale -- solver farm vs. monolithic SB-LP "
            f"({NUM_CHAINS} chains, partition size {PARTITION_SIZE})",
            ["solver", "wall s", "carried", "solved", "cache hits",
             "speedup"],
            formatted,
            notes=[
                f"merged-objective gap {fmt(100 * gap, 1)}% "
                f"(documented tolerance "
                f"{fmt(100 * DEFAULT_GAP_TOLERANCE, 0)}%)",
                "single process, cold LP matrix cache: the farm's edge "
                "is warm/incremental amortization; a pool multiplies "
                "partition solves by core count",
                f"incremental resolve after 1 chain changed: "
                f"{incr_solves:.0f} partition solve(s), rest from cache",
            ],
        ),
    )

    cold_s, warm_s, incr_s = rows[1][1], rows[2][1], rows[3][1]
    # Acceptance: decomposition overhead bounded on the cold solve, gap
    # within the documented tolerance, zero constraint violations.
    assert cold_s <= 3.0 * mono_s
    assert gap <= DEFAULT_GAP_TOLERANCE
    assert not cold_violations
    assert not incr.solution.violations()
    # Warm cache: nothing solved, everything served.
    assert mono_s / warm_s >= 2.0
    # Incremental resolve beats a full monolithic re-solve.
    assert mono_s / incr_s >= 2.0
    # Incremental: exactly one partition re-solved (obs counters).
    assert incr_solves == 1
    assert len(incr.solved) == 1
    assert incr.cache_hits == incr.partitions - 1
    assert registry.value("scale.cache.hits") >= incr.partitions - 1
