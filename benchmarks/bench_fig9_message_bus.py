"""Figure 9: global message bus vs full-mesh broadcast.

Paper result: on a multi-site testbed with emulated WAN delays, the
proxy-topology bus achieves 57% higher throughput and more than 10x
lower latency than full-mesh broadcast, because broadcast serializes one
copy per *subscriber* through the publisher site's uplink (queueing) and
overflows its buffers (drops), while the bus sends one copy per
subscribed *site*.
"""

from _common import emit, fmt, format_table, register_bench

from repro.bus import Topic, make_bus, make_full_mesh_bus

SITES = [f"S{i}" for i in range(10)]
SUBSCRIBERS_PER_SITE = 5
PUBLISHES = 700
PUBLISH_INTERVAL_S = 1 / 35  # ~35 msg/s: bus at ~31% uplink, mesh at ~157%
WAN_DELAY_S = 0.025
UPLINK_BPS = 8e6  # 1000 msgs/s of 1000 B
BUFFER_BYTES = 400_000


def run_bus(make, metrics=None):
    bus = make(
        SITES,
        wan_delay_s=WAN_DELAY_S,
        uplink_bps=UPLINK_BPS,
        uplink_buffer_bytes=BUFFER_BYTES,
        metrics=metrics,
    )
    topic = Topic(chain="c1", egress="e3", vnf="G", site="S0", kind="instances")
    bus.attach("pub", "S0")
    for site in SITES[1:]:
        for j in range(SUBSCRIBERS_PER_SITE):
            name = f"sub-{site}-{j}"
            bus.attach(name, site)
            bus.subscribe(name, topic)
    for i in range(PUBLISHES):
        bus.network.sim.schedule(
            i * PUBLISH_INTERVAL_S, bus.publish, "pub", topic, {"seq": i}
        )
    bus.network.run()
    return bus.stats


@register_bench("fig9_message_bus")
def run_figure9(metrics=None):
    return run_bus(make_bus, metrics), run_bus(make_full_mesh_bus, metrics)


def test_fig9_message_bus(benchmark, obs_registry):
    proxy, mesh = benchmark.pedantic(
        run_figure9, args=(obs_registry,), iterations=1, rounds=1
    )
    latency_ratio = mesh.mean_latency() / proxy.mean_latency()
    throughput_gain = proxy.delivered / mesh.delivered - 1
    rows = [
        (
            name,
            stats.published,
            stats.wan_messages,
            stats.wan_drops,
            stats.delivered,
            fmt(stats.mean_latency() * 1e3, 1),
            fmt(stats.p99_latency() * 1e3, 1),
        )
        for name, stats in (("Switchboard bus", proxy), ("full-mesh", mesh))
    ]
    emit(
        "fig9_message_bus",
        format_table(
            "Figure 9 -- message bus vs full-mesh broadcast "
            f"({len(SITES)} sites, {SUBSCRIBERS_PER_SITE} subs/site)",
            ["scheme", "published", "wan msgs", "wan drops", "delivered",
             "mean lat (ms)", "p99 lat (ms)"],
            rows,
            notes=[
                f"latency ratio (mesh/bus): {fmt(latency_ratio, 1)}x "
                "(paper: >10x)",
                f"bus throughput gain: {fmt(100 * throughput_gain, 0)}% "
                "(paper: 57%)",
            ],
        ),
    )

    # One copy per site vs one per subscriber.
    assert proxy.wan_messages == PUBLISHES * (len(SITES) - 1)
    assert mesh.wan_messages == PUBLISHES * (len(SITES) - 1) * SUBSCRIBERS_PER_SITE
    # The paper's two headline effects.
    assert latency_ratio > 10.0
    assert mesh.wan_drops > 0 and proxy.wan_drops == 0
    assert 0.3 <= throughput_gain <= 0.9  # paper: 0.57
