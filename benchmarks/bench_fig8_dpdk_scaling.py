"""Figure 8: DPDK forwarder horizontal scaling in cores and flows.

Paper result: ~7 Mpps on one core with few flows; each added forwarder
core contributes 3-4 Mpps at the 512K-flows-per-core operating point;
six cores with 3M total flows exceed 20 Mpps (80 Gbps at 500-byte
packets); per-core throughput settles above 3 Mpps when the flow table
far exceeds the CPU cache; 1 ms latency at peak load, tens of
microseconds otherwise.
"""

from _common import emit, fmt, format_table, register_bench

from repro.dataplane.perfmodel import DpdkForwarderModel, pps_to_gbps


@register_bench("fig8_dpdk_scaling", warmup=1, repeats=5)
def run_figure8():
    model = DpdkForwarderModel()
    core_rows = []
    for cores in range(1, 7):
        small = model.throughput_pps(cores, 10_000)
        big = model.throughput_pps(cores, 512_000)
        core_rows.append(
            (
                cores,
                cores * 512_000,
                fmt(small / 1e6),
                fmt(big / 1e6),
                fmt(pps_to_gbps(big, 500), 1),
            )
        )
    flow_rows = []
    for flows in (10_000, 128_000, 256_000, 512_000, 2_000_000, 50_000_000):
        flow_rows.append(
            (
                flows,
                fmt(model.miss_rate(flows), 3),
                fmt(model.per_core_pps(flows) / 1e6),
            )
        )
    latency_rows = [
        (fmt(u, 2), fmt(model.latency_us(u), 1))
        for u in (0.1, 0.5, 0.9, 0.99, 1.0)
    ]
    return model, core_rows, flow_rows, latency_rows


def test_fig8_dpdk_scaling(benchmark):
    model, core_rows, flow_rows, latency_rows = benchmark.pedantic(
        run_figure8, iterations=1, rounds=1
    )
    emit(
        "fig8_dpdk_scaling",
        format_table(
            "Figure 8 -- DPDK forwarder scale-out",
            ["cores", "total flows", "Mpps (10K flows/core)",
             "Mpps (512K flows/core)", "Gbps@500B"],
            core_rows,
            notes=[
                "paper: 7 Mpps @ 1 core; >20 Mpps @ 6 cores with 3M flows",
            ],
        )
        + format_table(
            "Figure 8 (cont.) -- per-core rate vs flow-table size",
            ["flows/core", "cache miss rate", "Mpps/core"],
            flow_rows,
            notes=["paper: steady state 'in excess of 3 Mpps' per core"],
        )
        + format_table(
            "Figure 8 (cont.) -- forwarding latency vs load",
            ["load fraction", "latency (us)"],
            latency_rows,
            notes=["paper: 1 ms at max throughput, tens of us at low load"],
        ),
    )

    assert model.throughput_pps(1, 10_000) > 7e6
    assert model.throughput_pps(6, 512_000) > 20e6
    assert pps_to_gbps(model.throughput_pps(6, 512_000), 500) > 80.0
    assert model.steady_state_pps() > 3e6
    one = model.throughput_pps(1, 512_000)
    two = model.throughput_pps(2, 512_000)
    assert 3e6 <= two - one <= 4.6e6
    assert model.latency_us(1.0) == 1000.0
    assert model.latency_us(0.1) < 50.0
