"""Federated two-level control plane vs. monolithic solver farm.

The federation's scalability claim: cutting the substrate into regions
and planning each region independently (with only cross-shard chains
going through the global coordinator's split + 2PC install) beats the
monolithic ``SolverFarm`` on the same workload -- because each regional
LP sees a fraction of the substrate *and* a fraction of the chains, the
partitioner and the per-partition pre-route DP shrink superlinearly.

Measured on a generated clustered PoP topology
(:func:`repro.topology.pops.generate_federation_workload`) at a
CI-sized scale; ``python -m repro federation --pops 500
--chains 100000`` runs the same comparison at paper scale.

Acceptance (the ISSUE contract, checked every CI run):

- federated cold plan beats the monolithic farm's cold solve >= 3x;
- federated incremental re-plan after demand changes beats the
  monolithic farm's incremental resolve >= 3x;
- carried-throughput gap vs. monolithic within the documented 15%
  partition tolerance;
- zero capacity-safety / atomicity / stitching invariant violations.
"""

import time

from _common import emit, fmt, format_table, register_bench

from repro.core.lp import LpObjective, clear_matrix_cache
from repro.federation import GlobalCoordinator, check_all
from repro.scale import DEFAULT_GAP_TOLERANCE, SolverFarm
from repro.topology.pops import PopGridConfig, generate_federation_workload

NUM_POPS = 36
NUM_REGIONS = 3
NUM_CHAINS = 144
PARTITION_SIZE = 16
NUM_CHANGED = 6


def make_model():
    config = PopGridConfig(
        num_pops=NUM_POPS,
        num_metros=NUM_REGIONS,
        num_chains=NUM_CHAINS,
        seed=7,
    )
    model, _metro_of = generate_federation_workload(config)
    return model


def _scale_chains(model, names, factor):
    for name in names:
        chain = model.chains[name]
        model.remove_chain(name)
        model.add_chain(chain.scaled(factor))


@register_bench(
    "federation_scale", warmup=0, repeats=2, model_factory=make_model
)
def run_federation_scale():
    clear_matrix_cache()
    model = make_model()

    coordinator = GlobalCoordinator(
        model,
        n_regions=NUM_REGIONS,
        partition_size=PARTITION_SIZE,
        max_workers=1,
    )
    coordinator.sync_chains()
    stats = coordinator.stats()

    start = time.perf_counter()
    fed_cold = coordinator.plan_all(LpObjective.MAX_THROUGHPUT)
    fed_cold_s = time.perf_counter() - start

    changed = sorted(model.chains)[:NUM_CHANGED]
    _scale_chains(model, changed, 1.25)
    start = time.perf_counter()
    fed_incr = coordinator.resolve(model, changed)
    fed_incr_s = time.perf_counter() - start
    violations = check_all(coordinator, fed_incr)
    _scale_chains(model, changed, 1.0 / 1.25)
    coordinator.sync_chains()

    # Monolithic farm on the identical workload (fresh matrix cache so
    # the comparison is cold-vs-cold).
    clear_matrix_cache()
    farm = SolverFarm(partition_size=PARTITION_SIZE, max_workers=1)
    start = time.perf_counter()
    mono_cold = farm.solve(model, LpObjective.MAX_THROUGHPUT)
    mono_cold_s = time.perf_counter() - start
    _scale_chains(model, changed, 1.25)
    start = time.perf_counter()
    mono_incr = farm.resolve(model, changed)
    mono_incr_s = time.perf_counter() - start

    return {
        "stats": stats,
        "fed_cold_s": fed_cold_s,
        "fed_incr_s": fed_incr_s,
        "fed_cold": fed_cold,
        "fed_incr": fed_incr,
        "mono_cold_s": mono_cold_s,
        "mono_incr_s": mono_incr_s,
        "mono_cold": mono_cold,
        "mono_incr": mono_incr,
        "violations": violations,
    }


def test_federation_scale(benchmark):
    r = benchmark.pedantic(run_federation_scale, iterations=1, rounds=1)
    stats = r["stats"]
    mono_carried = (
        r["mono_cold"].solution.throughput() if r["mono_cold"].solution else 0.0
    )
    fed_carried = r["fed_cold"].carried_demand
    gap = abs(fed_carried - mono_carried) / max(mono_carried, 1e-9)
    cold_speedup = r["mono_cold_s"] / max(r["fed_cold_s"], 1e-9)
    incr_speedup = r["mono_incr_s"] / max(r["fed_incr_s"], 1e-9)

    rows = [
        (
            "monolithic cold",
            fmt(r["mono_cold_s"]),
            fmt(mono_carried, 1),
            "-",
        ),
        (
            "federated cold",
            fmt(r["fed_cold_s"]),
            fmt(fed_carried, 1),
            fmt(cold_speedup, 1) + "x",
        ),
        (
            "monolithic incr",
            fmt(r["mono_incr_s"]),
            "-",
            "-",
        ),
        (
            "federated incr",
            fmt(r["fed_incr_s"]),
            fmt(r["fed_incr"].carried_demand, 1),
            fmt(incr_speedup, 1) + "x",
        ),
    ]
    emit(
        "federation_scale",
        format_table(
            f"repro.federation -- two-level federated plan vs. monolithic "
            f"farm ({NUM_POPS} PoPs, {NUM_CHAINS} chains, "
            f"{NUM_REGIONS} regions)",
            ["plan", "wall s", "carried", "speedup"],
            rows,
            notes=[
                f"{stats['chains_cross']} cross-shard chains "
                f"({stats['cross_shard_ratio']:.1%}) across "
                f"{stats['borders']} border links",
                f"carried-throughput gap vs. monolithic "
                f"{fmt(100 * gap, 1)}% (tolerance "
                f"{fmt(100 * DEFAULT_GAP_TOLERANCE, 0)}%)",
                f"incremental: {NUM_CHANGED} chains re-scaled; regions "
                f"re-solved {list(r['fed_incr'].resolved_regions)}",
            ],
        ),
    )

    # Acceptance: the ISSUE's federation contract.
    assert r["fed_cold"].ok and r["fed_incr"].ok
    assert r["mono_cold"].ok and r["mono_incr"].ok
    assert cold_speedup >= 3.0
    assert incr_speedup >= 3.0
    assert gap <= DEFAULT_GAP_TOLERANCE
    assert not r["violations"]
    # Only regions actually hosting a changed chain re-solved.
    assert 0 < len(r["fed_incr"].resolved_regions) <= NUM_REGIONS
