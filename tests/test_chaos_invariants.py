"""Self-tests for the invariant checkers.

The acceptance bar for a checker is that it is *live*: deliberately
corrupting the state it watches must produce a violation, and a healthy
system must produce none.  Each test here corrupts exactly one thing.
"""

import pytest

from repro.bus.bus import Delivery
from repro.chaos import (
    InvariantChecker,
    LeaseGrant,
    LeaseMonitor,
    SoakConfig,
    build_deployment,
    bus_delivery,
    capacity_safety,
    lease_safety,
    link_conservation,
    network_quiescence,
    two_phase_atomicity,
)
from repro.controller.replication import ReplicatedStore
from repro.simnet.events import Simulator
from repro.simnet.network import LinkSpec, SimNetwork


@pytest.fixture()
def deployment():
    return build_deployment(SoakConfig(seed=1, num_chains=3))


class TestChecker:
    def test_clean_system_has_no_violations(self, deployment):
        d = deployment
        checker = InvariantChecker(d.sim)
        checker.add("conservation", link_conservation(d.net))
        checker.add("2pc", two_phase_atomicity(d.gs))
        checker.add("capacity", capacity_safety(d.gs))
        checker.add("bus", bus_delivery(d.bus))
        checker.add("lease", lease_safety(d.monitor))
        assert checker.check_now() == []
        assert checker.violations == []
        assert checker.probes_run == 5

    def test_periodic_probing_on_sim_clock(self):
        sim = Simulator()
        checker = InvariantChecker(sim, interval_s=1.0)
        seen = []
        checker.add("spy", lambda: seen.append(sim.now) or [])
        checker.start(until=5.0)
        sim.run()
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_violation_records_sim_time(self):
        sim = Simulator()
        checker = InvariantChecker(sim)
        checker.add("always", lambda: ["broken"])
        sim.schedule(2.5, checker.check_now)
        sim.run()
        (violation,) = checker.violations
        assert violation.at == 2.5
        assert violation.invariant == "always"
        assert violation.detail == "broken"

    def test_duplicate_probe_rejected(self):
        checker = InvariantChecker(Simulator())
        checker.add("x", lambda: [])
        with pytest.raises(ValueError):
            checker.add("x", lambda: [])

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(Simulator(), interval_s=0.0)


class TestLinkConservation:
    def make_net(self):
        net = SimNetwork(Simulator())
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", LinkSpec(delay_s=0.001))
        net.send("a", "b", "x")
        net.run()
        return net

    def test_corrupt_delivered_counter_detected(self):
        net = self.make_net()
        probe = link_conservation(net)
        assert probe() == []
        net._links[("a", "b")].stats.delivered += 5  # corruption
        assert any("delivered" in v for v in probe())

    def test_corrupt_byte_ledger_detected(self):
        net = self.make_net()
        probe = link_conservation(net)
        assert probe() == []
        net._links[("a", "b")].stats.bytes_dropped += 10_000
        assert any("byte ledger" in v for v in probe())

    def test_backwards_counter_detected(self):
        net = self.make_net()
        probe = link_conservation(net)
        assert probe() == []
        net._links[("a", "b")].stats.sent -= 1  # lost from the ledger
        assert any("backwards" in v for v in probe())

    def test_quiescence_flags_in_flight(self):
        net = SimNetwork(Simulator())
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", LinkSpec(delay_s=1.0))
        net.send("a", "b", "x")
        probe = network_quiescence(net)
        assert probe() != []  # still crossing
        net.run()
        assert probe() == []


class TestTwoPhaseAtomicity:
    def test_dangling_reservation_detected(self, deployment):
        d = deployment
        probe = two_phase_atomicity(d.gs)
        assert probe() == []
        # A prepare that never commits nor aborts: the half-open state
        # a crashed coordinator would leave behind.
        d.gs.vnf_services["fw"].prepare("ghost-chain", "A", 1.0)
        assert any("dangling" in v for v in probe())


class TestCapacitySafety:
    def test_overcommit_detected(self, deployment):
        d = deployment
        probe = capacity_safety(d.gs)
        assert probe() == []
        service = d.gs.vnf_services["fw"]
        service._committed["A"] += 10 * service.site_capacity["A"]
        assert any("exceeds" in v for v in probe())

    def test_ledger_mismatch_detected(self, deployment):
        d = deployment
        probe = capacity_safety(d.gs)
        name = next(iter(d.gs.installations))
        installation = d.gs.installations[name]
        (key, load) = next(iter(installation.committed_load.items()))
        installation.committed_load[key] = load + 1.0  # silent skew
        assert any("ledger" in v for v in probe())


class TestBusDelivery:
    def test_phantom_delivery_detected(self, deployment):
        d = deployment
        probe = bus_delivery(d.bus)
        assert probe() == []
        d.bus.stats.deliveries.append(Delivery("/t", "nobody", 0.0, 1.0))
        assert any("unknown client" in v for v in probe())

    def test_unlogged_delivery_detected(self, deployment):
        d = deployment
        d.bus.attach("real", "A")
        d.bus.stats.deliveries.append(Delivery("/t", "real", 0.0, 1.0))
        # The bus says "real" got a message, but the client log is empty.
        assert any("receipts" in v for v in bus_delivery(d.bus)())

    def test_negative_latency_detected(self, deployment):
        d = deployment
        d.bus.attach("real", "A")
        d.bus.clients["real"].received.append((0.0, "/t", None))
        d.bus.stats.deliveries.append(Delivery("/t", "real", 5.0, 0.0))
        assert any("negative" in v for v in bus_delivery(d.bus)())


class TestLeaseSafety:
    def make_monitor(self):
        return LeaseMonitor(ReplicatedStore(["r1", "r2", "r3"]))

    def test_store_enforced_grants_are_safe(self):
        monitor = self.make_monitor()
        probe = lease_safety(monitor)
        assert monitor.acquire("gs-1", now=0.0, duration=5.0)
        assert not monitor.acquire("gs-2", now=1.0, duration=5.0)
        assert monitor.acquire("gs-1", now=3.0, duration=5.0)  # renew
        assert monitor.acquire("gs-2", now=9.0, duration=5.0)  # takeover
        assert probe() == []
        assert len(monitor.grants) == 2  # renewal extended, not appended

    def test_injected_overlap_detected(self):
        monitor = self.make_monitor()
        monitor.grants.append(LeaseGrant("gs-1", 0.0, 10.0, 3))
        monitor.grants.append(LeaseGrant("gs-2", 5.0, 15.0, 3))  # overlap
        assert any("overlapping" in v for v in lease_safety(monitor)())

    def test_quorumless_grant_detected(self):
        monitor = self.make_monitor()
        monitor.grants.append(LeaseGrant("gs-1", 0.0, 10.0, quorum_alive=1))
        assert any("quorum" in v.lower() or "replicas alive" in v
                   for v in lease_safety(monitor)())

    def test_release_truncates_grant(self):
        monitor = self.make_monitor()
        monitor.acquire("gs-1", now=0.0, duration=10.0)
        monitor.release("gs-1", now=2.0)
        assert monitor.grants[0].expires_at == 2.0
        # Another owner right after release: legal, no overlap.
        monitor.acquire("gs-2", now=2.5, duration=10.0)
        assert lease_safety(monitor)() == []

    def test_quorum_loss_is_clean_failure(self):
        monitor = self.make_monitor()
        monitor.store.fail("r1")
        monitor.store.fail("r2")
        assert monitor.acquire("gs-1", now=0.0, duration=5.0) is False
        assert monitor.failed_acquires == 1
        assert monitor.leader(0.0) is None
