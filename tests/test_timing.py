"""Unit tests for the timed control-plane models (timing.py API)."""

import pytest

from repro.controller.timing import (
    ControlPlaneLatencies,
    Milestone,
    PAPER_ROUTE_UPDATE_MS,
    PAPER_TABLE2_MS,
    Timeline,
    simulate_chain_route_update,
    simulate_edge_site_addition,
)


class TestTimeline:
    def test_total_is_latest_end(self):
        timeline = Timeline(
            [Milestone("a", 0.0, 0.1), Milestone("b", 0.1, 0.5)]
        )
        assert timeline.total_s == 0.5

    def test_empty_timeline_total_zero(self):
        assert Timeline().total_s == 0.0

    def test_summed_durations(self):
        timeline = Timeline(
            [Milestone("a", 0.0, 0.1), Milestone("b", 0.0, 0.2)]
        )
        assert timeline.summed_durations_s == pytest.approx(0.3)

    def test_duration_of_unknown_operation(self):
        with pytest.raises(KeyError):
            Timeline().duration_of("ghost")


class TestRouteUpdate:
    def test_default_total_matches_paper(self):
        timeline = simulate_chain_route_update()
        assert timeline.total_s * 1e3 == pytest.approx(
            PAPER_ROUTE_UPDATE_MS, rel=0.05
        )

    def test_config_tracks_end_to_end(self):
        timeline = simulate_chain_route_update()
        edge_done = next(
            m.end_s
            for m in timeline.milestones
            if m.operation == "edge-side forwarder configuration"
        )
        vnf_done = next(
            m.end_s
            for m in timeline.milestones
            if m.operation == "VNF-side forwarder configuration"
        )
        # The two tracks run concurrently; completion is the slower one.
        assert timeline.total_s == pytest.approx(max(edge_done, vnf_done))

    def test_faster_wan_shortens_update(self):
        fast = simulate_chain_route_update(
            ControlPlaneLatencies(gs_rpc_oneway_s=0.001)
        )
        slow = simulate_chain_route_update(
            ControlPlaneLatencies(gs_rpc_oneway_s=0.050)
        )
        assert fast.total_s < slow.total_s

    def test_milestones_contiguous_in_shared_prefix(self):
        timeline = simulate_chain_route_update()
        shared = timeline.milestones[:8]
        for first, second in zip(shared, shared[1:]):
            assert second.start_s == pytest.approx(first.end_s)


class TestEdgeSiteAddition:
    def test_rows_match_paper_table(self):
        timeline = simulate_edge_site_addition()
        for operation, paper_ms in PAPER_TABLE2_MS.items():
            assert timeline.duration_of(operation) * 1e3 == pytest.approx(
                paper_ms, abs=1.0
            )

    def test_operation_order_matches_table(self):
        timeline = simulate_edge_site_addition()
        names = [m.operation for m in timeline.milestones]
        assert names == list(PAPER_TABLE2_MS)

    def test_total_under_600ms(self):
        timeline = simulate_edge_site_addition()
        assert timeline.summed_durations_s < 0.6

    def test_custom_latencies_flow_through(self):
        custom = ControlPlaneLatencies(edge_dataplane_config_s=0.5)
        timeline = simulate_edge_site_addition(custom)
        assert timeline.duration_of(
            "Edge instance's fwrdr dataplane configured"
        ) == pytest.approx(0.5)
