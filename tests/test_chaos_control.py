"""Acceptance tests for the control-fault chaos mode: live 2PC installs
under control-message loss and a mid-install GS crash."""

import json

import pytest

from repro.chaos import ScenarioConfig, SoakConfig, generate_scenario, run_soak

DURATION = 20.0


def soak(seed, **kwargs):
    return run_soak(
        SoakConfig(
            seed=seed,
            duration_s=DURATION,
            control_faults=True,
            **kwargs,
        )
    )


class TestControlScenario:
    def test_control_mix_includes_new_event_kinds(self):
        config = ScenarioConfig(
            duration_s=DURATION,
            control_loss_windows=2,
            gs_crash=True,
        )
        scenario = generate_scenario(
            1, ["A", "B", "C"], [("gw.A", "proxy.B")], config
        )
        counts = scenario.counts()
        assert counts["control_loss"] == 4  # two windows, start + end
        assert counts["gs_crash"] == 1
        crash = next(e for e in scenario.events if e.kind == "gs_crash")
        assert 0.2 * DURATION <= crash.at <= 0.4 * DURATION
        assert crash.target == ("ctrl.gs",)

    def test_control_events_do_not_shift_legacy_prefix(self):
        """Enabling the control knobs appends events; the draws for the
        legacy kinds stay identical, so old seeds keep their schedules."""
        legacy = generate_scenario(
            5, ["A", "B"], [("gw.A", "proxy.B")],
            ScenarioConfig(duration_s=DURATION),
        )
        extended = generate_scenario(
            5, ["A", "B"], [("gw.A", "proxy.B")],
            ScenarioConfig(
                duration_s=DURATION, control_loss_windows=1, gs_crash=True
            ),
        )
        legacy_events = [e for e in legacy.events]
        kept = [
            e for e in extended.events
            if e.kind not in ("control_loss", "gs_crash")
        ]
        assert kept == legacy_events


class TestControlSoak:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_zero_invariant_violations(self, seed):
        report = soak(seed)
        assert report.passed, report.render()
        assert report.violations == []
        # The schedule actually exercised the control plane.
        assert report.event_counts.get("control_loss", 0) > 0
        assert report.event_counts.get("gs_crash", 0) == 1
        assert report.gs_crashes == 1
        assert report.failover_takeovers >= 1

    def test_every_install_reaches_a_terminal_state(self):
        report = soak(1)
        assert report.installs_submitted == 6
        assert (
            report.installs_completed + report.installs_failed
            == report.installs_submitted
        )

    def test_rpc_layer_was_exercised(self):
        report = soak(1)
        assert report.rpc_sent > 0
        # 20% loss windows across the control links force retransmits.
        assert report.rpc_retries > 0

    def test_same_seed_replays_byte_identically(self):
        a = soak(2)
        b = soak(2)
        assert json.dumps(a.to_doc(), sort_keys=True) == json.dumps(
            b.to_doc(), sort_keys=True
        )

    def test_different_seeds_differ(self):
        assert soak(1).scenario_digest != soak(2).scenario_digest

    def test_report_document_has_control_section(self):
        doc = soak(1).to_doc()
        control = doc["control"]
        assert control["installs_submitted"] == 6
        for key in (
            "installs_completed", "installs_failed", "deadline_aborts",
            "rpc_sent", "rpc_retries", "rpc_timeouts", "rpc_duplicates",
            "gs_crashes", "failover_takeovers", "stale_reservations_swept",
        ):
            assert key in control
