"""Tests for VNF services (2PC participation), NAT, firewall, and cache."""

import random

import pytest

from repro.dataplane.forwarder import DropPacket
from repro.dataplane.labels import FiveTuple, Packet
from repro.vnf.cache import (
    CacheError,
    LruCache,
    ZipfWorkload,
    run_cache_experiment,
)
from repro.vnf.firewall import FirewallRule, StatefulFirewall
from repro.vnf.nat import NatFunction
from repro.vnf.service import AllocationError, VnfService

FLOW = FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1234, 80)


class TestVnfService:
    def make_service(self, **kwargs):
        return VnfService("fw", 1.0, {"A": 10.0, "B": 20.0}, **kwargs)

    def test_spawns_instances_per_site(self):
        service = self.make_service(instances_per_site=2)
        assert len(service.instances_at("A")) == 2
        assert len(service.instances_at("B")) == 2

    def test_prepare_reserves_capacity(self):
        service = self.make_service()
        assert service.prepare("c1", "A", 6.0)
        assert service.available("A") == pytest.approx(4.0)

    def test_prepare_rejects_over_capacity(self):
        service = self.make_service()
        assert not service.prepare("c1", "A", 11.0)
        assert service.available("A") == pytest.approx(10.0)

    def test_prepare_rejects_unknown_site(self):
        assert not self.make_service().prepare("c1", "Z", 1.0)

    def test_prepare_is_idempotent(self):
        service = self.make_service()
        assert service.prepare("c1", "A", 6.0)
        assert service.prepare("c1", "A", 6.0)
        assert service.available("A") == pytest.approx(4.0)

    def test_commit_moves_reservation_to_allocation(self):
        service = self.make_service()
        service.prepare("c1", "A", 6.0)
        service.commit("c1", "A")
        assert service.committed("A") == pytest.approx(6.0)
        assert service.pending_reservations() == 0

    def test_commit_without_prepare_raises(self):
        with pytest.raises(AllocationError):
            self.make_service().commit("c1", "A")

    def test_abort_releases_reservation(self):
        service = self.make_service()
        service.prepare("c1", "A", 6.0)
        service.abort("c1", "A")
        assert service.available("A") == pytest.approx(10.0)
        service.abort("c1", "A")  # idempotent

    def test_concurrent_reservations_cannot_oversubscribe(self):
        service = self.make_service()
        assert service.prepare("c1", "A", 6.0)
        assert not service.prepare("c2", "A", 6.0)

    def test_release_returns_committed_capacity(self):
        service = self.make_service()
        service.prepare("c1", "A", 6.0)
        service.commit("c1", "A")
        service.release("c1", "A", 6.0)
        assert service.available("A") == pytest.approx(10.0)

    def test_scale_out_adds_instance(self):
        service = self.make_service()
        before = len(service.instances_at("A"))
        service.scale_out("A")
        assert len(service.instances_at("A")) == before + 1

    def test_scale_out_at_undeployed_site_raises(self):
        with pytest.raises(AllocationError):
            self.make_service().scale_out("Z")

    def test_instance_factory_wires_transforms(self):
        service = VnfService(
            "nat", 1.0, {"A": 10.0},
            instance_factory=lambda name, site: NatFunction("9.9.9.9"),
        )
        instance = service.instances_at("A")[0]
        packet = Packet(FLOW)
        instance.process(packet)
        assert packet.flow.src_ip == "9.9.9.9"


class TestNat:
    def test_forward_translation_allocates_stable_port(self):
        nat = NatFunction("9.9.9.9", port_base=50000)
        p1 = Packet(FLOW)
        nat(p1)
        assert p1.flow.src_ip == "9.9.9.9"
        assert p1.flow.src_port == 50000
        p2 = Packet(FLOW)
        nat(p2)
        assert p2.flow.src_port == 50000  # same binding

    def test_distinct_flows_get_distinct_ports(self):
        nat = NatFunction("9.9.9.9")
        p1 = Packet(FLOW)
        p2 = Packet(FiveTuple("10.0.0.6", "20.0.0.9", "tcp", 1234, 80))
        nat(p1)
        nat(p2)
        assert p1.flow.src_port != p2.flow.src_port

    def test_reverse_restores_private_endpoint(self):
        nat = NatFunction("9.9.9.9")
        fwd = Packet(FLOW)
        nat(fwd)
        rev = Packet(fwd.flow.reversed(), direction="reverse")
        nat(rev)
        assert rev.flow.dst_ip == "10.0.0.5"
        assert rev.flow.dst_port == 1234

    def test_reverse_without_mapping_drops(self):
        nat = NatFunction("9.9.9.9")
        rev = Packet(
            FiveTuple("20.0.0.9", "9.9.9.9", "tcp", 80, 12345),
            direction="reverse",
        )
        with pytest.raises(DropPacket):
            nat(rev)
        assert nat.drops == 1

    def test_reverse_to_foreign_address_drops(self):
        nat = NatFunction("9.9.9.9")
        rev = Packet(
            FiveTuple("20.0.0.9", "8.8.8.8", "tcp", 80, 40000),
            direction="reverse",
        )
        with pytest.raises(DropPacket):
            nat(rev)

    def test_separate_instances_have_separate_state(self):
        # Why symmetric return matters: the second NAT knows nothing
        # about the first NAT's binding.
        nat_a = NatFunction("9.9.9.9")
        nat_b = NatFunction("9.9.9.9")
        fwd = Packet(FLOW)
        nat_a(fwd)
        rev = Packet(fwd.flow.reversed(), direction="reverse")
        with pytest.raises(DropPacket):
            nat_b(rev)


class TestFirewall:
    def test_allowed_flow_becomes_established(self):
        fw = StatefulFirewall([FirewallRule(src_prefix="10.0.0.0/24")])
        fw(Packet(FLOW))
        assert fw.is_established(FLOW)

    def test_disallowed_flow_dropped(self):
        fw = StatefulFirewall([FirewallRule(src_prefix="192.168.0.0/16")])
        with pytest.raises(DropPacket):
            fw(Packet(FLOW))
        assert fw.dropped == 1

    def test_reverse_allowed_only_when_established(self):
        fw = StatefulFirewall([FirewallRule(src_prefix="10.0.0.0/24")])
        rev = Packet(FLOW.reversed(), direction="reverse")
        with pytest.raises(DropPacket):
            fw(rev)
        fw(Packet(FLOW))
        fw(Packet(FLOW.reversed(), direction="reverse"))  # now admitted
        assert fw.admitted == 2

    def test_default_allow_admits_everything_forward(self):
        fw = StatefulFirewall(default_allow=True)
        fw(Packet(FLOW))
        assert fw.admitted == 1

    def test_established_flows_skip_rule_evaluation(self):
        fw = StatefulFirewall([FirewallRule(src_prefix="10.0.0.0/24")])
        fw(Packet(FLOW))
        fw.rules.clear()  # policy change
        fw(Packet(FLOW))  # established flow still admitted
        assert fw.admitted == 2

    def test_port_rule(self):
        fw = StatefulFirewall([FirewallRule(dst_port_range=(80, 80))])
        fw(Packet(FLOW))
        with pytest.raises(DropPacket):
            fw(Packet(FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1234, 22)))


class TestLruCache:
    def test_miss_then_hit(self):
        cache = LruCache(10)
        assert not cache.get("a")
        assert cache.get("a")
        assert cache.hit_rate == 0.5

    def test_eviction_order_is_lru(self):
        cache = LruCache(2)
        cache.get("a")
        cache.get("b")
        cache.get("a")  # refresh a
        cache.get("c")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_zero_capacity_never_stores(self):
        cache = LruCache(0)
        assert not cache.get("a")
        assert not cache.get("a")
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            LruCache(-1)


class TestZipf:
    def test_rank_one_is_most_popular(self):
        workload = ZipfWorkload(1000, 1.0, random.Random(0))
        samples = [workload.sample() for _ in range(20000)]
        counts = {r: samples.count(r) for r in (1, 2, 10)}
        assert counts[1] > counts[2] > counts[10]

    def test_zipf_ratio_approximates_exponent(self):
        workload = ZipfWorkload(1000, 1.0, random.Random(1))
        samples = [workload.sample() for _ in range(50000)]
        ratio = samples.count(1) / samples.count(2)
        assert 1.6 <= ratio <= 2.4  # ideal is 2.0 for exponent 1

    def test_samples_within_catalog(self):
        workload = ZipfWorkload(50, 1.0, random.Random(2))
        assert all(1 <= workload.sample() <= 50 for _ in range(1000))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CacheError):
            ZipfWorkload(0, 1.0, random.Random(0))
        with pytest.raises(CacheError):
            ZipfWorkload(10, 0.0, random.Random(0))


class TestCacheExperiment:
    def test_shared_beats_siloed_on_hit_rate(self):
        shared = run_cache_experiment(shared=True)
        siloed = run_cache_experiment(shared=False)
        assert shared.hit_rate > siloed.hit_rate

    def test_shared_beats_siloed_on_download_time(self):
        shared = run_cache_experiment(shared=True)
        siloed = run_cache_experiment(shared=False)
        assert shared.mean_download_ms < siloed.mean_download_ms

    def test_table3_shape(self):
        # Paper: 57.45% vs 44.25% hit rate (a ~30% relative gain) and
        # 19% better download time.
        shared = run_cache_experiment(shared=True)
        siloed = run_cache_experiment(shared=False)
        relative_gain = (shared.hit_rate - siloed.hit_rate) / siloed.hit_rate
        assert relative_gain > 0.15
        dl_gain = 1 - shared.mean_download_ms / siloed.mean_download_ms
        assert dl_gain > 0.10

    def test_deterministic_given_seed(self):
        a = run_cache_experiment(shared=True, seed=5)
        b = run_cache_experiment(shared=True, seed=5)
        assert a.hit_rate == b.hit_rate

    def test_request_count(self):
        result = run_cache_experiment(
            num_chains=3, requests_per_chain=100, shared=True
        )
        assert result.requests == 300
