"""End-to-end fuzzer: determinism, replay, and the planted self-test.

The planted self-test is the proof the whole pipeline is non-vacuous:
a violation is planted (a redemand surge past the planted probe's
threshold), the probes must flag it, and the minimizer must isolate it
to a tiny fraction of the schedule -- deterministically.
"""

import json
import pathlib

import pytest

from repro.obs import MetricsRegistry, collect_fuzz, registry_to_dict
from repro.scenarios import (
    FuzzConfig,
    build_case,
    build_planted_case,
    replay_case,
    run_case_mono,
    run_fuzz,
)

BASELINES = pathlib.Path(__file__).parent.parent / "benchmarks" / "baselines"

SMALL = dict(cases=2, duration_s=12.0)


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        a = run_fuzz(FuzzConfig(seed=1, **SMALL))
        b = run_fuzz(FuzzConfig(seed=1, **SMALL))
        assert a.to_json() == b.to_json()
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        a = run_fuzz(FuzzConfig(seed=1, cases=1, duration_s=12.0))
        b = run_fuzz(FuzzConfig(seed=2, cases=1, duration_s=12.0))
        assert a.digest() != b.digest()

    def test_case_generation_deterministic(self):
        config = FuzzConfig(seed=3, **SMALL)
        a = build_case(config, 0)
        b = build_case(config, 0)
        assert a.composed.digest() == b.composed.digest()
        assert a.to_doc() == b.to_doc()

    def test_committed_known_good_reproduces(self):
        committed = json.loads(
            (BASELINES / "fuzz_known_good.json").read_text()
        )
        report = run_fuzz(FuzzConfig(
            seed=committed["seed"],
            cases=committed["cases"],
            duration_s=committed["duration_s"],
            stacks=tuple(committed["stacks"]),
        ))
        assert report.known_good_doc() == committed, (
            "generated schedules or case outcomes changed; regenerate "
            "benchmarks/baselines/fuzz_known_good.json via "
            "python -m repro fuzz --write-known-good"
        )


class TestSmallSeedsGreen:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_seed_green(self, seed):
        report = run_fuzz(FuzzConfig(seed=seed, **SMALL))
        assert report.passed, report.render()
        assert report.cases_run == 2


class TestPlantedSelfTest:
    def test_planted_violation_found_and_minimized(self):
        report = run_fuzz(FuzzConfig(seed=1, cases=1, duration_s=12.0,
                                     plant=True))
        assert report.planted
        assert report.passed, report.render()  # planted semantics: must FAIL
        case = report.cases[0]
        assert not case.passed
        minimized = case.minimized
        assert minimized is not None
        # Acceptance: the minimal repro is <= 25% of the schedule.
        assert minimized["items"] <= 0.25 * minimized["original_items"], (
            f"minimizer too weak: {minimized['items']} of "
            f"{minimized['original_items']} items"
        )
        # It actually isolates the single planted op.
        assert minimized["items"] == 1
        assert minimized["workload_ops"] == 1
        assert minimized["fault_events"] == 0
        assert minimized["one_minimal"]

    def test_planted_minimization_deterministic(self):
        config = FuzzConfig(seed=2, cases=1, duration_s=12.0, plant=True)
        a = run_fuzz(config)
        b = run_fuzz(config)
        assert a.cases[0].minimized["digest"] == b.cases[0].minimized["digest"]
        assert a.to_json() == b.to_json()

    def test_minimized_repro_replays_and_still_violates(self):
        report = run_fuzz(FuzzConfig(seed=1, cases=1, duration_s=12.0,
                                     plant=True))
        minimized = report.cases[0].minimized
        replayed = replay_case(minimized["schedule"])
        assert not replayed.passed
        assert replayed.schedule_digest == minimized["digest"]

    def test_planted_case_violates_on_mono(self):
        config = FuzzConfig(seed=1, cases=1, duration_s=12.0, plant=True)
        case = build_planted_case(config, 0)
        result = run_case_mono(case)
        assert not result.passed
        assert any("planted" in v["invariant"] for v in result.violations)


class TestReplay:
    def test_full_case_replays_identically(self):
        report = run_fuzz(FuzzConfig(seed=1, cases=1, duration_s=12.0))
        case = report.cases[0]
        replayed = replay_case(case.schedule_doc)
        assert replayed.schedule_digest == case.schedule_digest
        assert replayed.passed == case.passed
        assert [s.to_doc() for s in replayed.stacks] == [
            s.to_doc() for s in case.stacks
        ]


class TestBudget:
    def test_zero_budget_still_runs_first_case(self):
        report = run_fuzz(FuzzConfig(seed=1, cases=5, duration_s=12.0,
                                     budget_s=0.0))
        assert report.cases_run == 1
        assert report.budget_exhausted


class TestObsCollector:
    def test_collect_fuzz_gauges(self):
        report = run_fuzz(FuzzConfig(seed=1, cases=1, duration_s=12.0,
                                     plant=True))
        registry = MetricsRegistry()
        collect_fuzz(registry, report)
        gauges = registry_to_dict(registry)["gauges"]
        assert gauges["fuzz.seed"] == 1
        assert gauges["fuzz.cases_run"] == 1
        assert gauges["fuzz.passed"] == 1  # planted run that fired
        assert gauges["fuzz.cases_minimized_total"] == 1
        assert gauges["fuzz.violations_total"] > 0
        assert gauges["fuzz.case_violations{case=0,stack=mono}"] > 0
