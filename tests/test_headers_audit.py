"""Tests for the header-overhead comparison and the data-plane auditor."""

import random

import pytest

from repro.dataplane.headers import (
    HeaderModelError,
    compare_overheads,
    nsh_overhead_bytes,
    srv6_overhead_bytes,
    switchboard_overhead_bytes,
)


class TestHeaderOverheads:
    def test_switchboard_constant_in_chain_length(self):
        # The Section 8 claim: label switching "remains low even for
        # longer chains".
        values = {switchboard_overhead_bytes(n) for n in range(1, 12)}
        assert len(values) == 1

    def test_srv6_linear_in_chain_length(self):
        deltas = [
            srv6_overhead_bytes(n + 1) - srv6_overhead_bytes(n)
            for n in range(1, 10)
        ]
        assert all(d == 16 for d in deltas)  # one segment per VNF

    def test_switchboard_beats_srv6_for_long_chains(self):
        for n in range(1, 12):
            assert switchboard_overhead_bytes(n) < srv6_overhead_bytes(n)

    def test_nsh_md1_constant_md2_grows(self):
        assert nsh_overhead_bytes(3, md_type=1) == nsh_overhead_bytes(9, 1)
        assert nsh_overhead_bytes(9, md_type=2) > nsh_overhead_bytes(3, 2)

    def test_known_wire_sizes(self):
        # VXLAN (20+8+8) + 2 MPLS labels (8) = 44 bytes.
        assert switchboard_overhead_bytes(5) == 44
        # IPv6 (40) + SRH (8) + 5 segments (80) = 128 bytes.
        assert srv6_overhead_bytes(5) == 128

    def test_efficiency_ordering_small_packets(self):
        comparison = compare_overheads(5)
        eff = comparison.efficiency(payload_bytes=64)
        assert eff["switchboard"] > eff["nsh"] > eff["srv6"]

    def test_invalid_inputs(self):
        with pytest.raises(HeaderModelError):
            switchboard_overhead_bytes(-1)
        with pytest.raises(HeaderModelError):
            nsh_overhead_bytes(3, md_type=7)
        with pytest.raises(HeaderModelError):
            compare_overheads(3).efficiency(0)


# ---------------------------------------------------------------------------
# Auditor
# ---------------------------------------------------------------------------

from repro.controller import (  # noqa: E402
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.audit import audit_chain, audit_deployment  # noqa: E402
from repro.core.model import CloudSite, NetworkModel, VNF  # noqa: E402
from repro.dataplane import DataPlane  # noqa: E402
from repro.edge import EdgeController, EdgeInstance  # noqa: E402
from repro.vnf import VnfService  # noqa: E402


def build_deployment(fw_caps):
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [CloudSite(s, s.lower(), 1000.0) for s in ("A", "B", "C")]
    vnfs = [VNF("fw", 1.0, dict(fw_caps))]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(6))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B", "C"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, dict(fw_caps)))
    edge = EdgeController("vpn")
    edge.register_instance(EdgeInstance("edge.A", "A", dp))
    edge.register_instance(EdgeInstance("edge.C", "C", dp))
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    return gs


def spec(name="corp", demand=10.0):
    return ChainSpecification(
        name, "vpn", "in", "out", ["fw"],
        forward_demand=demand,
        src_prefix="10.0.0.0/24",
        dst_prefixes=["20.0.0.0/24"],
    )


class TestAuditor:
    def test_clean_deployment_has_no_findings(self):
        gs = build_deployment({"A": 12.0, "B": 12.0})
        gs.create_chain(spec())
        assert audit_deployment(gs) == []

    def test_split_route_audits_clean(self):
        gs = build_deployment({"A": 12.0, "B": 12.0})
        gs.create_chain(spec(demand=10.0))  # forces an A/B split
        assert audit_chain(gs, "corp") == []

    def test_uninstalled_chain_reported(self):
        gs = build_deployment({"B": 50.0})
        assert audit_chain(gs, "ghost") == ["chain 'ghost' is not installed"]

    def test_missing_ingress_rule_detected(self):
        gs = build_deployment({"B": 50.0})
        installation = gs.create_chain(spec())
        edge_fwd = gs.local_switchboard("A").edge_forwarder()
        edge_fwd.remove_rule(installation.label, installation.egress_site)
        findings = audit_chain(gs, "corp")
        assert any("no ingress rule" in f for f in findings)

    def test_wrong_split_detected(self):
        gs = build_deployment({"A": 12.0, "B": 12.0})
        installation = gs.create_chain(spec(demand=10.0))
        edge_fwd = gs.local_switchboard("A").edge_forwarder()
        rule = edge_fwd.rules[(installation.label, "C")]
        # An operator fat-fingers the weights to 50/50.
        for target in rule.next_forwarders.targets:
            rule.next_forwarders.set_weight(target, 1.0)
        findings = audit_chain(gs, "corp")
        assert any("TE intends" in f for f in findings)

    def test_detached_instance_detected(self):
        gs = build_deployment({"B": 50.0})
        service = gs.vnf_services["fw"]
        extra = service.scale_out("B")
        gs.local_switchboard("B").assign_instance(extra)
        gs.create_chain(spec())
        local = gs.local_switchboard("B")
        serving = local.forwarders_for_service("fw")[0]
        # Detach one of the two instances the rule references.
        instance_name = next(iter(serving.attached))
        serving.detach(instance_name)
        findings = audit_chain(gs, "corp")
        assert any("detached instances" in f for f in findings)

    def test_missing_vnf_rule_detected(self):
        gs = build_deployment({"B": 50.0})
        installation = gs.create_chain(spec())
        local = gs.local_switchboard("B")
        for fwd in local.forwarders:
            fwd.remove_rule(installation.label, installation.egress_site)
        findings = audit_chain(gs, "corp")
        assert any("no rule for VNF" in f for f in findings)

    def test_stale_rules_detected_after_sloppy_teardown(self):
        gs = build_deployment({"B": 50.0})
        gs.create_chain(spec())
        # Simulate a teardown that forgets the data plane.
        gs.router.rollback("corp")
        gs.labels.release("corp")
        gs.model.remove_chain("corp")
        del gs.installations["corp"]
        findings = audit_deployment(gs)
        assert any("stale rule" in f for f in findings)

    def test_clean_after_proper_teardown(self):
        gs = build_deployment({"B": 50.0})
        gs.create_chain(spec())
        gs.remove_chain("corp")
        assert audit_deployment(gs) == []
