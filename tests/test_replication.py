"""Tests for the MUSIC-style replicated store and controller checkpoints."""

import pytest

from repro.controller.chainspec import ChainSpecification
from repro.controller.global_switchboard import ChainInstallation
from repro.controller.replication import (
    ReplicatedStore,
    ReplicationError,
    checkpoint_installation,
    remove_checkpoint,
    restore_installations,
)

REPLICAS = ["nyc", "chi", "sfo"]


class TestQuorumBasics:
    def test_write_then_read(self):
        store = ReplicatedStore(REPLICAS)
        store.put("/k", {"v": 1})
        assert store.get("/k") == {"v": 1}

    def test_read_missing_returns_none(self):
        assert ReplicatedStore(REPLICAS).get("/nope") is None

    def test_versions_monotonic_last_write_wins(self):
        store = ReplicatedStore(REPLICAS)
        v1 = store.put("/k", "old")
        v2 = store.put("/k", "new")
        assert v2 > v1
        assert store.get("/k") == "new"

    def test_default_quorum_is_majority(self):
        assert ReplicatedStore(REPLICAS).quorum == 2
        assert ReplicatedStore(["a"]).quorum == 1
        assert ReplicatedStore(["a", "b", "c", "d", "e"]).quorum == 3

    def test_invalid_construction(self):
        with pytest.raises(ReplicationError):
            ReplicatedStore([])
        with pytest.raises(ReplicationError):
            ReplicatedStore(["a", "a"])
        with pytest.raises(ReplicationError):
            ReplicatedStore(["a", "b"], quorum=3)


class TestFaultTolerance:
    def test_survives_minority_failure(self):
        store = ReplicatedStore(REPLICAS)
        store.put("/k", 42)
        store.fail("nyc")
        assert store.get("/k") == 42
        store.put("/k", 43)
        assert store.get("/k") == 43

    def test_majority_failure_blocks_writes_and_reads(self):
        store = ReplicatedStore(REPLICAS)
        store.put("/k", 1)
        store.fail("nyc")
        store.fail("chi")
        with pytest.raises(ReplicationError):
            store.put("/k", 2)
        with pytest.raises(ReplicationError):
            store.get("/k")

    def test_recovered_replica_heals_via_read_repair(self):
        store = ReplicatedStore(REPLICAS)
        store.put("/k", "v1")
        store.fail("nyc")
        store.put("/k", "v2")  # nyc misses this write
        store.recover("nyc")
        assert store.get("/k") == "v2"
        assert store.read_repairs >= 1
        # nyc now holds the latest version: kill the others and read.
        store.fail("chi")
        # (direct check on the replica data instead)
        assert store.replicas["nyc"].data["/k"].value == "v2"

    def test_stale_read_never_returned(self):
        """A read after a successful write must see that write, for any
        single-replica failure pattern (quorum intersection)."""
        for failed in REPLICAS:
            store = ReplicatedStore(REPLICAS)
            store.put("/k", "fresh")
            store.fail(failed)
            assert store.get("/k") == "fresh"

    def test_delete_is_tombstone(self):
        store = ReplicatedStore(REPLICAS)
        store.put("/k", 1)
        store.delete("/k")
        assert store.get("/k") is None
        assert store.keys() == []


class TestLeaderLease:
    def test_first_acquirer_wins(self):
        store = ReplicatedStore(REPLICAS)
        assert store.acquire_lease("gs-1", now=0.0, duration=10.0)
        assert not store.acquire_lease("gs-2", now=1.0, duration=10.0)
        assert store.leader(now=5.0) == "gs-1"

    def test_renewal_by_owner(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        assert store.acquire_lease("gs-1", now=8.0, duration=10.0)
        assert store.leader(now=15.0) == "gs-1"

    def test_takeover_after_expiry(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        assert store.leader(now=11.0) is None
        assert store.acquire_lease("gs-2", now=11.0, duration=10.0)
        assert store.leader(now=12.0) == "gs-2"

    def test_release(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        store.release_lease("gs-1")
        assert store.acquire_lease("gs-2", now=1.0, duration=10.0)

    def test_release_by_non_owner_ignored(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        store.release_lease("gs-2")
        assert store.leader(now=1.0) == "gs-1"

    def test_lease_survives_replica_failure(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        store.fail("sfo")
        assert store.leader(now=5.0) == "gs-1"


class TestLeaseEdgeCases:
    """Boundary semantics: a lease is held on the half-open window
    ``[granted, expires)`` -- at the expiry instant itself the lease is
    already gone, so takeover at exactly ``expires_at`` is legal and
    cannot overlap the old window."""

    def test_expiry_exactly_at_now(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        assert store.leader(now=10.0) is None  # expired at the boundary
        assert store.acquire_lease("gs-2", now=10.0, duration=10.0)
        assert store.leader(now=10.0 + 1e-9) == "gs-2"

    def test_leader_just_before_expiry(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        assert store.leader(now=10.0 - 1e-9) == "gs-1"
        assert not store.acquire_lease("gs-2", now=10.0 - 1e-9,
                                       duration=10.0)

    def test_failover_after_quorum_loss_and_recovery(self):
        """Quorum loss makes lease operations fail loudly (never a
        silent split-brain); after recovery the standby takes over once
        the old lease has expired."""
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        store.fail("nyc")
        store.fail("chi")
        with pytest.raises(ReplicationError):
            store.acquire_lease("gs-1", now=5.0, duration=10.0)
        with pytest.raises(ReplicationError):
            store.leader(now=5.0)
        store.recover("chi")
        # Quorum is back but the original lease still holds.
        assert not store.acquire_lease("gs-2", now=6.0, duration=10.0)
        assert store.leader(now=6.0) == "gs-1"
        # After expiry (the leader could not renew) the standby wins.
        assert store.acquire_lease("gs-2", now=10.0, duration=10.0)
        assert store.leader(now=11.0) == "gs-2"

    def test_release_by_non_owner_does_not_unlock(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=10.0)
        store.release_lease("gs-2")  # not the owner: ignored
        assert not store.acquire_lease("gs-2", now=1.0, duration=10.0)
        assert store.leader(now=1.0) == "gs-1"

    def test_release_of_expired_lease_is_harmless(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=5.0)
        store.release_lease("gs-1")  # owner releases after use
        store.release_lease("gs-1")  # double release: no effect
        assert store.leader(now=1.0) is None
        assert store.acquire_lease("gs-2", now=1.0, duration=5.0)

    def test_reacquire_own_expired_lease(self):
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-1", now=0.0, duration=5.0)
        assert store.acquire_lease("gs-1", now=7.0, duration=5.0)
        assert store.leader(now=8.0) == "gs-1"


def make_installation(name="corp", label=7) -> ChainInstallation:
    spec = ChainSpecification(
        name, "vpn", "in", "out", ["fw", "nat"],
        forward_demand=5.0, reverse_demand=2.0,
        src_prefix="10.0.0.0/24", dst_prefixes=("20.0.0.0/24",),
        protocol="tcp", dst_port_range=(80, 443),
    )
    return ChainInstallation(
        spec, label, "A", "C", 1.0,
        {("fw", "B"): 14.0, ("nat", "B"): 7.0},
        ["D"],
    )


class TestCheckpointing:
    def test_round_trip(self):
        store = ReplicatedStore(REPLICAS)
        original = make_installation()
        checkpoint_installation(store, original)
        restored = restore_installations(store)
        assert set(restored) == {"corp"}
        clone = restored["corp"]
        assert clone.label == original.label
        assert clone.ingress_site == "A"
        assert clone.egress_site == "C"
        assert clone.routed_fraction == 1.0
        assert clone.committed_load == original.committed_load
        assert clone.extra_edge_sites == ["D"]
        assert clone.spec.vnf_services == ("fw", "nat")
        assert clone.spec.dst_port_range == (80, 443)

    def test_restore_after_controller_failover(self):
        """The scenario the recipe exists for: the leader writes state,
        dies, and a standby on the surviving replicas rebuilds it."""
        store = ReplicatedStore(REPLICAS)
        store.acquire_lease("gs-primary", now=0.0, duration=5.0)
        checkpoint_installation(store, make_installation("corp"))
        checkpoint_installation(store, make_installation("branch", label=8))
        store.fail("nyc")  # one replica dies with the primary
        assert store.leader(now=10.0) is None  # lease expired
        assert store.acquire_lease("gs-standby", now=10.0, duration=5.0)
        restored = restore_installations(store)
        assert set(restored) == {"branch", "corp"}

    def test_remove_checkpoint(self):
        store = ReplicatedStore(REPLICAS)
        checkpoint_installation(store, make_installation())
        remove_checkpoint(store, "corp")
        assert restore_installations(store) == {}

    def test_update_overwrites(self):
        store = ReplicatedStore(REPLICAS)
        installation = make_installation()
        checkpoint_installation(store, installation)
        installation.routed_fraction = 0.5
        checkpoint_installation(store, installation)
        restored = restore_installations(store)
        assert restored["corp"].routed_fraction == 0.5
