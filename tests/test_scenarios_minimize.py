"""Delta debugging: ddmin must shrink deterministically and never lie."""

import pytest

from repro.scenarios import MinimizeResult, ddmin


class TestDdmin:
    def test_single_culprit_shrinks_to_one(self):
        items = list(range(40))
        result = ddmin(items, lambda subset: 17 in subset)
        assert result.items == [17]
        assert result.one_minimal

    def test_pair_culprit_shrinks_to_two(self):
        items = list(range(32))
        result = ddmin(items, lambda s: 3 in s and 29 in s)
        assert result.items == [3, 29]
        assert result.one_minimal

    def test_order_preserved(self):
        items = ["a", "b", "c", "d", "e", "f"]
        result = ddmin(items, lambda s: "b" in s and "e" in s)
        assert result.items == ["b", "e"]

    def test_non_violating_input_raises(self):
        with pytest.raises(ValueError):
            ddmin([1, 2, 3], lambda s: False)

    def test_deterministic(self):
        items = list(range(50))

        def violates(subset):
            return sum(subset) >= 100 and 7 in subset

        a = ddmin(items, violates)
        b = ddmin(items, violates)
        assert a.items == b.items
        assert a.tests_run == b.tests_run

    def test_budget_respected(self):
        items = list(range(64))
        result = ddmin(items, lambda s: 63 in s, max_tests=5)
        assert result.tests_run <= 5
        assert 63 in result.items  # still violating, just not minimal

    def test_everything_needed_stays(self):
        items = [1, 2, 3]
        result = ddmin(items, lambda s: s == [1, 2, 3])
        assert result.items == [1, 2, 3]

    def test_reduction_metric(self):
        result = MinimizeResult(items=[1], original_length=20,
                                tests_run=9, one_minimal=True)
        assert result.length == 1
        assert result.reduction == pytest.approx(0.95)

    def test_empty_violation_allowed_to_shrink_to_single(self):
        # A predicate violated by any non-empty prefix chunk.
        result = ddmin(list(range(16)), lambda s: len(s) >= 1)
        assert len(result.items) == 1
