"""Unit tests for RoutingSolution metrics and validation."""

import pytest

from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF
from repro.core.routes import RoutingError, RoutingSolution


@pytest.fixture
def linked_model():
    """Triangle with physical links and shortest-path routing fractions."""
    links = [
        Link("ab", "a", "b", 100.0),
        Link("ba", "b", "a", 100.0),
        Link("bc", "b", "c", 100.0),
        Link("cb", "c", "b", 100.0),
        Link("ac", "a", "c", 100.0, background=10.0),
        Link("ca", "c", "a", 100.0),
    ]
    routing = {
        ("a", "b"): {"ab": 1.0},
        ("b", "a"): {"ba": 1.0},
        ("b", "c"): {"bc": 1.0},
        ("c", "b"): {"cb": 1.0},
        ("a", "c"): {"ac": 1.0},
        ("c", "a"): {"ca": 1.0},
    }
    return NetworkModel(
        ["a", "b", "c"],
        {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0},
        [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)],
        [VNF("fw", 2.0, {"A": 50.0, "B": 50.0})],
        [Chain("c1", "a", "c", ["fw"], 4.0, 1.0)],
        links=links,
        routing=routing,
    )


class TestConstruction:
    def test_add_flow_accumulates(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_flow("c1", 1, "a", "B", 0.3)
        sol.add_flow("c1", 1, "a", "B", 0.2)
        assert sol.fraction("c1", 1, "a", "B") == pytest.approx(0.5)

    def test_tiny_fractions_dropped(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_flow("c1", 1, "a", "B", 1e-12)
        assert sol.fraction("c1", 1, "a", "B") == 0.0

    def test_unknown_chain_rejected(self, linked_model):
        sol = RoutingSolution(linked_model)
        with pytest.raises(RoutingError):
            sol.add_flow("ghost", 1, "a", "B", 1.0)

    def test_out_of_range_stage_rejected(self, linked_model):
        sol = RoutingSolution(linked_model)
        with pytest.raises(RoutingError):
            sol.add_flow("c1", 3, "a", "B", 1.0)

    def test_add_path_creates_stage_flows(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        assert sol.fraction("c1", 1, "a", "B") == 1.0
        assert sol.fraction("c1", 2, "B", "c") == 1.0

    def test_add_path_wrong_length_rejected(self, linked_model):
        sol = RoutingSolution(linked_model)
        with pytest.raises(RoutingError):
            sol.add_path("c1", ["a", "c"], 1.0)

    def test_clear_chain_removes_flows(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        sol.clear_chain("c1")
        assert sol.routed_fraction("c1") == 0.0


class TestMetrics:
    def test_weighted_latency_matches_equation_three(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        # (w+v) = 5 per stage; latency a->B 10, B->c 15.
        assert sol.total_weighted_latency() == pytest.approx(5 * 10 + 5 * 15)

    def test_chain_latency_is_path_latency(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        assert sol.chain_latency("c1") == pytest.approx(25.0)

    def test_chain_latency_with_split_traffic(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 0.5)
        sol.add_path("c1", ["a", "A", "c"], 0.5)
        # 0.5 * (10 + 15) + 0.5 * (0 + 30)
        assert sol.chain_latency("c1") == pytest.approx(27.5)

    def test_unrouted_chain_has_infinite_latency(self, linked_model):
        sol = RoutingSolution(linked_model)
        assert sol.chain_latency("c1") == float("inf")

    def test_throughput_counts_carried_demand(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 0.6)
        assert sol.throughput() == pytest.approx(0.6 * 5.0)

    def test_vnf_loads_count_both_directions(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        loads = sol.vnf_site_loads()
        # l_f=2; receives stage-1 (5) and sends stage-2 (5): 2*(5+5)=20.
        assert loads[("fw", "B")] == pytest.approx(20.0)

    def test_site_loads_aggregate_vnfs(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        assert sol.site_loads()["B"] == pytest.approx(20.0)

    def test_pair_traffic_separates_directions(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        pairs = sol.pair_traffic()
        assert pairs[("a", "b")] == pytest.approx(4.0)  # forward
        assert pairs[("b", "a")] == pytest.approx(1.0)  # reverse
        assert pairs[("b", "c")] == pytest.approx(4.0)
        assert pairs[("c", "b")] == pytest.approx(1.0)

    def test_link_utilization_includes_background(self, linked_model):
        sol = RoutingSolution(linked_model)
        utils = sol.link_utilization()
        assert utils["ac"] == pytest.approx(0.1)  # background only

    def test_max_link_utilization(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        assert sol.max_link_utilization() == pytest.approx(0.1)


class TestValidation:
    def test_valid_solution_passes(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.0)
        sol.validate()

    def test_flow_conservation_violation_detected(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_flow("c1", 1, "a", "B", 1.0)
        sol.add_flow("c1", 2, "A", "c", 1.0)  # exits from A, entered at B
        problems = sol.violations()
        assert any("flow conservation" in p for p in problems)

    def test_overrouted_chain_detected(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.5)
        problems = sol.violations()
        assert any("routes" in p for p in problems)

    def test_invalid_stage_site_detected(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_flow("c1", 1, "a", "a", 1.0)  # 'a' is not a site of fw
        problems = sol.violations()
        assert any("invalid destination" in p for p in problems)

    def test_vnf_capacity_violation_detected(self, linked_model):
        chain = Chain("big", "a", "c", ["fw"], 50.0)
        linked_model.add_chain(chain)
        sol = RoutingSolution(linked_model)
        sol.add_path("big", ["a", "B", "c"], 1.0)
        problems = sol.violations()
        assert any("overloaded" in p for p in problems)

    def test_mlu_violation_detected(self, linked_model):
        chain = Chain("huge", "a", "c", ["fw"], 20.0)
        linked_model.add_chain(chain)
        # fw load = 2*(20+20) = 80 < site 100, but link ab carries 20
        # forward on a 100 bandwidth link -- fine; shrink the budget.
        linked_model.mlu_limit = 0.1
        sol = RoutingSolution(linked_model)
        sol.add_path("huge", ["a", "B", "c"], 1.0)
        problems = sol.violations()
        assert any("MLU" in p for p in problems)

    def test_validate_raises_with_details(self, linked_model):
        sol = RoutingSolution(linked_model)
        sol.add_path("c1", ["a", "B", "c"], 1.5)
        with pytest.raises(RoutingError):
            sol.validate()
