"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.simnet.events import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_fires_callback_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 1.5

    def test_passes_multiple_args(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, 2)
        sim.run()
        assert seen == [(1, 2)]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(2.0, order.append, "mid")
        sim.run()
        assert order == ["early", "mid", "late"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_non_finite_delay_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(SimulationError):
                Simulator().schedule(bad, lambda: None)

    def test_non_finite_absolute_time_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(SimulationError):
                Simulator().schedule_at(bad, lambda: None)

    def test_nan_delay_cannot_poison_event_order(self):
        # Regression: a NaN time used to pass both guards (nan < 0 is
        # False) and break heap ordering for every later event.
        sim = Simulator()
        order = []
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), order.append, "poison")
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.run()
        assert order == ["a", "b"]

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_other_events_still_fire_after_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        handle.cancel()
        sim.run()
        assert fired == ["b"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_limits_firing(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_max_events_advances_clock_toward_until(self):
        # Regression: hitting the event budget used to return without
        # advancing the clock, breaking the docstring's `until` promise.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(8.0, fired.append, "c")
        sim.run(until=10.0, max_events=2)
        assert fired == ["a", "b"]
        # Clock advances as far as possible without passing the unfired
        # event at t=8.
        assert sim.now == 8.0
        sim.run(until=10.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_max_events_with_drained_queue_reaches_until(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0, max_events=10)
        assert sim.now == 5.0

    def test_clock_stays_monotonic_after_budget_stop(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        sim.run(until=10.0, max_events=1)
        assert sim.now == 3.0
        # The remaining event still fires at its own time, never earlier
        # than the current clock.
        sim.run()
        assert sim.now == 3.0


class TestHeapCompaction:
    def test_cancelled_events_are_compacted(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(256)]
        for handle in handles[: 200]:
            handle.cancel()
        # More than half of the queue was cancelled tombstones; the heap
        # must have been compacted to near the 56 live events rather than
        # retaining all 256 entries.
        assert sim.pending < 128
        sim.run()
        assert sim.events_processed == 56

    def test_small_queues_are_not_compacted(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles[:8]:
            handle.cancel()
        assert sim.pending == 10  # tombstones retained below the threshold
        sim.run()
        assert sim.events_processed == 2

    def test_compaction_preserves_order_and_cancellation(self):
        sim = Simulator()
        order = []
        handles = {}
        for i in range(300):
            handles[i] = sim.schedule(float(i + 1), order.append, i)
        cancelled = [i for i in range(300) if i % 3 != 0]
        for i in cancelled:
            handles[i].cancel()
        sim.run()
        assert order == [i for i in range(300) if i % 3 == 0]
        for i in cancelled:
            assert handles[i].cancelled

    def test_schedule_and_cancel_loop_bounds_memory(self):
        # Chaos-soak pattern: schedule a retransmit timer, then cancel it.
        sim = Simulator()
        sim.schedule(1e6, lambda: None)  # keep the sim alive
        for i in range(10_000):
            handle = sim.schedule(float(i + 1), lambda: None)
            handle.cancel()
        assert sim.pending < 1_000
