"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.simnet.events import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_fires_callback_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 1.5

    def test_passes_multiple_args(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, 2)
        sim.run()
        assert seen == [(1, 2)]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(2.0, order.append, "mid")
        sim.run()
        assert order == ["early", "mid", "late"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_other_events_still_fire_after_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        handle.cancel()
        sim.run()
        assert fired == ["b"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_limits_firing(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3
