"""Tests for the solver farm's chain-set partitioner."""

import pytest

from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF
from repro.scale import PartitionError, coupling_groups, partition_chains


def clustered_model(num_clusters=3, demand=5.0):
    """``num_clusters`` fully disjoint islands: own nodes, sites, VNF,
    and chain.  No resource is shared across islands, so every island
    is its own coupling group and partitioning is exact."""
    nodes, latency, sites, vnfs, chains = [], {}, [], [], []
    for i in range(num_clusters):
        a, b, c = f"a{i}", f"b{i}", f"c{i}"
        nodes += [a, b, c]
        latency[(a, b)] = 10.0
        latency[(a, c)] = 30.0
        latency[(b, c)] = 15.0
        sites += [
            CloudSite(f"A{i}", a, 100.0),
            CloudSite(f"B{i}", b, 100.0),
            CloudSite(f"C{i}", c, 100.0),
        ]
        vnfs.append(VNF(f"fw{i}", 1.0, {f"A{i}": 50.0, f"B{i}": 50.0}))
        chains.append(Chain(f"c{i}", a, c, [f"fw{i}"], demand, 0.0))
    return NetworkModel(nodes, latency, sites, vnfs, chains)


def coupled_model(num_chains=4, demands=None, fw_cap=100.0, bandwidth=None):
    """Every chain shares the single fw deployment (and optionally one
    link), so all chains form one coupling group."""
    demands = demands or [5.0] * num_chains
    nodes = ["a", "b"]
    latency = {("a", "b"): 10.0}
    sites = [CloudSite("A", "a", 1000.0), CloudSite("B", "b", 1000.0)]
    vnfs = [VNF("fw", 1.0, {"B": fw_cap})]
    chains = [
        Chain(f"c{i}", "a", "b", ["fw"], demands[i], 0.0)
        for i in range(num_chains)
    ]
    links, routing = [], {}
    if bandwidth is not None:
        links = [Link("ab", "a", "b", bandwidth), Link("ba", "b", "a", bandwidth)]
        routing = {("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0}}
    return NetworkModel(nodes, latency, sites, vnfs, chains, links, routing)


class TestCouplingGroups:
    def test_disjoint_clusters_are_separate_groups(self):
        model = clustered_model(3)
        assert coupling_groups(model) == [["c0"], ["c1"], ["c2"]]

    def test_shared_vnf_site_couples_chains(self):
        model = coupled_model(4)
        assert coupling_groups(model) == [["c0", "c1", "c2", "c3"]]

    def test_deterministic_order(self):
        model = clustered_model(4)
        assert coupling_groups(model) == coupling_groups(model)


class TestPartitionPlan:
    def test_exact_when_groups_fit(self):
        plan = partition_chains(clustered_model(3), max_chains=2)
        assert plan.exact
        assert len(plan.partitions) == 3
        assert all(p.exact for p in plan.partitions)

    def test_none_keeps_groups_whole(self):
        plan = partition_chains(coupled_model(6), max_chains=None)
        assert plan.exact
        assert len(plan.partitions) == 1
        assert plan.partitions[0].chains == ("c0", "c1", "c2", "c3", "c4", "c5")

    def test_oversized_group_split_inexact(self):
        plan = partition_chains(coupled_model(4), max_chains=2)
        assert not plan.exact
        assert len(plan.partitions) == 2
        assert {c for p in plan.partitions for c in p.chains} == {
            "c0", "c1", "c2", "c3"
        }

    def test_shares_sum_to_one_per_resource(self):
        model = coupled_model(4, demands=[1.0, 2.0, 3.0, 4.0], bandwidth=50.0)
        plan = partition_chains(model, max_chains=2)
        totals = {}
        for part in plan.partitions:
            for resource in (("vnf", "fw", "B"), ("site", "B"), ("link", "ab")):
                totals[resource] = totals.get(resource, 0.0) + plan.share(
                    part.index, resource
                )
        for resource, total in totals.items():
            assert total == pytest.approx(1.0), resource

    def test_exact_submodel_keeps_full_capacities(self):
        model = clustered_model(3)
        plan = partition_chains(model, max_chains=1)
        sub = plan.submodel(model, 0)
        assert set(sub.chains) == set(plan.partitions[0].chains)
        assert sub.vnfs["fw0"].site_capacity == {"A0": 50.0, "B0": 50.0}

    def test_split_submodel_scales_capacities_and_links(self):
        model = coupled_model(4, bandwidth=40.0)
        plan = partition_chains(model, max_chains=2)
        for part in plan.partitions:
            sub = plan.submodel(model, part.index)
            share = plan.share(part.index, ("vnf", "fw", "B"))
            assert 0 < share < 1
            assert sub.vnfs["fw"].site_capacity["B"] == pytest.approx(
                100.0 * share
            )
            link_share = plan.share(part.index, ("link", "ab"))
            assert sub.links["ab"].bandwidth == pytest.approx(
                40.0 * link_share
            )
            assert sub.links["ab"].bandwidth > 0

    def test_membership_is_demand_independent(self):
        model = coupled_model(4, demands=[1.0, 2.0, 3.0, 4.0])
        plan = partition_chains(model, max_chains=2)
        scaled = coupled_model(4, demands=[4.0, 3.0, 2.0, 1.0])
        replan = partition_chains(scaled, max_chains=2)
        assert [p.chains for p in plan.partitions] == [
            p.chains for p in replan.partitions
        ]

    def test_compatible_with_demand_change_only(self):
        model = coupled_model(3)
        plan = partition_chains(model, max_chains=2)
        assert plan.compatible_with(model)
        assert plan.compatible_with(coupled_model(3, demands=[9.0, 1.0, 2.0]))
        assert not plan.compatible_with(coupled_model(4))
        different = coupled_model(3)
        different.remove_chain("c0")
        different.add_chain(Chain("c0", "b", "a", ["fw"], 5.0, 0.0))
        assert not plan.compatible_with(different)

    def test_partitions_for(self):
        plan = partition_chains(clustered_model(3), max_chains=1)
        by_chain = {
            chain: p.index for p in plan.partitions for chain in p.chains
        }
        assert plan.partitions_for(["c0"]) == {by_chain["c0"]}
        assert plan.partitions_for(["c0", "c2"]) == {
            by_chain["c0"], by_chain["c2"]
        }
        with pytest.raises(PartitionError):
            plan.partitions_for(["ghost"])

    def test_empty_model_rejected(self):
        model = clustered_model(1)
        model.remove_chain("c0")
        with pytest.raises(PartitionError):
            partition_chains(model)

    def test_nonpositive_max_chains_rejected(self):
        with pytest.raises(PartitionError):
            partition_chains(clustered_model(1), max_chains=0)
