"""Capstone integration: every subsystem in one deployment.

Builds a three-site deployment with DHT-backed forwarders, installs a
two-VNF chain through the *bus-driven* Figure 4 protocol, pushes traffic
with per-chain measurement, audits the data plane against the TE intent,
survives a forwarder crash without breaking affinity, re-optimizes for
measured demand, and finally tears down cleanly.  Each step asserts the
invariants the paper promises.
"""

import random

import pytest

from repro.bus.bus import make_bus
from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
    audit_deployment,
    reoptimize,
)
from repro.controller.protocol import BusDrivenInstaller
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.dataplane.measurement import DemandEstimator
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import NatFunction, StatefulFirewall, VnfService

SITES = ["A", "B", "C"]


@pytest.fixture
def stack():
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 8.0, ("a", "c"): 25.0, ("b", "c"): 12.0}
    sites = [CloudSite(s, s.lower(), 400.0) for s in SITES]
    vnfs = [
        VNF("firewall", 1.0, {"A": 80.0, "B": 80.0}),
        VNF("nat", 0.5, {"B": 80.0}),
    ]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(21))
    gs = GlobalSwitchboard(model, dp)
    for site in SITES:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(
        VnfService(
            "firewall", 1.0, {"A": 80.0, "B": 80.0},
            instance_factory=lambda n, s: StatefulFirewall(default_allow=True),
        )
    )
    gs.register_vnf_service(
        VnfService(
            "nat", 0.5, {"B": 80.0},
            supports_labels=False,
            instance_factory=lambda n, s: NatFunction("198.51.100.1"),
        )
    )
    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(ingress)
    edge.register_instance(egress)
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    return gs, dp, ingress, egress


def test_full_lifecycle(stack):
    gs, dp, ingress, egress = stack

    # -- 1. install over the bus-driven Figure 4 protocol ---------------
    bus = make_bus(SITES, wan_delay_s=0.02, uplink_bps=100e6)
    installer = BusDrivenInstaller(
        gs, bus,
        gs_site="A",
        edge_controller_site="A",
        vnf_controller_sites={"firewall": "A", "nat": "B"},
    )
    spec = ChainSpecification(
        "corp", "vpn", "in", "out", ["firewall", "nat"],
        forward_demand=20.0, reverse_demand=5.0,
        src_prefix="10.0.0.0/24", dst_prefixes=["20.0.0.0/24"],
    )
    timeline = installer.install(spec)
    installer.network.run()
    assert timeline.failed is None
    assert 0.1 < timeline.total_s < 1.0
    installation = gs.installations["corp"]
    assert installation.routed_fraction == pytest.approx(1.0)
    gs.router.solution.validate()

    # -- 2. the data plane agrees with the TE intent ----------------------
    assert audit_deployment(gs) == []

    # -- 3. traffic flows; conformity + NAT + symmetric return ------------
    flows = [
        FiveTuple(f"10.0.0.{i + 1}", "20.0.0.9", "tcp", 30_000 + i, 443)
        for i in range(20)
    ]
    traces = {}
    for flow in flows:
        packet = Packet(flow, size_bytes=800)
        ingress.ingress(packet)
        fw_pos = next(
            i for i, e in enumerate(packet.trace) if e.startswith("firewall.")
        )
        nat_pos = next(
            i for i, e in enumerate(packet.trace) if e.startswith("nat.")
        )
        assert fw_pos < nat_pos
        traces[flow] = packet
    assert len(egress.delivered) == 20
    sample = traces[flows[0]]
    assert sample.flow.src_ip == "198.51.100.1"  # NAT rewrote the source
    reply = Packet(sample.flow.reversed())
    egress.send_reverse(reply)
    assert reply.trace[-1] == "edge.A"
    assert reply.flow.dst_ip == flows[0].src_ip  # NAT restored it

    # -- 4. measurement sees the offered volume ---------------------------
    estimator = DemandEstimator()
    estimates = estimator.observe(
        dp.forwarders.values(), [installation.label], epoch_seconds=1.0
    )
    fwd_rate = estimates[installation.label].forward_rate
    assert fwd_rate == pytest.approx(20 * 800, rel=0.01)

    # -- 5. measured demand feeds re-optimization ------------------------
    factors = estimator.demand_factors(
        {"corp": (installation.label, 2 * 20 * 800)}  # installed 2x actual
    )
    report = reoptimize(gs, factors)
    assert report.rerouted == ["corp"]
    # Measured bytes: 20 x 800 forward + one 500 B reverse reply, against
    # an installed estimate of 32 000 B/s -> factor (16 000 + 500)/32 000.
    expected = 20.0 * (20 * 800 + 500) / (2 * 20 * 800)
    assert gs.model.chains["corp"].forward_traffic[0] == pytest.approx(
        expected, rel=0.01
    )
    assert audit_deployment(gs) == []

    # -- 6. existing connections keep affinity across the re-route --------
    again = Packet(flows[3], size_bytes=800)
    ingress.ingress(again)
    assert again.trace == traces[flows[3]].trace
    delivered_so_far = len(egress.delivered)

    # -- 7. clean teardown -------------------------------------------------
    gs.remove_chain("corp")
    assert audit_deployment(gs) == []
    lost = Packet(
        FiveTuple("10.0.0.99", "20.0.0.9", "tcp", 50_000, 443)
    )
    ingress.ingress(lost)
    assert ingress.unclassified  # no classifier admits it anymore
    assert len(egress.delivered) == delivered_so_far
