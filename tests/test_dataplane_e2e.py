"""Tests for the end-to-end testbed model (Figures 10-11 substrate)."""

import pytest

from repro.dataplane.e2e import (
    E2EError,
    E2ERoute,
    E2ETestbed,
    VnfInstanceSpec,
)


def make_testbed(rtt=80.0):
    bed = E2ETestbed(rtt_ms={("A", "B"): rtt})
    bed.add_instance(VnfInstanceSpec("fwA", "A", capacity_mbps=100.0))
    bed.add_instance(VnfInstanceSpec("fwB", "B", capacity_mbps=100.0))
    return bed


class TestConstruction:
    def test_negative_rtt_rejected(self):
        with pytest.raises(E2EError):
            E2ETestbed(rtt_ms={("A", "B"): -1.0})

    def test_route_with_unknown_instance_rejected(self):
        bed = make_testbed()
        with pytest.raises(E2EError):
            bed.add_route(E2ERoute("r", ["A", "B"], ["ghost"], 10.0))

    def test_route_with_missing_rtt_rejected(self):
        bed = make_testbed()
        with pytest.raises(E2EError):
            bed.add_route(E2ERoute("r", ["A", "Z"], [], 10.0))

    def test_zero_capacity_instance_rejected(self):
        with pytest.raises(E2EError):
            VnfInstanceSpec("x", "A", capacity_mbps=0.0)


class TestThroughputAllocation:
    def test_single_route_demand_limited(self):
        bed = make_testbed()
        bed.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 50.0))
        result = bed.evaluate()
        assert result.routes["r1"].throughput_mbps == pytest.approx(50.0)
        assert result.routes["r1"].bottleneck == "demand"

    def test_single_route_capacity_limited(self):
        bed = make_testbed()
        bed.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 500.0))
        result = bed.evaluate()
        assert result.routes["r1"].throughput_mbps == pytest.approx(100.0)
        assert result.routes["r1"].bottleneck == "fwA"

    def test_shared_instance_split_fairly(self):
        bed = make_testbed()
        bed.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 500.0))
        bed.add_route(E2ERoute("r2", ["B", "A", "B"], ["fwA"], 500.0))
        result = bed.evaluate()
        assert result.routes["r1"].throughput_mbps == pytest.approx(50.0)
        assert result.routes["r2"].throughput_mbps == pytest.approx(50.0)

    def test_max_min_fairness_with_unequal_demands(self):
        bed = make_testbed()
        bed.add_route(E2ERoute("small", ["A", "A", "B"], ["fwA"], 20.0))
        bed.add_route(E2ERoute("big", ["B", "A", "B"], ["fwA"], 500.0))
        result = bed.evaluate()
        # Small route gets its demand; big route takes the rest.
        assert result.routes["small"].throughput_mbps == pytest.approx(20.0)
        assert result.routes["big"].throughput_mbps == pytest.approx(80.0)

    def test_distributing_over_both_instances_wins(self):
        # The Figure 11 effect: two routes on one instance halve each
        # other; moving one to the other instance doubles total.
        piled = make_testbed()
        piled.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 500.0))
        piled.add_route(E2ERoute("r2", ["B", "A", "B"], ["fwA"], 500.0))
        spread = make_testbed()
        spread.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 500.0))
        spread.add_route(E2ERoute("r2", ["B", "B", "B"], ["fwB"], 500.0))
        assert (
            spread.evaluate().total_throughput_mbps
            == pytest.approx(2 * piled.evaluate().total_throughput_mbps)
        )

    def test_remove_route(self):
        bed = make_testbed()
        bed.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 500.0))
        bed.remove_route("r1")
        assert bed.evaluate().routes == {}


class TestLatency:
    def test_base_rtt_sums_hops(self):
        bed = make_testbed(rtt=80.0)
        route = E2ERoute("r1", ["A", "B", "A"], ["fwB"], 10.0)
        assert bed.base_rtt(route) == pytest.approx(160.0)

    def test_same_site_hop_free(self):
        bed = make_testbed()
        route = E2ERoute("r1", ["A", "A", "B"], ["fwA"], 10.0)
        assert bed.base_rtt(route) == pytest.approx(80.0)

    def test_queueing_delay_grows_with_utilization(self):
        idle = make_testbed()
        idle.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 10.0))
        busy = make_testbed()
        busy.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 500.0))
        assert (
            busy.evaluate().routes["r1"].rtt_ms
            > idle.evaluate().routes["r1"].rtt_ms
        )

    def test_queueing_delay_capped(self):
        bed = E2ETestbed(rtt_ms={("A", "B"): 80.0}, max_queue_ms=25.0)
        bed.add_instance(VnfInstanceSpec("fwA", "A", 100.0))
        bed.add_route(E2ERoute("r1", ["A", "A", "B"], ["fwA"], 5000.0))
        rtt = bed.evaluate().routes["r1"].rtt_ms
        assert rtt <= 80.0 + 2 * 25.0 + 1e-9


class TestTcpModel:
    def test_loss_caps_throughput_via_mathis(self):
        bed = make_testbed(rtt=150.0)
        bed.set_loss("A", "B", 0.01)
        bed.add_route(E2ERoute("r1", ["A", "B", "A"], ["fwB"], 500.0))
        result = bed.evaluate()
        # Mathis over two lossy hops: loss = 1 - 0.99^2, RTT = 300 ms.
        loss = 1 - 0.99**2
        expected = 1.22 * 1460 * 8 / (0.3 * loss**0.5) / 1e6
        assert result.routes["r1"].throughput_mbps == pytest.approx(
            expected, rel=1e-6
        )
        assert result.routes["r1"].bottleneck == "tcp"

    def test_no_loss_no_tcp_cap(self):
        bed = make_testbed()
        route = E2ERoute("r1", ["A", "B"], [], 500.0)
        assert bed.tcp_cap_mbps(route) == float("inf")

    def test_longer_rtt_lowers_tcp_cap(self):
        short = make_testbed(rtt=80.0)
        short.set_loss("A", "B", 0.001)
        long = make_testbed(rtt=150.0)
        long.set_loss("A", "B", 0.001)
        route = E2ERoute("r1", ["A", "B"], [], 500.0)
        assert short.tcp_cap_mbps(route) > long.tcp_cap_mbps(route)

    def test_invalid_loss_rejected(self):
        bed = make_testbed()
        with pytest.raises(E2EError):
            bed.set_loss("A", "B", 1.5)


class TestAggregates:
    def test_mean_rtt_weighted_by_throughput(self):
        bed = make_testbed(rtt=80.0)
        bed.add_route(E2ERoute("near", ["A", "A", "A"], ["fwA"], 60.0))
        bed.add_route(E2ERoute("far", ["A", "B", "A"], ["fwB"], 20.0))
        result = bed.evaluate()
        near_rtt = result.routes["near"].rtt_ms
        far_rtt = result.routes["far"].rtt_ms
        expected = (60 * near_rtt + 20 * far_rtt) / 80
        assert result.mean_rtt_ms == pytest.approx(expected)

    def test_empty_testbed_evaluates(self):
        bed = make_testbed()
        result = bed.evaluate()
        assert result.total_throughput_mbps == 0.0


class TestResidualDrift:
    def _drift_testbed(self):
        # 0.01 / 3 subtracted three times overshoots 0.01 by one ulp, so
        # the unclamped allocator reported residual == -8.7e-19 and
        # utilization > 1.0 for the shared instance.
        bed = E2ETestbed(rtt_ms={("A", "B"): 80.0})
        bed.add_instance(VnfInstanceSpec("shared", "A", capacity_mbps=0.01))
        for i in range(3):
            bed.add_route(E2ERoute(f"r{i}", ["A", "B"], ["shared"], 1.0))
        return bed

    def test_utilization_never_exceeds_one(self):
        result = self._drift_testbed().evaluate()
        assert result.utilization["shared"] <= 1.0
        assert result.utilization["shared"] == pytest.approx(1.0)

    def test_reference_allocator_also_clamps(self):
        result = self._drift_testbed().evaluate_reference()
        assert result.utilization["shared"] <= 1.0

    def test_drift_case_splits_capacity_fairly(self):
        result = self._drift_testbed().evaluate()
        for i in range(3):
            assert result.routes[f"r{i}"].throughput_mbps == pytest.approx(
                0.01 / 3
            )
            assert result.routes[f"r{i}"].bottleneck == "shared"

    def test_utilization_reported_in_result(self):
        bed = make_testbed()
        bed.add_route(E2ERoute("r", ["A", "B"], ["fwA"], 50.0))
        result = bed.evaluate()
        assert result.utilization["fwA"] == pytest.approx(0.5)
        assert result.utilization["fwB"] == 0.0
