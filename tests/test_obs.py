"""Unit tests for the observability layer (repro.obs)."""

import json
import math

import pytest

from repro.obs import (
    Histogram,
    MetricsError,
    MetricsRegistry,
    TraceError,
    registry_to_dict,
    registry_to_json,
    render_report,
)
from repro.simnet.events import Simulator


class TestCounter:
    def test_increments(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(2)
        assert reg.value("x") == 3

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("x").inc(-1)

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("drops", site="A").inc()
        reg.counter("drops", site="B").inc(5)
        assert reg.value("drops", site="A") == 1
        assert reg.value("drops", site="B") == 5

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("m", a=1, b=2).inc()
        assert reg.counter("m", b=2, a=1).value == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError):
            reg.gauge("x")


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("queue")
        gauge.set(10)
        gauge.add(-3)
        assert reg.value("queue") == 7


class TestHistogram:
    def test_empty_percentile_is_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.percentile(50))

    def test_single_value_everywhere(self):
        hist = Histogram("h")
        hist.observe(0.25)
        for q in (0, 50, 99, 100):
            assert hist.percentile(q) == pytest.approx(0.25)

    def test_percentiles_bounded_relative_error(self):
        # Uniform 1..1000: log-linear bucketing must place every
        # percentile within the ~1/(2*16) relative error bound.
        hist = Histogram("h")
        for v in range(1, 1001):
            hist.observe(float(v))
        for q, exact in ((50, 500), (90, 900), (99, 990)):
            assert hist.percentile(q) == pytest.approx(exact, rel=1 / 16)

    def test_percentiles_clamped_to_observed_range(self):
        hist = Histogram("h")
        hist.observe(3.0)
        hist.observe(5.0)
        assert hist.percentile(0) >= 3.0
        assert hist.percentile(100) <= 5.0

    def test_wide_dynamic_range(self):
        # Microseconds to hundreds of seconds in one histogram.
        hist = Histogram("h")
        for v in (1e-6, 1e-3, 1.0, 300.0):
            hist.observe(v)
        assert hist.percentile(100) == pytest.approx(300.0, rel=1 / 16)
        assert hist.percentile(1) == pytest.approx(1e-6, rel=1 / 16)

    def test_zero_goes_to_underflow_bucket(self):
        hist = Histogram("h")
        hist.observe(0.0)
        hist.observe(1.0)
        assert hist.percentile(50) == 0.0

    def test_negative_and_nan_rejected(self):
        hist = Histogram("h")
        with pytest.raises(MetricsError):
            hist.observe(-0.1)
        with pytest.raises(MetricsError):
            hist.observe(float("nan"))

    def test_percentile_out_of_range_rejected(self):
        hist = Histogram("h")
        with pytest.raises(MetricsError):
            hist.percentile(101)

    def test_mean_is_exact(self):
        hist = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert hist.mean == pytest.approx(2.0)


class TestSpans:
    def test_nested_spans_record_parent_and_depth(self):
        reg = MetricsRegistry()
        with reg.span("outer") as outer:
            with reg.span("inner") as inner:
                pass
        assert inner.parent is outer
        assert inner.depth == 1
        assert outer.depth == 0
        assert [s.name for s in reg.spans] == ["inner", "outer"]

    def test_span_duration_uses_simulated_clock(self):
        sim = Simulator()
        reg = MetricsRegistry.for_simulator(sim)
        span = reg.start_span("op")
        sim.schedule(1.5, lambda: None)
        sim.run()
        span.finish()
        assert span.duration == pytest.approx(1.5)

    def test_finished_span_feeds_histogram(self):
        sim = Simulator()
        reg = MetricsRegistry.for_simulator(sim)
        span = reg.start_span("2pc.prepare", chain="corp")
        sim.schedule(0.065, lambda: None)
        sim.run()
        span.finish()
        [hist] = reg.find("span.2pc.prepare")
        assert hist.count == 1
        assert hist.mean == pytest.approx(0.065)

    def test_double_finish_rejected(self):
        reg = MetricsRegistry()
        span = reg.start_span("op")
        span.finish()
        with pytest.raises(TraceError):
            span.finish()

    def test_out_of_order_finish_rejected(self):
        reg = MetricsRegistry()
        outer = reg.span("outer")
        reg.span("inner")
        with pytest.raises(MetricsError):
            outer.finish()

    def test_detached_span_does_not_join_stack(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            detached = reg.start_span("io")
            with reg.span("inner") as inner:
                pass
            detached.finish()
        assert detached.parent is None
        assert inner.parent.name == "outer"

    def test_span_cap_counts_drops(self):
        reg = MetricsRegistry()
        reg.MAX_SPANS = 2
        for _ in range(5):
            reg.start_span("op").finish()
        assert len(reg.spans) == 2
        assert reg.spans_dropped == 3
        # The histogram aggregation still sees every span.
        [hist] = reg.find("span.op")
        assert hist.count == 5


class TestReport:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("bus.wan_drops", site="A").inc(3)
        reg.gauge("queue").set(7)
        reg.histogram("lat").observe(0.5)
        reg.start_span("op").finish()
        return reg

    def test_text_report_has_all_sections(self):
        report = render_report(self.build(), title="t")
        assert "== t ==" in report
        assert "bus.wan_drops{site=A} 3" in report
        assert "-- histograms --" in report
        assert "-- spans (newest last) --" in report

    def test_json_round_trip(self):
        data = json.loads(registry_to_json(self.build()))
        assert data["counters"]["bus.wan_drops{site=A}"] == 3
        assert data["histograms"]["lat"]["count"] == 1
        assert data["spans"][0]["name"] == "op"

    def test_dict_has_span_metadata(self):
        data = registry_to_dict(self.build())
        assert data["spans_dropped"] == 0
        assert data["spans"][0]["duration"] is not None
