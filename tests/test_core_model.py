"""Unit tests for the Table 1 network model."""

import pytest

from repro.core.model import Chain, CloudSite, Link, ModelError, NetworkModel, VNF


class TestChain:
    def test_scalar_traffic_broadcasts_to_stages(self):
        chain = Chain("c", "a", "b", ["f1", "f2"], 4.0, 1.0)
        assert chain.num_stages == 3
        assert chain.forward_traffic == (4.0, 4.0, 4.0)
        assert chain.reverse_traffic == (1.0, 1.0, 1.0)

    def test_per_stage_traffic_list(self):
        chain = Chain("c", "a", "b", ["f1"], [4.0, 2.0], [1.0, 0.5])
        assert chain.stage_traffic(1) == 5.0
        assert chain.stage_traffic(2) == 2.5

    def test_wrong_length_traffic_rejected(self):
        with pytest.raises(ModelError):
            Chain("c", "a", "b", ["f1"], [4.0, 2.0, 1.0])

    def test_negative_traffic_rejected(self):
        with pytest.raises(ModelError):
            Chain("c", "a", "b", ["f1"], -1.0)

    def test_vnf_at_is_one_based(self):
        chain = Chain("c", "a", "b", ["f1", "f2"])
        assert chain.vnf_at(1) == "f1"
        assert chain.vnf_at(2) == "f2"
        with pytest.raises(ModelError):
            chain.vnf_at(0)
        with pytest.raises(ModelError):
            chain.vnf_at(3)

    def test_stage_out_of_range(self):
        chain = Chain("c", "a", "b", ["f1"])
        with pytest.raises(ModelError):
            chain.stage_traffic(3)

    def test_scaled_multiplies_all_stages(self):
        chain = Chain("c", "a", "b", ["f1"], 4.0, 2.0)
        scaled = chain.scaled(0.5)
        assert scaled.forward_traffic == (2.0, 2.0)
        assert scaled.reverse_traffic == (1.0, 1.0)
        assert scaled.name == chain.name

    def test_empty_chain_has_one_stage(self):
        chain = Chain("c", "a", "b", [])
        assert chain.num_stages == 1


class TestVnf:
    def test_sites_lists_deployments(self):
        vnf = VNF("f", 1.0, {"A": 5.0, "B": 3.0})
        assert sorted(vnf.sites) == ["A", "B"]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelError):
            VNF("f", 1.0, {"A": -1.0})

    def test_negative_load_rejected(self):
        with pytest.raises(ModelError):
            VNF("f", -0.5, {})

    def test_with_sites_adds_capacity(self):
        vnf = VNF("f", 1.0, {"A": 5.0})
        grown = vnf.with_sites({"B": 2.0, "A": 1.0})
        assert grown.site_capacity == {"A": 6.0, "B": 2.0}
        assert vnf.site_capacity == {"A": 5.0}  # original untouched


class TestLatency:
    def test_symmetric_fallback(self, triangle_model):
        assert triangle_model.latency("b", "a") == 10.0

    def test_diagonal_defaults_to_zero(self, triangle_model):
        assert triangle_model.latency("a", "a") == 0.0

    def test_missing_pair_raises(self):
        model = NetworkModel(["a", "b"], {})
        with pytest.raises(ModelError):
            model.latency("a", "b")

    def test_site_latency_resolves_site_names(self, triangle_model):
        assert triangle_model.site_latency("A", "B") == 10.0
        assert triangle_model.site_latency("a", "B") == 10.0


class TestStageEndpoints:
    def test_stage_one_source_is_ingress(self, triangle_model):
        chain = triangle_model.chains["c1"]
        assert triangle_model.stage_sources(chain, 1) == ["a"]

    def test_last_stage_destination_is_egress(self, triangle_model):
        chain = triangle_model.chains["c1"]
        assert triangle_model.stage_destinations(chain, 3) == ["c"]

    def test_intermediate_stages_use_vnf_sites(self, triangle_model):
        chain = triangle_model.chains["c1"]
        assert sorted(triangle_model.stage_destinations(chain, 1)) == ["A", "B"]
        assert sorted(triangle_model.stage_sources(chain, 2)) == ["A", "B"]
        assert sorted(triangle_model.stage_destinations(chain, 2)) == ["B", "C"]


class TestValidation:
    def test_unknown_ingress_rejected(self, triangle_model):
        with pytest.raises(ModelError):
            triangle_model.add_chain(Chain("bad", "zz", "c", ["fw"]))

    def test_unknown_vnf_rejected(self, triangle_model):
        with pytest.raises(ModelError):
            triangle_model.add_chain(Chain("bad", "a", "c", ["ghost"]))

    def test_vnf_without_sites_rejected(self):
        model = NetworkModel(
            ["a", "b"],
            {("a", "b"): 1.0},
            [CloudSite("A", "a", 10.0)],
            [VNF("f", 1.0, {})],
        )
        with pytest.raises(ModelError):
            model.add_chain(Chain("c", "a", "b", ["f"]))

    def test_duplicate_chain_rejected(self, triangle_model):
        with pytest.raises(ModelError):
            triangle_model.add_chain(Chain("c1", "a", "c", ["fw"]))

    def test_site_on_unknown_node_rejected(self):
        with pytest.raises(ModelError):
            NetworkModel(["a"], {}, [CloudSite("X", "zz", 1.0)])

    def test_vnf_at_unknown_site_rejected(self):
        with pytest.raises(ModelError):
            NetworkModel(["a"], {}, [], [VNF("f", 1.0, {"ghost": 1.0})])

    def test_remove_chain(self, triangle_model):
        triangle_model.remove_chain("c1")
        assert "c1" not in triangle_model.chains
        with pytest.raises(ModelError):
            triangle_model.remove_chain("c1")


class TestLinksAndRouting:
    def make_model(self):
        links = [
            Link("ab", "a", "b", bandwidth=10.0, background=2.0),
            Link("bc", "b", "c", bandwidth=10.0),
        ]
        routing = {("a", "c"): {"ab": 1.0, "bc": 1.0}, ("a", "b"): {"ab": 1.0}}
        return NetworkModel(
            ["a", "b", "c"],
            {("a", "b"): 1.0, ("b", "c"): 1.0, ("a", "c"): 2.0},
            links=links,
            routing=routing,
            mlu_limit=0.9,
        )

    def test_route_fraction_lookup(self):
        model = self.make_model()
        assert model.route_fraction("a", "c", "ab") == 1.0
        assert model.route_fraction("a", "c", "zz") == 0.0
        assert model.route_fraction("c", "a", "ab") == 0.0

    def test_link_headroom_respects_mlu_and_background(self):
        model = self.make_model()
        assert model.link_headroom(model.links["ab"]) == pytest.approx(7.0)
        assert model.link_headroom(model.links["bc"]) == pytest.approx(9.0)

    def test_unknown_link_in_routing_rejected(self):
        with pytest.raises(ModelError):
            NetworkModel(
                ["a", "b"],
                {("a", "b"): 1.0},
                routing={("a", "b"): {"ghost": 1.0}},
            )

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            Link("l", "a", "b", bandwidth=0.0)


class TestCopies:
    def test_copy_with_chains_shares_substrate(self, triangle_model):
        copy = triangle_model.copy_with_chains([])
        assert not copy.chains
        assert copy.sites.keys() == triangle_model.sites.keys()
        assert triangle_model.chains  # original untouched

    def test_copy_with_vnfs_revalidates_chains(self, triangle_model):
        with pytest.raises(ModelError):
            triangle_model.copy_with_vnfs([VNF("other", 1.0, {})])

    def test_total_demand_sums_stage_one(self, triangle_model):
        assert triangle_model.total_demand() == pytest.approx(7.0 + 4.0)


class TestDigest:
    def test_insertion_order_invariant(self, triangle_model):
        reordered = NetworkModel(
            list(reversed(triangle_model.nodes)),
            {("b", "c"): 15.0, ("a", "c"): 30.0, ("a", "b"): 10.0},
            list(reversed(list(triangle_model.sites.values()))),
            list(reversed(list(triangle_model.vnfs.values()))),
            list(reversed(list(triangle_model.chains.values()))),
        )
        assert reordered.digest() == triangle_model.digest()

    def test_round_trips_serialization(self, triangle_model):
        from repro.core.serialization import model_from_dict, model_to_dict

        clone = model_from_dict(model_to_dict(triangle_model))
        assert clone.digest() == triangle_model.digest()

    def test_demand_change_changes_digest(self, triangle_model):
        before = triangle_model.digest()
        chain = triangle_model.chains["c1"]
        triangle_model.remove_chain("c1")
        triangle_model.add_chain(chain.scaled(2.0))
        assert triangle_model.digest() != before

    def test_capacity_change_changes_digest(self, triangle_model):
        before = triangle_model.digest()
        smaller = triangle_model.copy_with_sites(
            [CloudSite(s.name, s.node, s.capacity / 2)
             for s in triangle_model.sites.values()]
        )
        assert smaller.digest() != before

    def test_chain_subset_digest(self, triangle_model):
        full = triangle_model.digest()
        only_c1 = triangle_model.digest(chains=["c1"])
        assert only_c1 != full
        # Subset digest matches a model actually restricted to c1.
        restricted = triangle_model.copy_with_chains(
            [triangle_model.chains["c1"]]
        )
        assert restricted.digest() == only_c1
        # The other chain's demand is invisible to c1's subset digest.
        c2 = triangle_model.chains["c2"]
        triangle_model.remove_chain("c2")
        triangle_model.add_chain(c2.scaled(3.0))
        assert triangle_model.digest(chains=["c1"]) == only_c1

    def test_unknown_chain_rejected(self, triangle_model):
        with pytest.raises(ModelError):
            triangle_model.digest(chains=["ghost"])
