"""Tests for ``repro.bench``: discovery, stats, comparison, CLI gating.

The CLI tests register synthetic suites directly in the benchmark
registry (``benchmarks/_common.REGISTRY``) so they can plant an exact
2x slowdown without waiting on the real solver suites; the discovery
test is the one place the real ``bench_*.py`` modules are imported.
"""

from __future__ import annotations

import json
import math
import random
import sys
import time

import pytest

from repro import bench as rb
from repro.bench.stats import SampleStats, StatsError, pooled_stddev
from repro.cli import main


def _common_module():
    bench_dir = rb.default_bench_dir()
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    import _common

    return _common


@pytest.fixture
def synthetic_suite():
    """Register a sleep-driven suite; duration is adjustable per test."""
    _common = _common_module()
    state = {"duration_s": 0.005}

    def run_synthetic():
        time.sleep(state["duration_s"])
        return state["duration_s"]

    _common.register_bench(
        "synthetic_sleep", warmup=0, repeats=3
    )(run_synthetic)
    try:
        yield state
    finally:
        _common.REGISTRY.pop("synthetic_sleep", None)


class TestDiscovery:
    def test_finds_every_suite_on_disk(self):
        on_disk = rb.available_suites()
        files = sorted(
            p.stem[len("bench_"):]
            for p in rb.default_bench_dir().glob("bench_*.py")
        )
        assert on_disk == files
        assert len(on_disk) >= 18

        discovered = rb.discover()
        assert set(files) <= set(discovered)
        for name, suite in discovered.items():
            if name in files:
                assert suite.module == f"bench_{name}"
            assert callable(suite.fn)
            assert suite.repeats >= 1

    def test_suite_names_match_module_convention(self):
        discovered = rb.discover(["fig9_message_bus", "scale_solver_farm"])
        assert list(discovered) == ["fig9_message_bus", "scale_solver_farm"]
        assert discovered["fig9_message_bus"].accepts_metrics
        assert discovered["scale_solver_farm"].model_factory is not None

    def test_unknown_suite_rejected(self):
        with pytest.raises(rb.BenchUsageError, match="unknown suite"):
            rb.discover(["no_such_suite"])

    def test_registered_only_suite_needs_no_module(self, synthetic_suite):
        discovered = rb.discover(["synthetic_sleep"])
        assert discovered["synthetic_sleep"].warmup == 0


class TestStats:
    def test_aggregation_on_synthetic_samples(self):
        stats = SampleStats.from_samples([5.0, 1.0, 3.0, 2.0, 4.0])
        assert stats.n == 5
        assert stats.min == 1.0 and stats.max == 5.0
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.stddev == pytest.approx(math.sqrt(2.5))
        assert stats.iqr == pytest.approx(2.0)

    def test_single_sample(self):
        stats = SampleStats.from_samples([0.25])
        assert stats.n == 1
        assert stats.median == 0.25
        assert stats.stddev == 0.0
        assert stats.iqr == 0.0

    def test_median_interpolates_even_counts(self):
        stats = SampleStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.median == 2.5

    def test_rejects_empty_and_invalid(self):
        with pytest.raises(StatsError):
            SampleStats.from_samples([])
        with pytest.raises(StatsError):
            SampleStats.from_samples([1.0, -0.5])
        with pytest.raises(StatsError):
            SampleStats.from_samples([float("nan")])

    def test_dict_round_trip_is_exact(self):
        stats = SampleStats.from_samples([0.1, 0.2, 0.30000000000000004])
        assert SampleStats.from_dict(stats.to_dict()) == stats

    def test_pooled_stddev(self):
        a = SampleStats.from_samples([1.0, 2.0, 3.0])
        b = SampleStats.from_samples([2.0, 4.0, 6.0])
        expected = math.sqrt((2 * a.stddev**2 + 2 * b.stddev**2) / 4)
        assert pooled_stddev(a, b) == pytest.approx(expected)
        single = SampleStats.from_samples([1.0])
        assert pooled_stddev(single, single) == 0.0


class TestComparator:
    def _stats(self, median: float, jitter: float = 0.0) -> SampleStats:
        return SampleStats.from_samples(
            [median - jitter, median, median + jitter]
        )

    def test_planted_2x_regression_flagged(self):
        comparison = rb.compare_stats(
            "s",
            self._stats(2.0, 0.01),
            self._stats(1.0, 0.01),
            rb.Tolerance(rel_tol=0.25, k=3.0),
        )
        assert comparison.regressed
        assert not comparison.improved
        assert comparison.ratio == pytest.approx(2.0)
        assert "REGRESSION" in comparison.render()

    def test_identical_rerun_passes(self):
        stats = self._stats(1.0, 0.01)
        comparison = rb.compare_stats(
            "s", stats, stats, rb.Tolerance(rel_tol=0.25, k=3.0)
        )
        assert not comparison.regressed
        assert not comparison.improved

    def test_noise_term_absorbs_jittery_suites(self):
        # 10% slower, but the samples spread +-15%: within k*pooled.
        comparison = rb.compare_stats(
            "s",
            self._stats(1.1, 0.15),
            self._stats(1.0, 0.15),
            rb.Tolerance(rel_tol=0.05, k=3.0),
        )
        assert not comparison.regressed

    def test_improvement_detected(self):
        comparison = rb.compare_stats(
            "s",
            self._stats(0.4, 0.001),
            self._stats(1.0, 0.001),
            rb.Tolerance(rel_tol=0.25, k=3.0),
        )
        assert comparison.improved and not comparison.regressed

    def test_ci_mode_widens_tolerance(self, monkeypatch):
        current, baseline = self._stats(1.6, 0.001), self._stats(1.0, 0.001)
        tolerance = rb.Tolerance(rel_tol=0.25, k=3.0)
        assert rb.compare_stats("s", current, baseline, tolerance).regressed
        monkeypatch.setenv("REPRO_BENCH_CI", "1")
        assert rb.ci_mode_enabled()
        relaxed = rb.compare_stats("s", current, baseline, tolerance)
        assert not relaxed.regressed

    def test_digest_change_suppresses_regression(self, synthetic_suite):
        suite = rb.discover(["synthetic_sleep"])["synthetic_sleep"]
        run_slow = rb.run_suite(suite, repeats=2)
        doc_base = rb.build_document(
            run_slow, suite, environment={}, sha="a"
        )
        doc_base["model_digest"] = "digest-one"
        doc_cur = json.loads(rb.canonical_json(doc_base))
        doc_cur["model_digest"] = "digest-two"
        doc_cur["stats"]["median_s"] = doc_base["stats"]["median_s"] * 10
        comparison = rb.compare_documents(doc_cur, doc_base)
        assert comparison.digest_changed
        assert not comparison.regressed


class TestDocuments:
    def test_baseline_round_trips_byte_identically(self, tmp_path):
        rng = random.Random(1234)
        samples = sorted(rng.uniform(0.01, 0.02) for _ in range(7))
        document = {
            "schema": rb.SCHEMA,
            "suite": "round_trip",
            "warmup": 1,
            "samples_s": samples,
            "stats": SampleStats.from_samples(samples).to_dict(),
            "model_digest": None,
            "environment": rb.environment_fingerprint(),
            "git_sha": "f" * 40,
            "tolerance": {"rel_tol": 0.25, "k": 3.0},
            "metrics": None,
        }
        first = rb.save_baseline(tmp_path, document)
        loaded = rb.load_baseline(tmp_path, "round_trip")
        second = rb.save_baseline(tmp_path, loaded)
        assert first == second
        assert first.read_bytes() == rb.canonical_json(document).encode()
        assert first.read_bytes() == rb.canonical_json(loaded).encode()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9"}')
        with pytest.raises(rb.BenchError, match="unsupported schema"):
            rb.load_document(path)

    def test_atomic_write_creates_parents(self, tmp_path):
        nested = tmp_path / "a" / "b" / "BENCH_x.json"
        rb.write_document(nested, {"schema": rb.SCHEMA, "suite": "x"})
        assert json.loads(nested.read_text())["suite"] == "x"
        leftovers = [
            p for p in nested.parent.iterdir() if p.name != nested.name
        ]
        assert leftovers == []


class TestRunner:
    def test_warmup_and_repeats_respected(self, synthetic_suite):
        calls = {"n": 0}
        _common = _common_module()

        def counted():
            calls["n"] += 1

        _common.register_bench("synthetic_counted", warmup=2, repeats=4)(
            counted
        )
        try:
            suite = rb.discover(["synthetic_counted"])["synthetic_counted"]
            run = rb.run_suite(suite)
            assert calls["n"] == 6
            assert run.stats.n == 4
            assert len(run.samples) == 4
        finally:
            _common.REGISTRY.pop("synthetic_counted", None)

    def test_run_rejects_bad_overrides(self, synthetic_suite):
        suite = rb.discover(["synthetic_sleep"])["synthetic_sleep"]
        with pytest.raises(ValueError):
            rb.run_suite(suite, repeats=0)
        with pytest.raises(ValueError):
            rb.run_suite(suite, warmup=-1)


class TestCli:
    def _run(self, tmp_path, *extra):
        return main([
            "bench",
            "--suites", "synthetic_sleep",
            "--out", str(tmp_path / "out"),
            "--baselines", str(tmp_path / "baselines"),
            *extra,
        ])

    def test_exit_0_on_identical_rerun(self, tmp_path, synthetic_suite):
        assert self._run(tmp_path, "--update-baselines") == 0
        assert rb.list_baselines(tmp_path / "baselines") == [
            "synthetic_sleep"
        ]
        assert self._run(tmp_path, "--compare") == 0
        document = rb.load_document(
            tmp_path / "out" / "BENCH_synthetic_sleep.json"
        )
        assert document["suite"] == "synthetic_sleep"
        assert document["stats"]["n"] == 3

    def test_exit_1_on_planted_2x_regression(
        self, tmp_path, synthetic_suite, capsys
    ):
        assert self._run(tmp_path, "--update-baselines") == 0
        synthetic_suite["duration_s"] *= 10
        assert self._run(tmp_path, "--compare") == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_2_on_unknown_suite(self, tmp_path):
        code = main([
            "bench", "--suites", "definitely_missing",
            "--out", str(tmp_path),
        ])
        assert code == 2

    def test_exit_2_on_missing_baseline(self, tmp_path, synthetic_suite):
        assert self._run(tmp_path, "--compare") == 2

    def test_exit_2_on_conflicting_flags(self, tmp_path, synthetic_suite):
        assert (
            self._run(tmp_path, "--compare", "--update-baselines") == 2
        )

    def test_list_prints_suites(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "scale_solver_farm" in out
        assert "fig9_message_bus" in out

    def test_update_baselines_round_trips_byte_identically(
        self, tmp_path, synthetic_suite
    ):
        assert self._run(tmp_path, "--update-baselines") == 0
        path = rb.baseline_path(tmp_path / "baselines", "synthetic_sleep")
        before = path.read_bytes()
        rb.save_baseline(
            tmp_path / "baselines",
            rb.load_baseline(tmp_path / "baselines", "synthetic_sleep"),
        )
        assert path.read_bytes() == before


class TestAtomicEmit:
    def test_emit_creates_results_dir_and_writes_atomically(
        self, tmp_path, monkeypatch, capsys
    ):
        _common = _common_module()
        results = tmp_path / "nested" / "results"
        monkeypatch.setattr(_common, "RESULTS_DIR", str(results))
        _common.emit("atomic_check", "title\n=====\nrow\n")
        out_file = results / "atomic_check.txt"
        assert out_file.read_text().startswith("title")
        assert [p.name for p in results.iterdir()] == ["atomic_check.txt"]
