"""Tests for ANYCAST, COMPUTE-AWARE, and the carried-traffic scaler."""

import pytest

from repro.core.baselines import (
    route_anycast,
    route_compute_aware,
    scale_to_capacity,
)
from repro.core.dp import route_chains_dp
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF


def two_site_model(demand=5.0, cap_a=10.0, cap_b=50.0):
    """The Figure 11 scenario: two sites, nearest one small."""
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 40.0, ("a", "c"): 5.0, ("b", "c"): 42.0}
    sites = [CloudSite("A", "a", 1000.0), CloudSite("B", "b", 1000.0)]
    vnfs = [VNF("fw", 1.0, {"A": cap_a, "B": cap_b})]
    chains = [Chain("c1", "a", "c", ["fw"], demand, 0.0)]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


class TestAnycast:
    def test_picks_nearest_site_regardless_of_capacity(self):
        model = two_site_model(demand=100.0, cap_a=1.0)
        solution = route_anycast(model)
        assert solution.fraction("c1", 1, "a", "A") == pytest.approx(1.0)

    def test_offered_routing_may_violate_capacity(self):
        model = two_site_model(demand=100.0, cap_a=1.0)
        solution = route_anycast(model)
        assert solution.violations()  # oversubscribed by design

    def test_all_chains_routed(self):
        model = two_site_model()
        model.add_chain(Chain("c2", "b", "c", ["fw"], 1.0))
        solution = route_anycast(model)
        assert solution.routed_fraction("c1") == pytest.approx(1.0)
        assert solution.routed_fraction("c2") == pytest.approx(1.0)

    def test_deterministic_tiebreak(self):
        model = two_site_model()
        first = route_anycast(model).stage_flows("c1", 1)
        second = route_anycast(model).stage_flows("c1", 1)
        assert first == second


class TestComputeAware:
    def test_skips_full_site(self):
        # A (near) too small for the whole chain: load 2*5=10 > 6.
        model = two_site_model(demand=5.0, cap_a=6.0, cap_b=50.0)
        solution = route_compute_aware(model)
        flows = solution.stage_flows("c1", 1)
        assert flows[("a", "A")] < 1.0
        assert ("a", "B") in flows
        solution.validate()

    def test_sequential_chains_see_prior_load(self):
        model = two_site_model(demand=5.0, cap_a=10.0, cap_b=50.0)
        model.add_chain(Chain("c2", "a", "c", ["fw"], 5.0))
        solution = route_compute_aware(model)
        solution.validate()
        # First chain fills A (load 10 = cap); second goes to B.
        assert solution.fraction("c2", 1, "a", "B") == pytest.approx(1.0)

    def test_unroutable_remainder_not_admitted(self):
        model = two_site_model(demand=100.0, cap_a=6.0, cap_b=6.0)
        solution = route_compute_aware(model)
        assert solution.routed_fraction("c1") < 1.0
        solution.validate()

    def test_ignores_network_load(self):
        # COMPUTE-AWARE considers only compute, so it happily saturates a
        # link that the DP would avoid.
        nodes = ["a", "b"]
        latency = {("a", "b"): 10.0}
        sites = [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)]
        vnfs = [VNF("fw", 0.1, {"B": 100.0})]
        chains = [Chain("c1", "a", "b", ["fw"], 10.0)]
        links = [Link("ab", "a", "b", 4.0), Link("ba", "b", "a", 4.0)]
        routing = {("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0}}
        model = NetworkModel(nodes, latency, sites, vnfs, chains, links, routing)
        ca = route_compute_aware(model)
        assert ca.routed_fraction("c1") == pytest.approx(1.0)
        assert ca.max_link_utilization() > 1.0  # oversubscribed link
        dp = route_chains_dp(model)
        assert dp.solution.max_link_utilization() <= 1.0 + 1e-9


class TestScaleToCapacity:
    def test_feasible_solution_unchanged(self):
        model = two_site_model(demand=2.0, cap_a=50.0)
        offered = route_anycast(model)
        carried = scale_to_capacity(offered)
        assert carried.throughput() == pytest.approx(offered.throughput())

    def test_oversubscribed_chain_scaled_down(self):
        model = two_site_model(demand=10.0, cap_a=10.0, cap_b=50.0)
        offered = route_anycast(model)  # A gets load 20 on capacity 10
        carried = scale_to_capacity(offered)
        assert carried.routed_fraction("c1") == pytest.approx(0.5)
        carried.validate()

    def test_scaled_solution_is_always_feasible(self):
        model = two_site_model(demand=1000.0, cap_a=3.0, cap_b=7.0)
        model.add_chain(Chain("c2", "a", "c", ["fw"], 500.0))
        carried = scale_to_capacity(route_anycast(model))
        carried.validate()

    def test_link_oversubscription_scaled(self):
        nodes = ["a", "b"]
        latency = {("a", "b"): 10.0}
        sites = [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)]
        vnfs = [VNF("fw", 0.01, {"B": 100.0})]
        chains = [Chain("c1", "a", "b", ["fw"], 10.0)]
        links = [Link("ab", "a", "b", 5.0), Link("ba", "b", "a", 5.0)]
        routing = {("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0}}
        model = NetworkModel(nodes, latency, sites, vnfs, chains, links, routing)
        carried = scale_to_capacity(route_anycast(model))
        assert carried.throughput() == pytest.approx(5.0, rel=1e-6)

    def test_zero_capacity_resource_drops_chain(self):
        model = two_site_model(demand=5.0)
        model.vnfs["fw"] = VNF("fw", 1.0, {"A": 10.0, "B": 50.0, "C": 0.0})
        # Route through a zero-capacity deployment by hand.
        model.sites["C"] = CloudSite("C", "c", 0.0)
        offered = route_anycast(model)
        carried = scale_to_capacity(offered)
        carried.validate()


class TestSchemeOrdering:
    def test_global_dp_beats_anycast_under_contention(self):
        """The Figure 11 story: global optimization carries more traffic."""
        model = two_site_model(demand=8.0, cap_a=10.0, cap_b=50.0)
        model.add_chain(Chain("c2", "a", "c", ["fw"], 8.0))
        anycast = scale_to_capacity(route_anycast(model))
        dp = route_chains_dp(model)
        assert dp.solution.throughput() > anycast.throughput()
