"""Gap-filling tests for small API surfaces not covered elsewhere."""

import math

import pytest

from repro.bus.bus import BusStats, Delivery
from repro.dataplane.dht import DhtForwarderGroup
from repro.dataplane.labels import FiveTuple, Labels
from repro.topology.backbone import build_backbone
from repro.topology.cities import DEFAULT_CITIES
from repro.topology.traffic import TrafficMatrix, gravity_traffic_matrix

LBL = Labels(chain=1, egress_site="E")


class TestDhtForwarderGroup:
    def test_add_and_query(self):
        group = DhtForwarderGroup()
        group.add_forwarder("f1")
        group.add_forwarder("f2")
        assert group.table.nodes == ["f1", "f2"]

    def test_graceful_removal_keeps_entries(self):
        group = DhtForwarderGroup()
        group.add_forwarder("f1")
        group.add_forwarder("f2")
        flow = FiveTuple("1.1.1.1", "2.2.2.2", "tcp", 1, 2)
        group.table.insert(LBL, flow)
        group.remove_forwarder("f1", graceful=True)
        assert group.table.lookup("f2", LBL, flow) is not None

    def test_crash_removal(self):
        group = DhtForwarderGroup()
        group.add_forwarder("f1")
        group.add_forwarder("f2")
        group.remove_forwarder("f1", graceful=False)
        assert group.table.nodes == ["f2"]


class TestBusStats:
    def test_empty_latencies_are_nan(self):
        stats = BusStats()
        assert math.isnan(stats.mean_latency())
        assert math.isnan(stats.p99_latency())

    def test_p99_with_few_samples(self):
        stats = BusStats()
        for latency in (0.010, 0.020, 0.030):
            stats.deliveries.append(Delivery("/t", "s", 0.0, latency))
        assert stats.p99_latency() == 0.030

    def test_delivery_latency(self):
        delivery = Delivery("/t", "s", published_at=1.0, delivered_at=1.25)
        assert delivery.latency == pytest.approx(0.25)


class TestBackboneAccessors:
    def test_link_lookup_by_name(self):
        backbone = build_backbone(DEFAULT_CITIES[:6])
        first = backbone.links[0]
        assert backbone.link(first.name) is first
        with pytest.raises(KeyError):
            backbone.link("no-such-link")

    def test_nodes_match_cities(self):
        cities = DEFAULT_CITIES[:6]
        backbone = build_backbone(cities)
        assert backbone.nodes == [c.name for c in cities]


class TestTrafficMatrixOps:
    def test_scaled(self):
        matrix = gravity_traffic_matrix(DEFAULT_CITIES[:5], 100.0)
        doubled = matrix.scaled(2.0)
        assert doubled.total() == pytest.approx(200.0)
        assert matrix.total() == pytest.approx(100.0)  # original intact

    def test_row_sum_of_absent_node(self):
        matrix = TrafficMatrix(["x"], {})
        assert matrix.row_sum("x") == 0.0

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            gravity_traffic_matrix(DEFAULT_CITIES[:3], -1.0)


class TestCliLpPath:
    def test_route_lp_scheme(self, capsys):
        from repro.cli import main

        assert main([
            "route", "--chains", "4", "--cities", "6", "--scheme", "lp",
            "--traffic", "500", "--site-capacity", "2000",
        ]) == 0
        out = capsys.readouterr().out
        assert "SB-LP" in out


class TestPacketDefaults:
    def test_default_size_is_500_bytes(self):
        from repro.dataplane.labels import Packet

        packet = Packet(FiveTuple("1.1.1.1", "2.2.2.2", "tcp", 1, 2))
        assert packet.size_bytes == 500  # the paper's average packet size

    def test_with_labels_chains(self):
        from repro.dataplane.labels import Packet

        packet = Packet(FiveTuple("1.1.1.1", "2.2.2.2", "tcp", 1, 2))
        assert packet.with_labels(LBL) is packet
        assert packet.labels == LBL
