"""Property-based tests over randomly generated models.

These encode the core cross-scheme invariants:

- every scheme's carried routing is feasible (capacities, conservation);
- SB-LP is optimal: no scheme beats it on its own objective;
- the DP's carried throughput never exceeds offered demand;
- scale_to_capacity output is always feasible regardless of input.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.baselines import (
    route_anycast,
    route_compute_aware,
    scale_to_capacity,
)
from repro.core.dp import DpConfig, route_chains_dp
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, NetworkModel, VNF

TOL = 1e-5


@st.composite
def random_model(draw) -> NetworkModel:
    """A small random model: 3-5 nodes, 1-3 VNFs, 1-4 chains."""
    num_nodes = draw(st.integers(3, 5))
    nodes = [f"n{i}" for i in range(num_nodes)]
    rng = random.Random(draw(st.integers(0, 10_000)))

    latency = {}
    # Random metric-ish latencies via coordinates (keeps them sane).
    coords = {n: (rng.uniform(0, 50), rng.uniform(0, 50)) for n in nodes}
    for i, n1 in enumerate(nodes):
        for n2 in nodes[i + 1:]:
            (x1, y1), (x2, y2) = coords[n1], coords[n2]
            latency[(n1, n2)] = ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5 + 1.0

    sites = [
        CloudSite(f"S{i}", node, rng.uniform(20, 200))
        for i, node in enumerate(nodes)
    ]
    num_vnfs = draw(st.integers(1, 3))
    vnfs = []
    for v in range(num_vnfs):
        deployments = rng.sample(sites, rng.randint(1, len(sites)))
        vnfs.append(
            VNF(
                f"f{v}",
                rng.uniform(0.2, 2.0),
                {s.name: rng.uniform(5, 50) for s in deployments},
            )
        )
    num_chains = draw(st.integers(1, 4))
    chains = []
    for c in range(num_chains):
        ingress, egress = rng.sample(nodes, 2)
        length = rng.randint(1, num_vnfs)
        chain_vnfs = [f"f{v}" for v in sorted(rng.sample(range(num_vnfs), length))]
        chains.append(
            Chain(
                f"c{c}",
                ingress,
                egress,
                chain_vnfs,
                rng.uniform(0.5, 10.0),
                rng.uniform(0.0, 2.0),
            )
        )
    return NetworkModel(nodes, latency, sites, vnfs, chains)


@settings(max_examples=40, deadline=None)
@given(random_model())
def test_dp_solution_always_feasible(model):
    result = route_chains_dp(model)
    assert not result.solution.violations(tol=TOL)


@settings(max_examples=40, deadline=None)
@given(random_model())
def test_dp_routed_plus_unrouted_is_one(model):
    result = route_chains_dp(model)
    for name in model.chains:
        routed = result.solution.routed_fraction(name)
        remainder = result.unrouted.get(name, 0.0)
        assert abs(routed + remainder - 1.0) < 1e-6


@settings(max_examples=40, deadline=None)
@given(random_model())
def test_dp_ablations_also_feasible(model):
    for config in (DpConfig.latency_only(), DpConfig.one_hop()):
        result = route_chains_dp(model, config)
        assert not result.solution.violations(tol=TOL)


@settings(max_examples=25, deadline=None)
@given(random_model())
def test_lp_max_throughput_dominates_all_schemes(model):
    lp = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    if not lp.ok:
        return
    best = lp.solution.throughput()
    for scheme_solution in (
        route_chains_dp(model).solution,
        scale_to_capacity(route_anycast(model)),
        scale_to_capacity(route_compute_aware(model)),
    ):
        assert scheme_solution.throughput() <= best + TOL * max(1.0, best)


@settings(max_examples=25, deadline=None)
@given(random_model())
def test_lp_min_latency_dominates_when_feasible(model):
    lp = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
    if not lp.ok:
        return
    dp = route_chains_dp(model)
    if not dp.fully_routed:
        return
    assert lp.objective <= dp.solution.total_weighted_latency() + TOL * max(
        1.0, lp.objective
    )


@settings(max_examples=40, deadline=None)
@given(random_model())
def test_scaled_anycast_always_feasible(model):
    carried = scale_to_capacity(route_anycast(model))
    assert not carried.violations(tol=TOL)


@settings(max_examples=40, deadline=None)
@given(random_model())
def test_compute_aware_respects_compute(model):
    solution = route_compute_aware(model)
    problems = [
        p for p in solution.violations(tol=TOL) if "overloaded" in p
    ]
    assert not problems


@settings(max_examples=40, deadline=None)
@given(random_model())
def test_lp_solution_validates(model):
    lp = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    if lp.ok:
        assert not lp.solution.violations(tol=1e-4)
