"""Tests for the solver farm: caching, incremental re-solve, pool path,
fallbacks, and the GlobalSwitchboard wiring."""

import pytest

from repro.core.lp import LpObjective, LpResult, solve_chain_routing_lp
from repro.obs import MetricsRegistry
from repro.scale import (
    FarmResult,
    MonolithicSolver,
    SolutionCache,
    SolverFarm,
)
from tests.test_scale_partition import clustered_model, coupled_model


def scale_demand(model, name, factor):
    chain = model.chains[name]
    model.remove_chain(name)
    model.add_chain(chain.scaled(factor))


class TestFarmSolve:
    def test_exact_partitioning_matches_monolithic(self):
        model = clustered_model(3)
        mono = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
        farm = SolverFarm(partition_size=1, max_workers=1)
        result = farm.solve(model, LpObjective.MIN_LATENCY)
        assert result.ok and result.exact
        assert result.objective == pytest.approx(mono.objective, rel=1e-6)
        assert result.solution.throughput() == pytest.approx(
            mono.solution.throughput(), rel=1e-6
        )
        result.solution.validate()

    def test_split_solution_is_feasible(self):
        model = coupled_model(6, demands=[1, 2, 3, 4, 5, 6], bandwidth=100.0)
        farm = SolverFarm(partition_size=2, max_workers=1)
        result = farm.solve(model)
        assert result.ok and not result.exact
        assert result.solution.violations() == []

    def test_repeat_solve_served_from_cache(self):
        registry = MetricsRegistry()
        model = clustered_model(3)
        farm = SolverFarm(partition_size=1, max_workers=1, metrics=registry)
        first = farm.solve(model)
        second = farm.solve(model)
        assert first.cache_hits == 0 and len(first.solved) == 3
        assert second.cache_hits == 3 and len(second.solved) == 0
        assert registry.value("scale.cache.hits") == 3
        assert registry.value("scale.cache.misses") == 3
        assert second.objective == pytest.approx(first.objective)

    def test_objective_is_part_of_cache_key(self):
        farm = SolverFarm(partition_size=1, max_workers=1)
        model = clustered_model(2)
        farm.solve(model, LpObjective.MIN_LATENCY)
        result = farm.solve(model, LpObjective.MAX_THROUGHPUT)
        assert result.cache_hits == 0

    def test_shared_cache_across_farms(self):
        cache = SolutionCache()
        model = clustered_model(2)
        SolverFarm(partition_size=1, max_workers=1, cache=cache).solve(model)
        result = SolverFarm(
            partition_size=1, max_workers=1, cache=cache
        ).solve(model)
        assert result.cache_hits == 2


class TestIncrementalResolve:
    def test_only_changed_partition_resolves(self):
        registry = MetricsRegistry()
        model = clustered_model(4)
        farm = SolverFarm(partition_size=1, max_workers=1, metrics=registry)
        farm.solve(model)
        before = registry.value("scale.partition_solves")
        scale_demand(model, "c2", 1.5)
        result = farm.resolve(model, ["c2"])
        assert registry.value("scale.partition_solves") - before == 1
        assert len(result.solved) == 1
        assert result.cache_hits == 3

    def test_resolved_solution_reflects_new_demand(self):
        model = clustered_model(3)
        farm = SolverFarm(partition_size=1, max_workers=1)
        farm.solve(model)
        scale_demand(model, "c1", 2.0)
        result = farm.resolve(model, ["c1"])
        mono = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert result.solution.throughput() == pytest.approx(
            mono.solution.throughput(), rel=1e-6
        )

    def test_resolve_without_plan_falls_back_to_solve(self):
        model = clustered_model(2)
        farm = SolverFarm(partition_size=1, max_workers=1)
        result = farm.resolve(model, ["c0"])
        assert result.ok
        assert len(result.solved) == 2

    def test_resolve_after_chain_set_change_replans(self):
        model = clustered_model(2)
        farm = SolverFarm(partition_size=1, max_workers=1)
        farm.solve(model)
        grown = clustered_model(3)
        result = farm.resolve(grown, ["c2"])
        assert result.ok
        assert len(result.solved) == 3  # full re-plan, no stale cache use

    def test_resolve_after_substrate_edit_replans(self):
        # Regression: ``fail_link``/``restore_link`` mutate latencies in
        # place and call ``invalidate_substrate()`` -- the chain set is
        # unchanged, but the stored partition plan (shares, pre-route)
        # was computed against the old substrate and must not be reused.
        model = clustered_model(3)
        farm = SolverFarm(partition_size=1, max_workers=1)
        first = farm.solve(model, LpObjective.MIN_LATENCY)
        plan_before = farm.plan
        # Degrade cluster 0's b0-c0 link the way fail_link does.
        model._latency[("b0", "c0")] = 100.0
        model.invalidate_substrate()
        assert not plan_before.compatible_with(model)
        result = farm.resolve(model, [], LpObjective.MIN_LATENCY)
        assert farm.plan is not plan_before  # plan was rebuilt
        assert result.ok
        # The detour through site A (latency 30) replaces the broken
        # a0->b0->c0 path (latency 25), so the optimum strictly worsens.
        assert result.objective > first.objective + 1.0
        # Restoring the exact pre-edit latency makes the substrate
        # digest match again and the re-plan converges back.
        model._latency[("b0", "c0")] = 15.0
        model.invalidate_substrate()
        restored = farm.resolve(model, [], LpObjective.MIN_LATENCY)
        assert restored.ok
        assert restored.objective == pytest.approx(first.objective, rel=1e-6)


class TestPoolAndFallback:
    def test_pool_matches_serial(self):
        model = clustered_model(3)
        serial = SolverFarm(partition_size=1, max_workers=1).solve(model)
        try:
            pooled = SolverFarm(partition_size=1, max_workers=2).solve(model)
        except Exception as exc:  # pragma: no cover - sandboxed CI
            pytest.skip(f"process pool unavailable: {exc}")
        assert pooled.objective == pytest.approx(serial.objective, rel=1e-6)
        assert pooled.solution.throughput() == pytest.approx(
            serial.solution.throughput(), rel=1e-6
        )

    def test_infeasible_partition_falls_back_to_monolithic(self):
        registry = MetricsRegistry()
        # MIN_LATENCY must route everything; demand 40 > capacity 20.
        model = coupled_model(2, demands=[20.0, 20.0], fw_cap=20.0)
        farm = SolverFarm(partition_size=1, max_workers=1, metrics=registry)
        result = farm.solve(model, LpObjective.MIN_LATENCY)
        assert result.fallback
        assert result.status == "infeasible"
        assert registry.value("scale.fallbacks") == 1

    def test_failed_results_not_cached(self):
        model = coupled_model(2, demands=[20.0, 20.0], fw_cap=20.0)
        farm = SolverFarm(partition_size=1, max_workers=1)
        farm.solve(model, LpObjective.MIN_LATENCY)
        assert len(farm.cache) == 0


class TestMonolithicSolver:
    def test_matches_direct_lp(self):
        model = clustered_model(2)
        direct = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        solver = MonolithicSolver()
        result = solver.solve(model)
        assert isinstance(result, LpResult)
        assert result.objective == pytest.approx(direct.objective)

    def test_resolve_is_full_solve(self):
        model = clustered_model(2)
        solver = MonolithicSolver()
        full = solver.solve(model)
        incremental = solver.resolve(model, ["c0"])
        assert incremental.objective == pytest.approx(full.objective)


class TestSwitchboardWiring:
    def build(self, solver=None):
        from tests.test_failures import build_deployment

        gs, _service, _ingress, _egress = build_deployment()
        gs.solver = solver
        return gs

    def test_default_plan_routes_is_direct_lp(self):
        from tests.test_failures import spec

        gs = self.build()
        gs.create_chain(spec("c1", demand=5.0))
        plan = gs.plan_routes()
        direct = solve_chain_routing_lp(gs.model, LpObjective.MAX_THROUGHPUT)
        assert isinstance(plan, LpResult)
        assert plan.objective == pytest.approx(direct.objective)

    def test_solver_strategy_dispatch(self):
        from tests.test_failures import spec

        farm = SolverFarm(partition_size=1, max_workers=1)
        gs = self.build(solver=farm)
        gs.create_chain(spec("c1", demand=5.0))
        plan = gs.plan_routes()
        assert isinstance(plan, FarmResult)
        assert plan.ok

    def test_reoptimize_attaches_incremental_plan(self):
        from repro.controller import reoptimize
        from tests.test_failures import spec

        farm = SolverFarm(partition_size=1, max_workers=1)
        gs = self.build(solver=farm)
        gs.create_chain(spec("c1", demand=5.0))
        gs.create_chain(spec("c2", demand=4.0, dst="20.0.1.0/24"))
        gs.plan_routes()  # warm the cache with the pre-change demands
        report = reoptimize(gs, {"c1": 2.0, "c2": 1.0})
        assert report.plan is not None
        assert report.plan.ok
        # Only c1's partition re-solved; c2's came from the cache.
        assert report.plan.cache_hits >= 1
        assert report.plan.solution.throughput() == pytest.approx(
            gs.model.total_demand()
        )

    def test_reoptimize_without_solver_has_no_plan(self):
        from repro.controller import reoptimize
        from tests.test_failures import spec

        gs = self.build()
        gs.create_chain(spec("c1", demand=5.0))
        report = reoptimize(gs, {"c1": 2.0})
        assert report.plan is None
