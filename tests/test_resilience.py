"""Tests for install deadlines, abort rollback, 2PC fan-out fixes,
pending-install lifecycle, and the reconciliation sweeper."""

import random

import pytest

from repro.bus.bus import make_bus
from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.protocol import BusDrivenInstaller
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane
from repro.edge import EdgeController, EdgeInstance
from repro.resilience import (
    DeadlineManager,
    ReconciliationSweeper,
    ResilienceConfig,
    RpcConfig,
    RpcError,
)
from repro.simnet.events import Simulator
from repro.vnf import VnfService

SITES = ["A", "B", "C"]


def build(fw_cap_b=40.0, nat_service_cap_c=None, seed=11):
    """Three-site deployment with a fw VNF at B and, optionally, a nat
    VNF whose *service* capacity at C differs from the model's view
    (the model stays optimistic at 40 so routing succeeds and the
    prepare is what rejects)."""
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [CloudSite(s, s.lower(), 100.0) for s in SITES]
    vnfs = [VNF("fw", 1.0, {"B": fw_cap_b})]
    if nat_service_cap_c is not None:
        vnfs.append(VNF("nat", 1.0, {"C": 40.0}))
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(seed))
    gs = GlobalSwitchboard(model, dp)
    for site in SITES:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, {"B": fw_cap_b}))
    if nat_service_cap_c is not None:
        gs.register_vnf_service(
            VnfService("nat", 1.0, {"C": nat_service_cap_c})
        )
    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(ingress)
    edge.register_instance(egress)
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    return gs


def make_installer(gs, vnf_sites=None, resilience=None, store=None):
    bus = make_bus(SITES, wan_delay_s=0.030, uplink_bps=100e6)
    return BusDrivenInstaller(
        gs,
        bus,
        gs_site="A",
        edge_controller_site="A",
        vnf_controller_sites=vnf_sites or {"fw": "B"},
        resilience=resilience,
        store=store,
    )


def spec(name="corp", demand=5.0, vnfs=("fw",), prefix="20.0.0.0/24"):
    return ChainSpecification(
        name, "vpn", "in", "out", list(vnfs),
        forward_demand=demand,
        src_prefix="10.0.0.0/24",
        dst_prefixes=[prefix],
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"install_deadline_s": 0.0},
            {"install_deadline_s": -1.0},
            {"redrive_interval_s": 0.0},
            {"sweep_interval_s": -0.5},
        ],
    )
    def test_invalid_resilience_config_rejected(self, kwargs):
        with pytest.raises(RpcError):
            ResilienceConfig(**kwargs)


class TestDeadlineManager:
    def test_arm_fires_and_disarm_prevents(self):
        sim = Simulator()
        dm = DeadlineManager(sim)
        fired = []
        dm.arm("a", 1.0, fired.append)
        dm.arm("b", 1.0, fired.append)
        assert dm.disarm("b") is True
        assert dm.disarm("missing") is False
        sim.run()
        assert fired == ["a"]
        assert dm.active() == []

    def test_rearm_replaces_existing_deadline(self):
        sim = Simulator()
        dm = DeadlineManager(sim)
        fired = []
        dm.arm("a", 1.0, lambda key: fired.append((key, sim.now)))
        dm.arm("a", 3.0, lambda key: fired.append((key, sim.now)))
        sim.run()
        assert fired == [("a", 3.0)]


class TestAbortFanOut:
    def test_rejection_aborts_participants_that_already_acked(self):
        """Regression: a 2PC rejection must release the reservations of
        VNFs that *acked* their prepare, not only the un-acked ones.
        The nat service's real capacity (0) rejects every prepare, so
        the install fails -- and fw@B, which acked round 0, must not be
        left holding its reservation."""
        gs = build(nat_service_cap_c=0.0)
        installer = make_installer(gs, vnf_sites={"fw": "B", "nat": "C"})
        timeline = installer.install(spec(vnfs=("fw", "nat")))
        installer.network.run()
        assert timeline.failed is not None
        assert installer._pending == {}
        for service in gs.vnf_services.values():
            assert service.pending_reservations() == 0
            for site in service.sites:
                assert service.committed(site) == pytest.approx(0.0)
        assert "corp" not in gs.model.chains
        assert "corp" not in gs.installations

    def test_rejection_retry_leaves_no_orphaned_reservation(self):
        """A rejection followed by a successful reduced-capacity retry:
        the final ledger must match the installation exactly -- the
        aborted round's reservations must not linger at fw@B."""
        gs = build(nat_service_cap_c=2.0)
        installer = make_installer(gs, vnf_sites={"fw": "B", "nat": "C"})
        timeline = installer.install(spec(vnfs=("fw", "nat")))
        installer.network.run()
        assert timeline.failed is None
        assert timeline.completed_at is not None
        assert installer._pending == {}
        installation = gs.installations["corp"]
        for service in gs.vnf_services.values():
            assert service.pending_reservations() == 0
            for site in service.sites:
                owned = installation.committed_load.get(
                    (service.name, site), 0.0
                )
                assert service.committed(site) == pytest.approx(owned)


class TestPendingLifecycle:
    def test_hundred_installs_leave_no_pending_state(self):
        """_complete/_fail are symmetric: both pop the pending entry
        and invoke on_complete, so back-to-back installs cannot grow
        ``_pending`` without bound."""
        gs = build()
        installer = make_installer(gs)
        done = []
        timelines = []
        for i in range(100):
            timelines.append(
                installer.install(
                    spec(f"c{i}", demand=0.2, prefix=f"20.0.{i}.0/24"),
                    on_complete=done.append,
                )
            )
        installer.network.run()
        assert installer._pending == {}
        assert len(done) == 100
        assert all(t.completed_at is not None for t in timelines)
        assert {t.installation.spec.name for t in done} == {
            f"c{i}" for i in range(100)
        }

    def test_failed_install_also_invokes_on_complete(self):
        # nat's real capacity is 0, so every 2PC round rejects and the
        # install fails -- on_complete must fire exactly as on success.
        gs = build(nat_service_cap_c=0.0)
        installer = make_installer(gs, vnf_sites={"fw": "B", "nat": "C"})
        done = []
        timeline = installer.install(
            spec(vnfs=("fw", "nat")), on_complete=done.append
        )
        installer.network.run()
        assert timeline.failed is not None
        assert done == [timeline]
        assert installer._pending == {}


class TestDeadlineAbort:
    def test_unreachable_vnf_controller_triggers_deadline_rollback(self):
        """With retransmits that outlast the deadline, the deadline is
        what aborts: full rollback, failed timeline, released labels."""
        gs = build()
        resilience = ResilienceConfig(
            rpc=RpcConfig(timeout_s=0.25, max_retries=20),
            install_deadline_s=1.0,
        )
        installer = make_installer(gs, resilience=resilience)
        installer.network.crash_host("ctrl.vnf.fw")
        timeline = installer.install(spec())
        installer.network.run()
        assert timeline.failed == "installation deadline expired"
        assert installer.deadline_aborts == 1
        assert installer._pending == {}
        service = gs.vnf_services["fw"]
        assert service.pending_reservations() == 0
        assert service.committed("B") == pytest.approx(0.0)
        assert "corp" not in gs.model.chains
        assert "corp" not in gs.installations
        # The label was released: a follow-up install can reuse it.
        assert gs.labels.allocate("probe") >= 1

    def test_rpc_give_up_aborts_before_hanging(self):
        """With few retries, the RPC gives up first and the install is
        aborted immediately instead of waiting out the deadline."""
        gs = build()
        resilience = ResilienceConfig(
            rpc=RpcConfig(timeout_s=0.1, max_retries=2, jitter=0.0),
            install_deadline_s=30.0,
        )
        installer = make_installer(gs, resilience=resilience)
        installer.network.crash_host("ctrl.vnf.fw")
        timeline = installer.install(spec())
        installer.network.run()
        assert timeline.failed is not None
        assert "gave up" in timeline.failed
        assert installer._pending == {}


class TestEpochFencing:
    def test_teardown_fences_late_commit(self):
        gs = build()
        installer = make_installer(gs)
        service = gs.vnf_services["fw"]
        receive = installer._vnf_rpc["fw"].handler
        receive("ctrl.gs", {"type": "prepare", "chain": "x", "vnf": "fw",
                            "site": "B", "load": 5.0, "attempt": 0})
        assert service.pending_reservations() == 1
        receive("ctrl.gs", {"type": "teardown", "chain": "x", "vnf": "fw",
                            "site": "B", "attempt": 1 << 30})
        assert service.pending_reservations() == 0
        # A straggler commit of the old round must not resurrect it.
        receive("ctrl.gs", {"type": "commit", "chain": "x", "vnf": "fw",
                            "site": "B", "attempt": 0})
        assert service.committed("B") == pytest.approx(0.0)

    def test_newer_prepare_supersedes_stale_reservation(self):
        gs = build()
        installer = make_installer(gs)
        service = gs.vnf_services["fw"]
        receive = installer._vnf_rpc["fw"].handler
        receive("ctrl.gs", {"type": "prepare", "chain": "x", "vnf": "fw",
                            "site": "B", "load": 30.0, "attempt": 0})
        receive("ctrl.gs", {"type": "prepare", "chain": "x", "vnf": "fw",
                            "site": "B", "load": 5.0, "attempt": 1})
        # The round-0 reservation was replaced, not accumulated.
        assert service.available("B") == pytest.approx(35.0)
        # And the round-0 abort arriving late is a no-op now.
        receive("ctrl.gs", {"type": "abort", "chain": "x", "vnf": "fw",
                            "site": "B", "attempt": 0})
        assert service.available("B") == pytest.approx(35.0)


class TestSweeper:
    def test_sweep_releases_orphaned_participant_state(self):
        gs = build()
        installer = make_installer(gs)
        service = gs.vnf_services["fw"]
        # An orphaned reservation and an orphaned commitment: no
        # pending install and no installation owns either.
        service.prepare("ghost", "B", 3.0)
        service.prepare("ghost2", "B", 4.0)
        service.commit("ghost2", "B")
        sweeper = ReconciliationSweeper(installer)
        released = sweeper.sweep()
        assert released == 2
        assert service.pending_reservations() == 0
        assert service.committed("B") == pytest.approx(0.0)
        assert sweeper.stale_reservations_released == 2

    def test_sweep_keeps_installed_chain_state(self):
        gs = build()
        installer = make_installer(gs)
        timeline = installer.install(spec())
        installer.network.run()
        assert timeline.completed_at is not None
        service = gs.vnf_services["fw"]
        before = service.committed("B")
        assert before > 0
        sweeper = ReconciliationSweeper(installer)
        assert sweeper.sweep() == 0
        assert service.committed("B") == pytest.approx(before)

    def test_sweep_aborts_stalled_install(self):
        """Simulates lost deadline-timer state (e.g. across a failover):
        the sweeper is the backstop that aborts past 2x the deadline."""
        gs = build()
        resilience = ResilienceConfig(
            rpc=RpcConfig(timeout_s=0.25, max_retries=30),
            install_deadline_s=2.0,
        )
        installer = make_installer(gs, resilience=resilience)
        installer.network.crash_host("ctrl.vnf.fw")
        timeline = installer.install(spec())
        # Drop the deadline timer, as if the coordinator restarted
        # without re-arming it.
        installer.sim.schedule(
            0.05, installer.deadlines.disarm, "corp"
        )
        sweeper = ReconciliationSweeper(installer, interval_s=1.0)
        sweeper.start(until=10.0)
        installer.network.run()
        assert timeline.failed == "swept: install stalled"
        assert sweeper.stalled_installs_aborted == 1
        assert installer._pending == {}
