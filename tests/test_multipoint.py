"""Tests for multi-ingress / multi-egress chains."""

import pytest

from repro.core.dp import route_chains_dp
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.core.multipoint import (
    MultipointChain,
    MultipointError,
    summarize_multipoint,
)


def multipoint(ingresses=None, egresses=None, demand=6.0):
    return MultipointChain(
        "corp",
        ingresses or {"a": 0.5, "b": 0.5},
        egresses or {"c": 1.0},
        ["fw"],
        forward_demand=demand,
        reverse_demand=demand / 3,
    )


def make_model(chains, fw_caps=None):
    fw_caps = fw_caps or {"A": 100.0, "B": 100.0}
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [CloudSite("A", "a", 1000.0), CloudSite("B", "b", 1000.0)]
    vnfs = [VNF("fw", 1.0, dict(fw_caps))]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


class TestExpansion:
    def test_pairs_and_demand_split(self):
        chain = multipoint()
        subs = chain.expand()
        assert [c.name for c in subs] == ["corp@a>c", "corp@b>c"]
        assert [c.forward_traffic[0] for c in subs] == pytest.approx(
            [3.0, 3.0]
        )
        assert [c.reverse_traffic[0] for c in subs] == pytest.approx(
            [1.0, 1.0]
        )

    def test_full_mesh_excludes_self_pairs(self):
        chain = MultipointChain(
            "mesh",
            {"a": 0.5, "b": 0.5},
            {"a": 0.5, "b": 0.5},
            ["fw"],
            forward_demand=8.0,
        )
        subs = chain.expand()
        assert [c.name for c in subs] == ["mesh@a>b", "mesh@b>a"]
        # Each ingress renormalizes over the other egress only.
        assert all(
            c.forward_traffic[0] == pytest.approx(4.0) for c in subs
        )

    def test_asymmetric_shares(self):
        chain = MultipointChain(
            "hub",
            {"a": 0.75, "b": 0.25},
            {"c": 1.0},
            ["fw"],
            forward_demand=8.0,
        )
        subs = {c.name: c for c in chain.expand()}
        assert subs["hub@a>c"].forward_traffic[0] == pytest.approx(6.0)
        assert subs["hub@b>c"].forward_traffic[0] == pytest.approx(2.0)

    def test_total_demand_preserved(self):
        chain = MultipointChain(
            "m",
            {"a": 0.3, "b": 0.7},
            {"b": 0.4, "c": 0.6},
            ["fw"],
            forward_demand=10.0,
        )
        subs = chain.expand()
        assert sum(c.forward_traffic[0] for c in subs) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(MultipointError):
            MultipointChain("x", {}, {"c": 1.0}, ["fw"], 1.0)
        with pytest.raises(MultipointError):
            MultipointChain("x", {"a": 0.6}, {"c": 1.0}, ["fw"], 1.0)
        with pytest.raises(MultipointError):
            MultipointChain("x", {"a": 1.0}, {"a": 1.0}, ["fw"], 1.0)
        with pytest.raises(MultipointError):
            MultipointChain("x", {"a": 1.0}, {"c": 1.0}, ["fw"], -1.0)


class TestRouting:
    def test_sub_chains_route_jointly(self):
        chain = multipoint()
        model = make_model(chain.expand())
        result = route_chains_dp(model)
        assert result.fully_routed
        summary = summarize_multipoint(chain, result.solution)
        assert summary.carried_fraction == pytest.approx(1.0)
        assert summary.pair_fractions == {
            ("a", "c"): pytest.approx(1.0),
            ("b", "c"): pytest.approx(1.0),
        }

    def test_pairs_share_vnf_capacity(self):
        # fw capacity fits only half the total multipoint demand.
        chain = multipoint(demand=12.0)
        # Per pair: forward 6 + reverse 2 -> load 16; both pairs 32.
        model = make_model(chain.expand(), fw_caps={"A": 8.0, "B": 8.0})
        result = route_chains_dp(model)
        summary = summarize_multipoint(chain, result.solution)
        assert summary.carried_fraction == pytest.approx(0.5, abs=0.01)

    def test_lp_routes_multipoint(self):
        chain = multipoint()
        model = make_model(chain.expand())
        result = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
        assert result.ok
        summary = summarize_multipoint(chain, result.solution)
        assert summary.carried_fraction == pytest.approx(1.0)
        assert summary.mean_latency_ms < 40.0

    def test_summary_requires_routed_model(self):
        chain = multipoint()
        other_model = make_model([])
        from repro.core.routes import RoutingSolution

        with pytest.raises(MultipointError):
            summarize_multipoint(chain, RoutingSolution(other_model))

    def test_each_pair_takes_its_own_best_route(self):
        # Ingress a is nearest A; ingress b is nearest B -- with ample
        # capacity each pair should use its local firewall.
        chain = multipoint()
        model = make_model(chain.expand())
        result = route_chains_dp(model)
        flows_a = result.solution.stage_flows("corp@a>c", 1)
        flows_b = result.solution.stage_flows("corp@b>c", 1)
        assert ("a", "B") in flows_a  # via B: 10 + 15 beats 0 + 30
        assert ("b", "B") in flows_b
