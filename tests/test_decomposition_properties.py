"""Property tests for flow decomposition: decompose -> recompose identity."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dp import route_chains_dp
from repro.core.model import Chain, CloudSite, NetworkModel, VNF
from repro.core.routes import RoutingSolution
from repro.dataplane.evaluation import decompose_paths

TOL = 1e-6


@st.composite
def solved_model(draw):
    """A random multi-site model routed by SB-DP (may include splits)."""
    rng = random.Random(draw(st.integers(0, 100_000)))
    nodes = [f"n{i}" for i in range(draw(st.integers(3, 5)))]
    coords = {n: (rng.uniform(0, 40), rng.uniform(0, 40)) for n in nodes}
    latency = {}
    for i, n1 in enumerate(nodes):
        for n2 in nodes[i + 1:]:
            (x1, y1), (x2, y2) = coords[n1], coords[n2]
            latency[(n1, n2)] = ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5 + 0.5
    sites = [CloudSite(f"S{i}", n, rng.uniform(10, 60)) for i, n in enumerate(nodes)]
    num_vnfs = draw(st.integers(1, 3))
    vnfs = []
    for v in range(num_vnfs):
        deployments = rng.sample(sites, rng.randint(1, len(sites)))
        vnfs.append(
            VNF(f"f{v}", rng.uniform(0.5, 1.5),
                {s.name: rng.uniform(3, 20) for s in deployments})
        )
    chains = []
    for c in range(draw(st.integers(1, 3))):
        ingress, egress = rng.sample(nodes, 2)
        length = rng.randint(1, num_vnfs)
        chains.append(
            Chain(
                f"c{c}", ingress, egress,
                [f"f{v}" for v in sorted(rng.sample(range(num_vnfs), length))],
                rng.uniform(0.5, 6.0),
                rng.uniform(0.0, 1.5),
            )
        )
    model = NetworkModel(nodes, latency, sites, vnfs, chains)
    return model, route_chains_dp(model).solution


@settings(max_examples=50, deadline=None)
@given(solved_model())
def test_decomposition_reconstructs_stage_flows(case):
    model, solution = case
    for chain_name, chain in model.chains.items():
        paths = decompose_paths(solution, chain_name)
        rebuilt = RoutingSolution(model)
        for path in paths:
            rebuilt.add_path(chain_name, list(path.sites), path.fraction)
        for z in range(1, chain.num_stages + 1):
            original = solution.stage_flows(chain_name, z)
            recomposed = rebuilt.stage_flows(chain_name, z)
            keys = set(original) | set(recomposed)
            for key in keys:
                assert original.get(key, 0.0) == pytest.approx(
                    recomposed.get(key, 0.0), abs=1e-6
                )


@settings(max_examples=50, deadline=None)
@given(solved_model())
def test_decomposed_fractions_are_positive_and_bounded(case):
    model, solution = case
    for chain_name in model.chains:
        paths = decompose_paths(solution, chain_name)
        total = sum(p.fraction for p in paths)
        assert total <= 1.0 + 1e-6
        for path in paths:
            assert path.fraction > 0
            # Path structure: ingress, one site per VNF, egress.
            chain = model.chains[chain_name]
            assert len(path.sites) == len(chain.vnfs) + 2
            assert path.sites[0] == chain.ingress
            assert path.sites[-1] == chain.egress


@settings(max_examples=50, deadline=None)
@given(solved_model())
def test_decomposed_paths_respect_vnf_deployments(case):
    model, solution = case
    for chain_name, chain in model.chains.items():
        for path in decompose_paths(solution, chain_name):
            for position, site in enumerate(path.sites[1:-1], start=1):
                vnf = chain.vnf_at(position)
                assert site in model.vnfs[vnf].site_capacity
