"""Integration tests for the Global/Local Switchboard control plane."""

import random

import pytest

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    InstallationError,
    LocalSwitchboard,
)
from repro.controller.timing import (
    PAPER_ROUTE_UPDATE_MS,
    PAPER_TABLE2_MS,
    simulate_chain_route_update,
    simulate_edge_site_addition,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import StatefulFirewall, VnfService


def build_deployment(fw_cap_a=40.0, fw_cap_b=40.0):
    """A three-site deployment with a firewall service at A and B."""
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", 100.0),
        CloudSite("B", "b", 100.0),
        CloudSite("C", "c", 100.0),
    ]
    vnfs = [VNF("firewall", 1.0, {"A": fw_cap_a, "B": fw_cap_b})]
    model = NetworkModel(nodes, latency, sites, vnfs)

    dp = DataPlane(random.Random(11))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B", "C"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))

    service = VnfService(
        "firewall",
        1.0,
        {"A": fw_cap_a, "B": fw_cap_b},
        instance_factory=lambda n, s: StatefulFirewall(default_allow=True),
    )
    gs.register_vnf_service(service)

    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(ingress)
    edge.register_instance(egress)
    edge.register_attachment("office-1", "A")
    edge.register_attachment("office-2", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    return gs, dp, service, edge, ingress, egress


def spec(name="corp", demand=5.0, dst="20.0.0.0/24"):
    return ChainSpecification(
        name,
        "vpn",
        "office-1",
        "office-2",
        ["firewall"],
        forward_demand=demand,
        reverse_demand=demand / 5,
        src_prefix="10.0.0.0/24",
        dst_prefixes=[dst],
    )


def send_packet(ingress, i=0):
    packet = Packet(FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1000 + i, 80))
    ingress.ingress(packet)
    return packet


class TestChainCreation:
    def test_create_chain_routes_fully(self):
        gs, *_ = build_deployment()
        installation = gs.create_chain(spec())
        assert installation.routed_fraction == pytest.approx(1.0)
        assert installation.ingress_site == "A"
        assert installation.egress_site == "C"

    def test_capacity_committed_at_vnf_service(self):
        gs, _dp, service, *_ = build_deployment()
        installation = gs.create_chain(spec(demand=5.0))
        total = sum(installation.committed_load.values())
        # load = l_f * (w+v) * 2 directions of traversal = 1*(6)*2 = 12.
        assert total == pytest.approx(12.0)
        committed = service.committed("A") + service.committed("B")
        assert committed == pytest.approx(total)

    def test_labels_allocated_per_chain(self):
        gs, *_ = build_deployment()
        l1 = gs.create_chain(spec("c1", dst="20.0.0.0/24")).label
        l2 = gs.create_chain(spec("c2", dst="20.0.1.0/24")).label
        assert l1 != l2

    def test_packets_flow_after_installation(self):
        gs, _dp, _svc, _edge, ingress, egress = build_deployment()
        gs.create_chain(spec())
        packet = send_packet(ingress)
        assert egress.delivered
        assert any("firewall" in e for e in packet.trace)

    def test_reverse_path_flows(self):
        gs, _dp, _svc, _edge, ingress, egress = build_deployment()
        gs.create_chain(spec())
        send_packet(ingress)
        rev = Packet(FiveTuple("20.0.0.9", "10.0.0.5", "tcp", 80, 1000))
        egress.send_reverse(rev)
        assert rev.trace[-1] == "edge.A"

    def test_unknown_edge_service_rejected(self):
        gs, *_ = build_deployment()
        bad = ChainSpecification(
            "x", "ghost", "office-1", "office-2", ["firewall"]
        )
        with pytest.raises(InstallationError):
            gs.create_chain(bad)

    def test_unknown_vnf_service_rejected(self):
        gs, *_ = build_deployment()
        bad = ChainSpecification("x", "vpn", "office-1", "office-2", ["ghost"])
        with pytest.raises(InstallationError):
            gs.create_chain(bad)

    def test_oversized_chain_admitted_partially(self):
        gs, *_ = build_deployment(fw_cap_a=10.0, fw_cap_b=10.0)
        installation = gs.create_chain(spec(demand=100.0))
        # Total firewall capacity 20 load units; the chain needs
        # 2 * (100 + 20) = 240 -> about 8.3% is admitted.
        assert installation.routed_fraction == pytest.approx(
            20.0 / 240.0, rel=0.01
        )

    def test_failed_install_rolls_back_model(self):
        gs, *_ = build_deployment(fw_cap_a=0.0, fw_cap_b=0.0)
        with pytest.raises(InstallationError):
            gs.create_chain(spec(demand=5.0))
        assert "corp" not in gs.model.chains
        assert "corp" not in gs.installations


class TestTwoPhaseCommit:
    def test_rejection_triggers_recompute_at_other_site(self):
        gs, _dp, service, *_ = build_deployment(fw_cap_a=100.0, fw_cap_b=100.0)
        # The model believes B has capacity, but the VNF controller has
        # (out of band) given most of it away: prepare() will reject.
        service.prepare("tenant-x", "B", 95.0)
        service.commit("tenant-x", "B")
        installation = gs.create_chain(spec(demand=5.0))
        assert installation.routed_fraction == pytest.approx(1.0)
        # Committed at A, since B rejected.
        assert ("firewall", "A") in installation.committed_load

    def test_no_reservations_leak_after_failure(self):
        gs, _dp, service, *_ = build_deployment(fw_cap_a=0.0, fw_cap_b=0.0)
        with pytest.raises(InstallationError):
            gs.create_chain(spec(demand=5.0))
        assert service.pending_reservations() == 0

    def test_no_reservations_leak_after_success(self):
        gs, _dp, service, *_ = build_deployment()
        gs.create_chain(spec())
        assert service.pending_reservations() == 0

    def test_capacity_restored_after_chain_removal(self):
        gs, *_ = build_deployment(fw_cap_a=10.0, fw_cap_b=10.0)
        big = gs.create_chain(spec("big", demand=100.0, dst="20.0.0.0/24"))
        assert big.routed_fraction < 1.0  # consumed all capacity
        gs.remove_chain("big")
        ok = gs.create_chain(spec("small", demand=2.0, dst="20.0.1.0/24"))
        assert ok.routed_fraction == pytest.approx(1.0)


class TestDynamicChaining:
    def test_extend_chain_after_capacity_growth(self):
        """The Figure 10 scenario: a route limited by one site's capacity
        doubles its throughput when a new route via another site opens."""
        gs, _dp, service, *_ = build_deployment(fw_cap_a=12.0, fw_cap_b=0.0)
        installation = gs.create_chain(spec(demand=10.0))
        first = installation.routed_fraction
        assert first < 1.0  # A alone cannot carry the chain

        # Site B's firewall comes online with fresh capacity.
        gs.model.vnfs["firewall"] = VNF(
            "firewall", 1.0, {"A": 12.0, "B": 12.0}
        )
        service.site_capacity["B"] = 12.0
        service._committed.setdefault("B", 0.0)
        gained = gs.extend_chain("corp")
        assert gained > 0
        assert installation.routed_fraction == pytest.approx(2 * first, rel=0.01)

    def test_extend_noop_when_fully_routed(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec())
        assert gs.extend_chain("corp") == 0.0

    def test_existing_flows_keep_route_after_extension(self):
        gs, _dp, service, _edge, ingress, _egress = build_deployment(
            fw_cap_a=12.0, fw_cap_b=0.0
        )
        gs.create_chain(spec(demand=10.0))
        packet_before = send_packet(ingress, 1)
        route_before = [e for e in packet_before.trace if "firewall" in e]
        gs.model.vnfs["firewall"] = VNF("firewall", 1.0, {"A": 12.0, "B": 12.0})
        service.site_capacity["B"] = 12.0
        service._committed.setdefault("B", 0.0)
        gs.extend_chain("corp")
        packet_after = send_packet(ingress, 1)  # same five-tuple
        assert [e for e in packet_after.trace if "firewall" in e] == route_before

    def test_remove_chain_releases_everything(self):
        gs, _dp, service, *_ = build_deployment()
        gs.create_chain(spec())
        gs.remove_chain("corp")
        assert service.committed("A") + service.committed("B") == 0.0
        assert "corp" not in gs.model.chains
        assert gs.labels.lookup("corp") is None

    def test_removed_chain_stops_new_flows(self):
        gs, _dp, _svc, _edge, ingress, egress = build_deployment()
        gs.create_chain(spec())
        gs.remove_chain("corp")
        send_packet(ingress, 5)
        assert not egress.delivered


class TestEdgeSiteAddition:
    def test_new_edge_site_reaches_chain(self):
        gs, dp, _svc, edge, _ingress, egress = build_deployment()
        gs.create_chain(spec())
        new_edge = EdgeInstance("edge.B", "B", dp)
        edge.register_instance(new_edge)
        chosen = gs.add_edge_site("corp", "B")
        assert chosen in ("A", "B")
        packet = Packet(FiveTuple("10.0.0.50", "20.0.0.9", "tcp", 2000, 80))
        new_edge.ingress(packet)
        assert egress.delivered
        assert any("firewall" in e for e in packet.trace)

    def test_uninstalled_chain_rejected(self):
        gs, *_ = build_deployment()
        with pytest.raises(InstallationError):
            gs.add_edge_site("ghost", "B")

    def test_extra_site_recorded(self):
        gs, dp, _svc, edge, *_ = build_deployment()
        installation = gs.create_chain(spec())
        edge.register_instance(EdgeInstance("edge.B", "B", dp))
        gs.add_edge_site("corp", "B")
        assert installation.extra_edge_sites == ["B"]


class TestLocalSwitchboard:
    def test_forwarder_scaling(self):
        dp = DataPlane(random.Random(0))
        local = LocalSwitchboard("A", dp, num_forwarders=1)
        local.scale_forwarders(2)
        assert len(local.forwarders) == 3
        assert len(dp.forwarders) == 3

    def test_instance_assignment_is_sticky(self):
        from repro.dataplane.forwarder import VnfInstance

        dp = DataPlane(random.Random(0))
        local = LocalSwitchboard("A", dp, num_forwarders=2)
        instance = VnfInstance("v1", "V", "A")
        first = local.assign_instance(instance)
        second = local.assign_instance(instance)
        assert first is second

    def test_assignment_balances_forwarders(self):
        from repro.dataplane.forwarder import VnfInstance

        dp = DataPlane(random.Random(0))
        local = LocalSwitchboard("A", dp, num_forwarders=2)
        for i in range(4):
            local.assign_instance(VnfInstance(f"v{i}", "V", "A"))
        sizes = sorted(len(f.attached) for f in local.forwarders)
        assert sizes == [2, 2]

    def test_forwarder_weights_sum_instance_weights(self):
        from repro.dataplane.forwarder import VnfInstance

        dp = DataPlane(random.Random(0))
        local = LocalSwitchboard("A", dp, num_forwarders=1)
        i1 = VnfInstance("v1", "V", "A", weight=1.5)
        i2 = VnfInstance("v2", "V", "A", weight=2.5)
        local.assign_instance(i1)
        local.assign_instance(i2)
        weights = local.forwarders_for_instances([i1, i2])
        assert weights == {local.forwarders[0].name: pytest.approx(4.0)}


class TestTiming:
    def test_route_update_near_paper_595ms(self):
        timeline = simulate_chain_route_update()
        total_ms = timeline.total_s * 1e3
        assert total_ms == pytest.approx(PAPER_ROUTE_UPDATE_MS, rel=0.05)

    def test_edge_addition_rows_match_paper(self):
        timeline = simulate_edge_site_addition()
        for operation, paper_ms in PAPER_TABLE2_MS.items():
            assert timeline.duration_of(operation) * 1e3 == pytest.approx(
                paper_ms, abs=1.0
            )

    def test_edge_addition_total_below_600ms(self):
        timeline = simulate_edge_site_addition()
        remaining = timeline.summed_durations_s - timeline.duration_of(
            "Local SB chooses the 1st VNF's site"
        )
        assert remaining * 1e3 < 600.0
