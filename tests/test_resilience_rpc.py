"""Tests for the at-least-once control RPC layer."""

import pytest

from repro.resilience.rpc import RpcConfig, RpcError, RpcLayer
from repro.simnet.events import Simulator
from repro.simnet.network import LinkSpec, NetworkError, SimNetwork


def build(config=None, seed=0):
    sim = Simulator()
    net = SimNetwork(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", LinkSpec(delay_s=0.010))
    layer = RpcLayer(net, config, seed=seed)
    return sim, net, layer


class TestConfig:
    def test_defaults_valid(self):
        RpcConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"max_retries": -1},
            {"backoff": 0.5},
            {"jitter": -0.1},
            {"dedup_window": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(RpcError):
            RpcConfig(**kwargs)


class TestDelivery:
    def test_message_delivered_and_acked(self):
        sim, net, layer = build()
        got = []
        a = layer.endpoint("a", lambda s, p: None)
        layer.endpoint("b", lambda s, p: got.append((s, p)))
        a.send("b", {"type": "ping"})
        net.run()
        assert got == [("a", {"type": "ping"})]
        assert layer.sent == 1
        assert layer.acked == 1
        assert layer.retries == 0
        assert layer.outstanding() == 0

    def test_ids_are_globally_monotonic(self):
        sim, net, layer = build()
        a = layer.endpoint("a", lambda s, p: None)
        b = layer.endpoint("b", lambda s, p: None)
        ids = [a.send("b", {"n": 1}), b.send("a", {"n": 2}),
               a.send("b", {"n": 3})]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_bare_sends_pass_through_unchanged(self):
        """A non-RPC message (legacy bare send) reaches the handler
        as-is and generates no ack traffic."""
        sim, net, layer = build()
        got = []
        layer.endpoint("b", lambda s, p: got.append(p))
        net.send("a", "b", {"type": "chain_request", "chain": "x"})
        net.run()
        assert got == [{"type": "chain_request", "chain": "x"}]
        assert layer.sent == 0
        assert layer.acked == 0

    def test_duplicate_endpoint_rejected(self):
        sim, net, layer = build()
        layer.endpoint("a", lambda s, p: None)
        with pytest.raises(RpcError):
            layer.endpoint("a", lambda s, p: None)


class TestRetransmission:
    def test_retries_recover_from_loss_window(self):
        """Total loss for a while, then a healthy link: the message
        still arrives exactly once."""
        config = RpcConfig(timeout_s=0.1, max_retries=8, jitter=0.0)
        sim, net, layer = build(config)
        got = []
        a = layer.endpoint("a", lambda s, p: None)
        layer.endpoint("b", lambda s, p: got.append(p))
        net.set_link_loss("a", "b", 1.0)
        a.send("b", {"type": "prepare"})
        sim.schedule(0.35, net.set_link_loss, "a", "b", 0.0)
        net.run()
        assert got == [{"type": "prepare"}]
        assert layer.retries > 0
        assert layer.timeouts == 0
        assert layer.outstanding() == 0

    def test_give_up_invokes_on_failure(self):
        config = RpcConfig(timeout_s=0.05, max_retries=3, jitter=0.0)
        sim, net, layer = build(config)
        failures = []
        a = layer.endpoint("a", lambda s, p: None)
        layer.endpoint("b", lambda s, p: None)
        net.set_link_loss("a", "b", 1.0)
        a.send("b", {"type": "prepare"},
               lambda dst, p: failures.append((dst, p)))
        net.run()
        assert failures == [("b", {"type": "prepare"})]
        assert layer.retries == 3
        assert layer.timeouts == 1
        assert layer.outstanding() == 0

    def test_lost_acks_cause_dedup_not_redelivery(self):
        """Only the ack direction is lossy: the receiver sees every
        retransmit but dispatches the payload exactly once."""
        config = RpcConfig(timeout_s=0.05, max_retries=4, jitter=0.0)
        sim, net, layer = build(config)
        got = []
        a = layer.endpoint("a", lambda s, p: None)
        layer.endpoint("b", lambda s, p: got.append(p))
        net.set_link_loss("b", "a", 1.0, bidirectional=False)
        a.send("b", {"type": "commit"})
        net.run()
        assert got == [{"type": "commit"}]
        assert layer.duplicates_suppressed == layer.retries > 0
        # Every ack was lost, so the sender eventually gave up -- but
        # the application message was delivered (and deduped).
        assert layer.timeouts == 1

    def test_cancel_matching_stops_retransmits(self):
        config = RpcConfig(timeout_s=0.05, max_retries=10, jitter=0.0)
        sim, net, layer = build(config)
        failures = []
        a = layer.endpoint("a", lambda s, p: None)
        layer.endpoint("b", lambda s, p: None)
        net.set_link_loss("a", "b", 1.0)
        a.send("b", {"type": "abort", "chain": "c1"},
               lambda dst, p: failures.append(p))
        a.send("b", {"type": "abort", "chain": "c2"},
               lambda dst, p: failures.append(p))
        cancelled = a.cancel_matching(
            lambda p: isinstance(p, dict) and p.get("chain") == "c1"
        )
        assert cancelled == 1
        assert a.outstanding == 1
        net.run()
        # The cancelled send neither retried to completion nor failed;
        # the surviving one exhausted its retries.
        assert failures == [{"type": "abort", "chain": "c2"}]

    def test_same_seed_same_jitter_schedule(self):
        def trace(seed):
            config = RpcConfig(timeout_s=0.05, max_retries=4)
            sim, net, layer = build(config, seed=seed)
            a = layer.endpoint("a", lambda s, p: None)
            layer.endpoint("b", lambda s, p: None)
            net.set_link_loss("a", "b", 1.0)
            times = []
            a.send("b", {"n": 1}, lambda dst, p: times.append(sim.now))
            net.run()
            return times

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)


class TestDedupWindow:
    def test_window_is_bounded(self):
        config = RpcConfig(dedup_window=4)
        sim, net, layer = build(config)
        a = layer.endpoint("a", lambda s, p: None)
        b = layer.endpoint("b", lambda s, p: None)
        for i in range(10):
            a.send("b", {"n": i})
        net.run()
        assert len(b._seen) <= 4


class TestLinksOf:
    def test_links_of_lists_incident_pairs(self):
        sim = Simulator()
        net = SimNetwork(sim)
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "b", LinkSpec(delay_s=0.01))
        net.connect("b", "c", LinkSpec(delay_s=0.01))
        assert net.links_of("a") == [("a", "b"), ("b", "a")]
        assert set(net.links_of("b")) == {
            ("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")
        }
        with pytest.raises(NetworkError):
            net.links_of("nope")
