"""Tests for labels, flow tables, and load-balancing rules."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dataplane.flowtable import FlowTable
from repro.dataplane.labels import FiveTuple, LabelAllocator, Labels, Packet
from repro.dataplane.rules import (
    RuleError,
    WeightedChoice,
    forwarder_weight,
    hierarchical_weights,
)

FLOW = FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1111, 80)
LBL = Labels(chain=1, egress_site="C")


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        rev = FLOW.reversed()
        assert rev.src_ip == FLOW.dst_ip
        assert rev.dst_port == FLOW.src_port
        assert rev.protocol == FLOW.protocol

    def test_reversed_is_involution(self):
        assert FLOW.reversed().reversed() == FLOW

    def test_hashable_as_dict_key(self):
        d = {FLOW: 1}
        assert d[FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1111, 80)] == 1


class TestPacket:
    def test_trace_records_elements(self):
        packet = Packet(FLOW)
        packet.record("e1")
        packet.record("f1")
        assert packet.trace == ["e1", "f1"]

    def test_copy_isolates_trace(self):
        packet = Packet(FLOW)
        packet.record("a")
        clone = packet.copy()
        clone.record("b")
        assert packet.trace == ["a"]


class TestLabelAllocator:
    def test_labels_unique_per_chain(self):
        alloc = LabelAllocator()
        l1 = alloc.allocate("chain-1")
        l2 = alloc.allocate("chain-2")
        assert l1 != l2

    def test_allocate_is_idempotent(self):
        alloc = LabelAllocator()
        assert alloc.allocate("c") == alloc.allocate("c")

    def test_release_forgets_chain(self):
        alloc = LabelAllocator()
        first = alloc.allocate("c")
        alloc.release("c")
        assert alloc.lookup("c") is None
        assert alloc.allocate("c") != first  # labels are never recycled


class TestFlowTable:
    def test_miss_then_insert_then_hit(self):
        table = FlowTable()
        assert table.lookup(LBL, FLOW) is None
        entry = table.insert(LBL, FLOW)
        entry.next_hop = "f2"
        found = table.lookup(LBL, FLOW)
        assert found is entry
        assert table.misses == 1 and table.hits == 1

    def test_insert_is_idempotent(self):
        table = FlowTable()
        e1 = table.insert(LBL, FLOW)
        e2 = table.insert(LBL, FLOW)
        assert e1 is e2
        assert table.inserts == 1

    def test_different_labels_are_different_entries(self):
        table = FlowTable()
        e1 = table.insert(LBL, FLOW)
        e2 = table.insert(Labels(2, "C"), FLOW)
        assert e1 is not e2

    def test_eviction_at_capacity(self):
        table = FlowTable(max_entries=2)
        flows = [
            FiveTuple("10.0.0.1", "20.0.0.1", "tcp", p, 80) for p in range(3)
        ]
        for flow in flows:
            table.insert(LBL, flow)
        assert len(table) == 2
        assert table.evictions == 1
        assert table.lookup(LBL, flows[0]) is None  # oldest evicted

    def test_alias_shares_entry_object(self):
        table = FlowTable()
        entry = table.insert(LBL, FLOW)
        rewritten = FiveTuple("200.0.0.1", "20.0.0.1", "tcp", 40000, 80)
        aliased = table.alias(LBL, rewritten, entry)
        assert aliased is entry
        assert table.lookup(LBL, rewritten) is entry

    def test_alias_respects_existing_key(self):
        table = FlowTable()
        existing = table.insert(LBL, FLOW)
        other = table.insert(LBL, FLOW.reversed())
        assert table.alias(LBL, FLOW, other) is existing

    def test_remove(self):
        table = FlowTable()
        table.insert(LBL, FLOW)
        assert table.remove(LBL, FLOW)
        assert not table.remove(LBL, FLOW)

    def test_entries_for_chain(self):
        table = FlowTable()
        table.insert(LBL, FLOW)
        table.insert(Labels(9, "C"), FLOW.reversed())
        entries = table.entries_for_chain(1)
        assert len(entries) == 1


class TestWeightedChoice:
    def test_single_target_always_chosen(self):
        choice = WeightedChoice({"x": 1.0})
        rng = random.Random(0)
        assert all(choice.pick(rng) == "x" for _ in range(10))

    def test_zero_weight_never_chosen(self):
        choice = WeightedChoice({"x": 1.0, "y": 0.0})
        rng = random.Random(0)
        assert all(choice.pick(rng) == "x" for _ in range(100))

    def test_weights_respected_statistically(self):
        choice = WeightedChoice({"x": 3.0, "y": 1.0})
        rng = random.Random(42)
        picks = [choice.pick(rng) for _ in range(4000)]
        ratio = picks.count("x") / len(picks)
        assert 0.70 <= ratio <= 0.80

    def test_negative_weight_rejected(self):
        with pytest.raises(RuleError):
            WeightedChoice({"x": -1.0})

    def test_all_zero_weights_raise_on_pick(self):
        choice = WeightedChoice({"x": 0.0})
        with pytest.raises(RuleError):
            choice.pick(random.Random(0))

    def test_distribution_normalizes(self):
        choice = WeightedChoice({"x": 2.0, "y": 2.0})
        assert choice.distribution() == {"x": 0.5, "y": 0.5}

    def test_remove_target(self):
        choice = WeightedChoice({"x": 1.0, "y": 1.0})
        choice.remove("y")
        assert choice.targets == ["x"]

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=4),
            st.floats(min_value=0.01, max_value=100.0),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_pick_always_returns_positive_weight_target(self, weights, seed):
        choice = WeightedChoice(weights)
        picked = choice.pick(random.Random(seed))
        assert weights[picked] > 0


class TestHierarchicalWeights:
    def test_product_of_site_fraction_and_instance_weight(self):
        combined = hierarchical_weights(
            site_fractions={"A": 0.75, "B": 0.25},
            instance_weights={
                "A": {"a1": 1.0, "a2": 1.0},
                "B": {"b1": 2.0},
            },
        )
        assert combined["a1"] == pytest.approx(0.375)
        assert combined["a2"] == pytest.approx(0.375)
        assert combined["b1"] == pytest.approx(0.25)
        assert sum(combined.values()) == pytest.approx(1.0)

    def test_site_without_instances_contributes_nothing(self):
        combined = hierarchical_weights({"A": 1.0}, {})
        assert combined == {}

    def test_negative_site_fraction_rejected(self):
        with pytest.raises(RuleError):
            hierarchical_weights({"A": -0.1}, {"A": {"a1": 1.0}})

    def test_forwarder_weight_sums_instances(self):
        # The paper's example: weight of F2 = weight of O1 + weight of O2.
        assert forwarder_weight({"O1": 1.5, "O2": 2.5}) == pytest.approx(4.0)

    def test_forwarder_weight_rejects_negative(self):
        with pytest.raises(RuleError):
            forwarder_weight({"O1": -1.0})
