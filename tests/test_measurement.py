"""Tests for forwarder traffic counters and demand estimation."""

import random

import pytest

from repro.dataplane.forwarder import DataPlane, Forwarder
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.dataplane.measurement import (
    DemandEstimator,
    MeasurementError,
    chain_byte_counts,
)
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice

LBL = Labels(chain=1, egress_site="E")


class Sink:
    name = "out"

    def receive_from_chain(self, packet, came_from):
        pass


def build_line():
    """Two-forwarder line: f1 -> f2 -> sink."""
    dp = DataPlane(random.Random(0))
    f1 = dp.add_forwarder(Forwarder("f1", "A"))
    f2 = dp.add_forwarder(Forwarder("f2", "B"))
    dp.add_endpoint(Sink())
    f1.install_rule(
        1, "E", LoadBalancingRule(next_forwarders=WeightedChoice({"f2": 1.0}))
    )
    f2.install_rule(
        1, "E", LoadBalancingRule(next_forwarders=WeightedChoice({"out": 1.0}))
    )
    return dp, f1, f2


def send(dp, n, size=500, start_port=1000):
    for i in range(n):
        packet = Packet(
            FiveTuple("10.0.0.1", "20.0.0.1", "tcp", start_port + i, 80),
            labels=LBL,
            size_bytes=size,
        )
        dp.send_forward(packet, "f1", "edge")


class TestForwarderCounters:
    def test_counts_bytes_per_chain_and_direction(self):
        dp, f1, _f2 = build_line()
        send(dp, 4, size=500)
        assert f1.traffic_bytes[(1, "E", "forward")] == 2000

    def test_every_hop_counts_the_packet(self):
        dp, f1, f2 = build_line()
        send(dp, 3, size=100)
        assert f1.traffic_bytes[(1, "E", "forward")] == 300
        assert f2.traffic_bytes[(1, "E", "forward")] == 300

    def test_chains_counted_separately(self):
        dp, f1, f2 = build_line()
        f1.install_rule(
            2, "E",
            LoadBalancingRule(next_forwarders=WeightedChoice({"f2": 1.0})),
        )
        f2.install_rule(
            2, "E",
            LoadBalancingRule(next_forwarders=WeightedChoice({"out": 1.0})),
        )
        send(dp, 2, size=100)
        packet = Packet(
            FiveTuple("10.0.0.2", "20.0.0.1", "tcp", 5000, 80),
            labels=Labels(2, "E"),
            size_bytes=700,
        )
        dp.send_forward(packet, "f1", "edge")
        assert f1.traffic_bytes[(1, "E", "forward")] == 200
        assert f1.traffic_bytes[(2, "E", "forward")] == 700

    def test_chain_byte_counts_uses_max_not_sum(self):
        dp, f1, f2 = build_line()
        send(dp, 4, size=250)
        counts = chain_byte_counts([f1, f2], 1)
        assert counts["forward"] == 1000  # not 2000


class TestDemandEstimator:
    def test_first_epoch_seeds_rate(self):
        dp, f1, f2 = build_line()
        send(dp, 10, size=100)
        estimator = DemandEstimator(alpha=0.5)
        estimates = estimator.observe([f1, f2], [1], epoch_seconds=2.0)
        assert estimates[1].forward_rate == pytest.approx(500.0)

    def test_ewma_smooths_changes(self):
        dp, f1, f2 = build_line()
        estimator = DemandEstimator(alpha=0.5)
        send(dp, 10, size=100)  # 1000 B
        estimator.observe([f1, f2], [1], epoch_seconds=1.0)
        send(dp, 30, size=100, start_port=5000)  # 3000 B this epoch
        estimates = estimator.observe([f1, f2], [1], epoch_seconds=1.0)
        # EWMA: 1000 + 0.5 * (3000 - 1000) = 2000.
        assert estimates[1].forward_rate == pytest.approx(2000.0)

    def test_idle_epoch_decays_estimate(self):
        dp, f1, f2 = build_line()
        estimator = DemandEstimator(alpha=0.5)
        send(dp, 10, size=100)
        estimator.observe([f1, f2], [1], epoch_seconds=1.0)
        estimates = estimator.observe([f1, f2], [1], epoch_seconds=1.0)
        assert estimates[1].forward_rate == pytest.approx(500.0)

    def test_demand_factors_relative_to_installed(self):
        dp, f1, f2 = build_line()
        estimator = DemandEstimator()
        send(dp, 10, size=100)
        estimator.observe([f1, f2], [1], epoch_seconds=1.0)
        factors = estimator.demand_factors({"corp": (1, 2000.0)})
        assert factors["corp"] == pytest.approx(0.5)

    def test_factor_floor(self):
        estimator = DemandEstimator()
        estimator.estimates[1] = __import__(
            "repro.dataplane.measurement", fromlist=["DemandEstimate"]
        ).DemandEstimate(forward_rate=0.0)
        factors = estimator.demand_factors({"corp": (1, 100.0)}, floor=0.2)
        assert factors["corp"] == 0.2

    def test_unknown_label_skipped(self):
        estimator = DemandEstimator()
        assert estimator.demand_factors({"corp": (9, 100.0)}) == {}

    def test_invalid_parameters(self):
        with pytest.raises(MeasurementError):
            DemandEstimator(alpha=0.0)
        estimator = DemandEstimator()
        with pytest.raises(MeasurementError):
            estimator.observe([], [1], epoch_seconds=0.0)
        with pytest.raises(MeasurementError):
            estimator.demand_factors({"corp": (1, 0.0)})


class TestMeasureReoptimizeLoop:
    def test_end_to_end_loop(self):
        """Counters -> estimator -> factors -> reoptimize."""
        from repro.controller import (
            ChainSpecification,
            GlobalSwitchboard,
            LocalSwitchboard,
            reoptimize,
        )
        from repro.core.model import CloudSite, NetworkModel, VNF
        from repro.edge import EdgeController, EdgeInstance
        from repro.vnf import VnfService

        nodes = ["a", "b"]
        model = NetworkModel(
            nodes,
            {("a", "b"): 10.0},
            [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)],
            [VNF("fw", 1.0, {"B": 50.0})],
        )
        dp = DataPlane(random.Random(1))
        gs = GlobalSwitchboard(model, dp)
        for site in ("A", "B"):
            gs.register_local_switchboard(LocalSwitchboard(site, dp))
        gs.register_vnf_service(VnfService("fw", 1.0, {"B": 50.0}))
        edge = EdgeController("vpn")
        ingress = EdgeInstance("edge.A", "A", dp)
        egress = EdgeInstance("edge.B", "B", dp)
        edge.register_instance(ingress)
        edge.register_instance(egress)
        edge.register_attachment("in", "A")
        edge.register_attachment("out", "B")
        gs.register_edge_service(edge)

        installation = gs.create_chain(
            ChainSpecification(
                "corp", "vpn", "in", "out", ["fw"],
                forward_demand=1000.0,  # installed estimate: 1000 B/s
                src_prefix="10.0.0.0/24", dst_prefixes=["20.0.0.0/24"],
            )
        )
        # Measured traffic: 2000 B over a 1-second epoch = 2x installed.
        for i in range(4):
            packet = Packet(
                FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 3000 + i, 80),
                size_bytes=500,
            )
            ingress.ingress(packet)
        estimator = DemandEstimator()
        estimator.observe(
            list(dp.forwarders.values()), [installation.label], 1.0
        )
        factors = estimator.demand_factors(
            {"corp": (installation.label, 1000.0)}
        )
        assert factors["corp"] == pytest.approx(2.0)
        report = reoptimize(gs, factors)
        assert report.rerouted == ["corp"]
        assert gs.model.chains["corp"].forward_traffic[0] == pytest.approx(
            2000.0
        )
