"""Unit tests for the simulated network: delays, bandwidth, buffers."""

import pytest

from repro.simnet.network import LinkSpec, NetworkError, SimNetwork


def make_pair(spec: LinkSpec) -> tuple[SimNetwork, list]:
    net = SimNetwork()
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", spec)
    arrivals = []
    net.host("b").on_receive(lambda s, p: arrivals.append((net.sim.now, s, p)))
    return net, arrivals


class TestLinkSpec:
    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            LinkSpec(delay_s=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(NetworkError):
            LinkSpec(delay_s=0.0, bandwidth_bps=0.0)

    def test_zero_buffer_rejected(self):
        with pytest.raises(NetworkError):
            LinkSpec(delay_s=0.0, bandwidth_bps=1e6, buffer_bytes=0)

    def test_buffer_without_bandwidth_rejected(self):
        # Regression: this combination used to be accepted silently and
        # the buffer limit then never dropped anything (the overflow
        # check only ran on the finite-bandwidth branch).
        with pytest.raises(NetworkError):
            LinkSpec(delay_s=0.01, buffer_bytes=1000)


class TestDelivery:
    def test_propagation_delay(self):
        net, arrivals = make_pair(LinkSpec(delay_s=0.05))
        net.send("a", "b", "hello", 100)
        net.run()
        assert len(arrivals) == 1
        assert arrivals[0][0] == pytest.approx(0.05)
        assert arrivals[0][2] == "hello"

    def test_serialization_delay_uses_bits(self):
        # 1000 bytes over 8 Mbps = 1 ms serialization.
        net, arrivals = make_pair(LinkSpec(delay_s=0.0, bandwidth_bps=8e6))
        net.send("a", "b", "x", 1000)
        net.run()
        assert arrivals[0][0] == pytest.approx(0.001)

    def test_back_to_back_messages_queue(self):
        net, arrivals = make_pair(LinkSpec(delay_s=0.0, bandwidth_bps=8e6))
        for i in range(3):
            net.send("a", "b", i, 1000)
        net.run()
        times = [t for t, _s, _p in arrivals]
        assert times == pytest.approx([0.001, 0.002, 0.003])

    def test_queue_drains_between_sends(self):
        net, arrivals = make_pair(LinkSpec(delay_s=0.0, bandwidth_bps=8e6))
        net.send("a", "b", 0, 1000)
        net.sim.schedule(0.010, net.send, "a", "b", 1, 1000)
        net.run()
        assert arrivals[1][0] == pytest.approx(0.011)

    def test_sender_recorded(self):
        net, arrivals = make_pair(LinkSpec(delay_s=0.01))
        net.send("a", "b", "p", 10)
        net.run()
        assert arrivals[0][1] == "a"

    def test_infinite_bandwidth_has_no_serialization(self):
        net, arrivals = make_pair(LinkSpec(delay_s=0.02))
        for i in range(10):
            net.send("a", "b", i, 10_000_000)
        net.run()
        assert all(t == pytest.approx(0.02) for t, _s, _p in arrivals)


class TestBufferDrops:
    def test_messages_dropped_when_buffer_full(self):
        spec = LinkSpec(delay_s=0.0, bandwidth_bps=8e6, buffer_bytes=2500)
        net, arrivals = make_pair(spec)
        results = [net.send("a", "b", i, 1000) for i in range(5)]
        net.run()
        # Buffer fits 2 queued messages (2000 <= 2500 < 3000).
        assert results == [True, True, False, False, False]
        assert len(arrivals) == 2

    def test_drop_statistics(self):
        spec = LinkSpec(delay_s=0.0, bandwidth_bps=8e6, buffer_bytes=1500)
        net, _ = make_pair(spec)
        for i in range(4):
            net.send("a", "b", i, 1000)
        net.run()
        stats = net.link_stats("a", "b")
        assert stats.sent == 4
        assert stats.delivered == 1
        assert stats.dropped == 3
        assert stats.bytes_dropped == 3000

    def test_delivered_counts_at_delivery_time(self):
        # Regression: ``delivered`` used to be incremented at enqueue
        # time, so a mid-flight snapshot claimed messages were delivered
        # while they were still propagating.
        net, arrivals = make_pair(LinkSpec(delay_s=0.1))
        net.send("a", "b", "m", 100)
        net.run(until=0.05)
        stats = net.link_stats("a", "b")
        assert stats.sent == 1
        assert stats.delivered == 0
        assert stats.bytes_delivered == 0
        assert stats.in_flight == 1
        assert not arrivals
        net.run()
        assert stats.delivered == 1
        assert stats.bytes_delivered == 100
        assert stats.in_flight == 0

    def test_accounting_invariant_under_congestion(self):
        # sent == delivered + dropped + in_flight at *any* stop time.
        spec = LinkSpec(delay_s=0.01, bandwidth_bps=8e6, buffer_bytes=2500)
        net, _ = make_pair(spec)
        for i in range(6):
            net.send("a", "b", i, 1000)
        stats = net.link_stats("a", "b")
        for until in (0.0005, 0.0015, 0.011, 0.02, None):
            net.run(until=until)
            assert stats.sent == 6
            assert (
                stats.delivered + stats.dropped + stats.in_flight == stats.sent
            )
        assert stats.in_flight == 0
        # Buffer fits the serializing message plus one queued (2000 <=
        # 2500 < 3000), so two of six survive.
        assert stats.dropped == 4

    def test_buffer_frees_after_serialization(self):
        spec = LinkSpec(delay_s=0.0, bandwidth_bps=8e6, buffer_bytes=1000)
        net, arrivals = make_pair(spec)
        assert net.send("a", "b", 0, 1000)
        net.sim.schedule(0.002, net.send, "a", "b", 1, 1000)
        net.run()
        assert len(arrivals) == 2


class TestTopologyRules:
    def test_duplicate_host_rejected(self):
        net = SimNetwork()
        net.add_host("a")
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_unknown_destination_rejected(self):
        net = SimNetwork()
        net.add_host("a")
        with pytest.raises(NetworkError):
            net.send("a", "ghost", "p", 1)

    def test_no_link_and_no_default_rejected(self):
        net = SimNetwork()
        net.add_host("a", site="X")
        net.add_host("b", site="Y")
        with pytest.raises(NetworkError):
            net.send("a", "b", "p", 1)

    def test_same_site_hosts_get_local_link(self):
        net = SimNetwork()
        net.add_host("a", site="X")
        net.add_host("b", site="X")
        got = []
        net.host("b").on_receive(lambda s, p: got.append(net.sim.now))
        assert net.send("a", "b", "p", 100)
        net.run()
        assert got and got[0] < 0.001  # sub-millisecond LAN hop

    def test_default_link_used_when_configured(self):
        net = SimNetwork()
        net.default_link = LinkSpec(delay_s=0.03)
        net.add_host("a")
        net.add_host("b")
        got = []
        net.host("b").on_receive(lambda s, p: got.append(net.sim.now))
        net.send("a", "b", "p", 1)
        net.run()
        assert got[0] == pytest.approx(0.03)

    def test_self_connection_rejected(self):
        net = SimNetwork()
        net.add_host("a")
        with pytest.raises(NetworkError):
            net.connect("a", "a", LinkSpec(delay_s=0.01))

    def test_bidirectional_connect(self):
        net = SimNetwork()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", LinkSpec(delay_s=0.01))
        got = []
        net.host("a").on_receive(lambda s, p: got.append(p))
        net.send("b", "a", "back", 1)
        net.run()
        assert got == ["back"]

    def test_non_positive_size_rejected(self):
        net, _ = make_pair(LinkSpec(delay_s=0.01))
        with pytest.raises(NetworkError):
            net.send("a", "b", "p", 0)
