"""Tests for the traffic shaper and IDS network functions."""

import pytest

from repro.dataplane.forwarder import DropPacket
from repro.dataplane.labels import FiveTuple, Packet
from repro.vnf.ids import IntrusionDetector
from repro.vnf.shaper import ShaperError, TokenBucketShaper


def packet(i=0, size=1000, payload=None, dst_port=80):
    return Packet(
        FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1000 + i, dst_port),
        size_bytes=size,
        payload=payload,
    )


class TestTokenBucketShaper:
    def test_burst_admitted_up_to_bucket(self):
        shaper = TokenBucketShaper(rate_bytes_per_s=1000, burst_bytes=3000)
        for _ in range(3):
            shaper(packet(size=1000))
        assert shaper.forwarded == 3

    def test_excess_burst_dropped(self):
        shaper = TokenBucketShaper(rate_bytes_per_s=1000, burst_bytes=2500)
        shaper(packet(size=1000))
        shaper(packet(size=1000))
        with pytest.raises(DropPacket):
            shaper(packet(size=1000))
        assert shaper.dropped == 1

    def test_tokens_refill_with_time(self):
        shaper = TokenBucketShaper(rate_bytes_per_s=1000, burst_bytes=1000)
        shaper(packet(size=1000))
        with pytest.raises(DropPacket):
            shaper(packet(size=1000))
        shaper.advance(1.0)  # +1000 bytes of tokens
        shaper(packet(size=1000))
        assert shaper.forwarded == 2

    def test_tokens_capped_at_burst(self):
        shaper = TokenBucketShaper(rate_bytes_per_s=1000, burst_bytes=1500)
        shaper.advance(100.0)
        assert shaper.tokens == 1500

    def test_sustained_rate_enforced(self):
        shaper = TokenBucketShaper(rate_bytes_per_s=2000, burst_bytes=2000)
        sent = 0
        for _step in range(10):  # 10 x 0.5 s; 1000 B budget per step
            shaper.advance(0.5)
            for _ in range(3):
                try:
                    shaper(packet(size=1000))
                    sent += 1
                except DropPacket:
                    pass
        # 2000 B/s * 5 s = 10 kB plus the initial 2 kB burst.
        assert 10 <= sent <= 12

    def test_invalid_config_rejected(self):
        with pytest.raises(ShaperError):
            TokenBucketShaper(0, 100)
        with pytest.raises(ShaperError):
            TokenBucketShaper(100, 0)
        shaper = TokenBucketShaper(100, 100)
        with pytest.raises(ShaperError):
            shaper.advance(-1.0)


class TestIntrusionDetector:
    def test_clean_traffic_passes(self):
        ids = IntrusionDetector(signatures=["EVIL"])
        ids(packet(payload="hello world"))
        assert ids.packets_inspected == 1
        assert not ids.alerts

    def test_signature_match_alerts_and_drops(self):
        ids = IntrusionDetector(signatures=["EVIL"])
        with pytest.raises(DropPacket):
            ids(packet(payload="xxEVILxx"))
        assert ids.alerts[0].kind == "signature"
        assert ids.packets_dropped == 1

    def test_detection_only_mode_alerts_without_dropping(self):
        ids = IntrusionDetector(signatures=["EVIL"], prevention=False)
        ids(packet(payload="xxEVILxx"))
        assert len(ids.alerts) == 1
        assert ids.packets_dropped == 0

    def test_port_scan_detected_and_source_blocked(self):
        ids = IntrusionDetector(scan_port_threshold=5)
        for port in range(5):
            ids(packet(dst_port=1000 + port))
        with pytest.raises(DropPacket):
            ids(packet(dst_port=2000))  # 6th distinct port
        assert ids.is_blocked("10.0.0.1")
        assert any(a.kind == "port-scan" for a in ids.alerts)
        # All further traffic from the source is dropped.
        with pytest.raises(DropPacket):
            ids(packet(dst_port=80))

    def test_same_port_does_not_trip_scan(self):
        ids = IntrusionDetector(scan_port_threshold=3)
        for i in range(20):
            ids(packet(i=i, dst_port=80))
        assert not ids.alerts

    def test_add_signature(self):
        ids = IntrusionDetector()
        ids.add_signature("BAD")
        with pytest.raises(DropPacket):
            ids(packet(payload="BAD stuff"))
        with pytest.raises(ValueError):
            ids.add_signature("")
