"""Tests for the global message bus and its broadcast baseline."""

import pytest

from repro.bus import Topic, make_bus, make_full_mesh_bus
from repro.bus.bus import BusError
from repro.bus.topics import TopicError

SITES = ["S0", "S1", "S2"]
TOPIC = Topic(chain="c1", egress="e3", vnf="G", site="S0", kind="instances")


class TestTopics:
    def test_format_matches_paper_example(self):
        topic = Topic("c1", "e3", "G", "A", "instances")
        assert str(topic) == "/c1/e3/vnf_G/site_A_instances"

    def test_parse_round_trip(self):
        raw = "/c1/e3/vnf_O/site_B_forwarders"
        topic = Topic.parse(raw)
        assert topic.chain == "c1"
        assert topic.egress == "e3"
        assert topic.vnf == "O"
        assert topic.site == "B"
        assert topic.kind == "forwarders"
        assert str(topic) == raw

    def test_publisher_site_inferred_from_topic(self):
        assert Topic.parse("/c1/e3/vnf_G/site_B_instances").publisher_site == "B"

    def test_invalid_kind_rejected(self):
        with pytest.raises(TopicError):
            Topic("c1", "e3", "G", "A", "nonsense")

    def test_site_with_underscore_rejected(self):
        with pytest.raises(TopicError):
            Topic("c1", "e3", "G", "site_a", "instances")

    def test_malformed_strings_rejected(self):
        for raw in ("c1/e3", "/c1/e3/vnf_G", "/c1/e3/nfv_G/site_A_instances",
                    "/c1/e3/vnf_G/siteA_instances", "/a/b/vnf_/site__instances"):
            with pytest.raises(TopicError):
                Topic.parse(raw)


def build_proxy_bus(**kwargs):
    defaults = dict(
        sites=SITES, wan_delay_s=0.025, uplink_bps=80e6,
        uplink_buffer_bytes=1_000_000,
    )
    defaults.update(kwargs)
    return make_bus(**defaults)


class TestProxyBus:
    def test_local_subscriber_gets_message_fast(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub", "S0")
        bus.subscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, {"x": 1})
        bus.network.run()
        assert len(bus.clients["sub"].received) == 1
        assert bus.stats.deliveries[0].latency < 0.005  # LAN only

    def test_remote_subscriber_gets_one_wan_copy(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        for j in range(4):
            bus.attach(f"sub{j}", "S1")
            bus.subscribe(f"sub{j}", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        # One WAN message despite four subscribers at S1.
        assert bus.stats.wan_messages == 1
        assert bus.stats.delivered == 4

    def test_site_without_subscribers_gets_nothing(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        # No traffic toward S2's proxy.
        stats = bus.network.link_stats("wan.S0", "proxy.S2")
        assert stats.sent == 0

    def test_filter_installed_at_publisher_site(self):
        bus = build_proxy_bus()
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)  # topic's publisher site is S0
        assert str(TOPIC) in bus._site_filters["S0"]
        assert str(TOPIC) not in bus._site_filters["S1"]

    def test_unsubscribe_stops_delivery(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)
        bus.unsubscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        assert bus.stats.delivered == 0

    def test_duplicate_subscribe_is_idempotent(self):
        # Regression: subscribing twice used to register the client
        # twice in the local fan-out list, double-delivering every
        # message.
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)
        bus.subscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        assert len(bus.clients["sub"].received) == 1
        assert bus.stats.delivered == 1

    def test_unsubscribe_after_duplicate_subscribe_stops_delivery(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)
        bus.subscribe("sub", TOPIC)
        bus.unsubscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        assert bus.stats.delivered == 0

    def test_last_unsubscribe_clears_publisher_site_filter(self):
        # The publisher's proxy must stop sending WAN copies toward a
        # site once its last subscriber leaves.
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub1", "S1")
        bus.attach("sub2", "S1")
        bus.subscribe("sub1", TOPIC)
        bus.subscribe("sub2", TOPIC)
        bus.unsubscribe("sub1", TOPIC)
        assert "S1" in bus._site_filters["S0"][str(TOPIC)]
        bus.unsubscribe("sub2", TOPIC)
        assert str(TOPIC) not in bus._site_filters["S0"]
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        assert bus.stats.wan_messages == 0

    def test_subscribe_round_trip_restores_delivery(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)
        bus.unsubscribe("sub", TOPIC)
        bus.subscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        assert len(bus.clients["sub"].received) == 1

    def test_callback_invoked(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        seen = []
        bus.subscribe("sub", TOPIC, callback=lambda t, p: seen.append((t, p)))
        bus.publish("pub", TOPIC, 42)
        bus.network.run()
        assert seen == [(str(TOPIC), 42)]

    def test_wan_latency_reflects_delay(self):
        bus = build_proxy_bus(wan_delay_s=0.040)
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        latency = bus.stats.deliveries[0].latency
        assert 0.040 <= latency < 0.050

    def test_duplicate_client_rejected(self):
        bus = build_proxy_bus()
        bus.attach("pub", "S0")
        with pytest.raises(BusError):
            bus.attach("pub", "S0")

    def test_unknown_site_rejected(self):
        bus = build_proxy_bus()
        with pytest.raises(BusError):
            bus.attach("x", "nowhere")

    def test_multiple_topics_isolated(self):
        bus = build_proxy_bus()
        other = Topic("c2", "e1", "H", "S0", "forwarders")
        bus.attach("pub", "S0")
        bus.attach("sub_a", "S1")
        bus.attach("sub_b", "S1")
        bus.subscribe("sub_a", TOPIC)
        bus.subscribe("sub_b", other)
        bus.publish("pub", TOPIC, "m1")
        bus.publish("pub", other, "m2")
        bus.network.run()
        assert [p for _t, _top, p in bus.clients["sub_a"].received] == ["m1"]
        assert [p for _t, _top, p in bus.clients["sub_b"].received] == ["m2"]


class TestFullMeshComparison:
    def run_fanout(self, make, subscribers_per_site=4, publishes=100,
                   interval=0.005, uplink_bps=8e6, buffer_bytes=400_000):
        # At the default rate the proxy bus uses ~40% of the uplink while
        # full mesh needs ~160% -- the Figure 9 congestion regime.
        bus = make(
            SITES, wan_delay_s=0.025, uplink_bps=uplink_bps,
            uplink_buffer_bytes=buffer_bytes,
        )
        bus.attach("pub", "S0")
        for site in SITES[1:]:
            for j in range(subscribers_per_site):
                name = f"sub-{site}-{j}"
                bus.attach(name, site)
                bus.subscribe(name, TOPIC)
        for i in range(publishes):
            bus.network.sim.schedule(i * interval, bus.publish, "pub", TOPIC, i)
        bus.network.run()
        return bus.stats

    def test_mesh_sends_per_subscriber_copies(self):
        proxy = self.run_fanout(make_bus, publishes=10, uplink_bps=80e6)
        mesh = self.run_fanout(make_full_mesh_bus, publishes=10, uplink_bps=80e6)
        assert proxy.wan_messages == 10 * 2   # one per remote site
        assert mesh.wan_messages == 10 * 8    # one per remote subscriber

    def test_same_delivery_count_when_uncongested(self):
        proxy = self.run_fanout(make_bus, publishes=10, uplink_bps=80e6)
        mesh = self.run_fanout(make_full_mesh_bus, publishes=10, uplink_bps=80e6)
        assert proxy.delivered == mesh.delivered == 80

    def test_mesh_latency_order_of_magnitude_worse_under_load(self):
        # The Figure 9 conditions: publish rate near the uplink capacity.
        proxy = self.run_fanout(make_bus)
        mesh = self.run_fanout(make_full_mesh_bus)
        assert mesh.mean_latency() > 5 * proxy.mean_latency()

    def test_mesh_drops_messages_under_load(self):
        # Buffer sized below the mesh's peak backlog (~300 KB) but far
        # above the proxy bus's (which never queues more than a burst).
        proxy = self.run_fanout(make_bus, buffer_bytes=150_000)
        mesh = self.run_fanout(make_full_mesh_bus, buffer_bytes=150_000)
        assert proxy.wan_drops == 0
        assert mesh.wan_drops > 0
        assert proxy.delivered > mesh.delivered

    def test_mesh_duplicate_subscribe_and_unsubscribe(self):
        bus = make_full_mesh_bus(SITES, wan_delay_s=0.025, uplink_bps=8e6)
        bus.attach("pub", "S0")
        bus.attach("sub", "S1")
        bus.subscribe("sub", TOPIC)
        bus.subscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        assert bus.stats.delivered == 1
        bus.unsubscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m2")
        bus.network.run()
        assert bus.stats.delivered == 1

    def test_mesh_delivers_everything_to_local_subscribers(self):
        bus = make_full_mesh_bus(SITES, wan_delay_s=0.025, uplink_bps=8e6)
        bus.attach("pub", "S0")
        bus.attach("sub", "S0")
        bus.subscribe("sub", TOPIC)
        bus.publish("pub", TOPIC, "m")
        bus.network.run()
        assert bus.stats.delivered == 1
        assert bus.stats.wan_messages == 0
