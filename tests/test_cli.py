"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route"])
        assert args.chains == 40
        assert args.scheme == "all"

    def test_route_scheme_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--scheme", "magic"])


class TestCommands:
    def test_topology(self, capsys):
        assert main(["topology", "--cities", "8"]) == 0
        out = capsys.readouterr().out
        assert "PoPs           : 8" in out
        assert "directed links" in out

    def test_route_single_scheme(self, capsys):
        assert main([
            "route", "--chains", "5", "--cities", "8", "--scheme", "dp",
        ]) == 0
        out = capsys.readouterr().out
        assert "SB-DP" in out
        assert "ANYCAST" not in out

    def test_route_baselines(self, capsys):
        assert main([
            "route", "--chains", "5", "--cities", "8",
            "--scheme", "anycast",
        ]) == 0
        assert "ANYCAST" in capsys.readouterr().out

    def test_cache(self, capsys):
        assert main(["cache", "--chains", "3"]) == 0
        out = capsys.readouterr().out
        assert "shared" in out and "siloed" in out

    def test_bus(self, capsys):
        assert main([
            "bus", "--sites", "4", "--publishes", "50", "--rate", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "broadcast" in out

    def test_timing(self, capsys):
        assert main(["timing"]) == 0
        out = capsys.readouterr().out
        assert "chain route update: 594 ms total" in out
        assert "edge site addition: 567 ms" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "--publishes", "100"]) == 0
        out = capsys.readouterr().out
        # The three headline sections of the acceptance criterion:
        # queueing-delay histograms, WAN-drop counters, 2PC timings.
        assert "link.queue_delay_s{link=proxy.A->wan.A}" in out
        assert "bus.wan_drops" in out
        assert "span.2pc.prepare{chain=corp}" in out
        assert "span.2pc.commit{chain=corp}" in out

    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "--publishes", "50", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["install.completed"] == 1
        assert any(k.startswith("span.2pc.") for k in data["histograms"])


class TestFuzzParser:
    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seed == 1
        assert args.cases == 3
        assert args.budget is None
        assert args.stack == "both"
        assert args.out is None
        assert not args.plant and not args.no_minimize

    def test_bare_out_derives_seeded_filename(self):
        args = build_parser().parse_args(["fuzz", "--seed", "4", "--out"])
        assert args.out == "auto"

    def test_stack_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--stack", "quantum"])

    def test_scenario_choices_match_registry(self):
        from repro.cli import FUZZ_SCENARIO_KINDS
        from repro.scenarios import SCENARIO_KINDS

        assert set(FUZZ_SCENARIO_KINDS) == set(SCENARIO_KINDS)


class TestSeededOutPaths:
    """Bare ``--out`` derives a per-(command, seed) filename, fixing the
    report collision when several seeds run in one directory."""

    def test_chaos_out_unique_per_seed(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        for seed in (1, 2):
            assert main([
                "chaos", "--seed", str(seed), "--duration", "8", "--out",
            ]) == 0
        capsys.readouterr()
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        assert names == [
            "chaos-report-seed1.json", "chaos-report-seed2.json",
        ]

    def test_commands_never_collide(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["chaos", "--seed", "3", "--duration", "8", "--out"]) == 0
        assert main([
            "fuzz", "--seed", "3", "--cases", "1", "--duration", "8",
            "--stack", "mono", "--out",
        ]) == 0
        capsys.readouterr()
        names = sorted(p.name for p in tmp_path.glob("*.json"))
        assert names == [
            "chaos-report-seed3.json", "fuzz-report-seed3.json",
        ]

    def test_explicit_out_path_respected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main([
            "chaos", "--seed", "1", "--duration", "8",
            "--out", "mine.json",
        ]) == 0
        capsys.readouterr()
        assert (tmp_path / "mine.json").exists()


class TestFuzzCommand:
    def test_scenario_mode_prints_digest(self, capsys):
        assert main([
            "fuzz", "--scenario", "zipf_mix", "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "zipf_mix" in out and "digest" in out

    def test_fuzz_mono_green(self, capsys):
        assert main([
            "fuzz", "--seed", "1", "--cases", "1", "--duration", "10",
            "--stack", "mono", "--json",
        ]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert doc["cases_run"] == 1

    def test_plant_self_test_exits_zero(self, capsys):
        assert main([
            "fuzz", "--seed", "1", "--cases", "1", "--duration", "10",
            "--plant",
        ]) == 0
        assert "minimized" in capsys.readouterr().out

    def test_known_good_mismatch_exits_two(self, tmp_path, capsys):
        bogus = tmp_path / "kg.json"
        bogus.write_text('{"seed": 1, "cases": 99}')
        assert main([
            "fuzz", "--seed", "1", "--cases", "1", "--duration", "10",
            "--stack", "mono", "--known-good", str(bogus),
        ]) == 2
