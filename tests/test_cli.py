"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route"])
        assert args.chains == 40
        assert args.scheme == "all"

    def test_route_scheme_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--scheme", "magic"])


class TestCommands:
    def test_topology(self, capsys):
        assert main(["topology", "--cities", "8"]) == 0
        out = capsys.readouterr().out
        assert "PoPs           : 8" in out
        assert "directed links" in out

    def test_route_single_scheme(self, capsys):
        assert main([
            "route", "--chains", "5", "--cities", "8", "--scheme", "dp",
        ]) == 0
        out = capsys.readouterr().out
        assert "SB-DP" in out
        assert "ANYCAST" not in out

    def test_route_baselines(self, capsys):
        assert main([
            "route", "--chains", "5", "--cities", "8",
            "--scheme", "anycast",
        ]) == 0
        assert "ANYCAST" in capsys.readouterr().out

    def test_cache(self, capsys):
        assert main(["cache", "--chains", "3"]) == 0
        out = capsys.readouterr().out
        assert "shared" in out and "siloed" in out

    def test_bus(self, capsys):
        assert main([
            "bus", "--sites", "4", "--publishes", "50", "--rate", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "broadcast" in out

    def test_timing(self, capsys):
        assert main(["timing"]) == 0
        out = capsys.readouterr().out
        assert "chain route update: 594 ms total" in out
        assert "edge site addition: 567 ms" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "--publishes", "100"]) == 0
        out = capsys.readouterr().out
        # The three headline sections of the acceptance criterion:
        # queueing-delay histograms, WAN-drop counters, 2PC timings.
        assert "link.queue_delay_s{link=proxy.A->wan.A}" in out
        assert "bus.wan_drops" in out
        assert "span.2pc.prepare{chain=corp}" in out
        assert "span.2pc.commit{chain=corp}" in out

    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "--publishes", "50", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counters"]["install.completed"] == 1
        assert any(k.startswith("span.2pc.") for k in data["histograms"])
