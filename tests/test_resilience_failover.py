"""Tests for standby-controller failover: durable checkpoints written
by the bus-driven installer, install-phase markers, and lease-based
takeover."""

import pytest

from repro.controller.replication import (
    ReplicatedStore,
    mark_install_phase,
    pending_install_markers,
    restore_installations,
)
from repro.resilience import FailoverManager, ResilienceConfig, RpcConfig

from tests.test_resilience import build, make_installer, spec

REPLICAS = ["ctl.A", "ctl.B", "ctl.C"]


def rehearse():
    """One clean install, to learn the deterministic milestone times."""
    gs = build()
    installer = make_installer(gs)
    timeline = installer.install(spec())
    installer.network.run()
    assert timeline.completed_at is not None
    return timeline


class TestDurableCheckpoints:
    def test_bus_driven_install_round_trips_through_the_store(self):
        """Satellite: restore_installations from checkpoints written by
        the *bus-driven* installer, not just the synchronous path."""
        store = ReplicatedStore(REPLICAS)
        gs = build()
        installer = make_installer(gs, store=store)
        timeline = installer.install(spec())
        installer.network.run()
        assert timeline.completed_at is not None

        restored = restore_installations(store)
        assert set(restored) == {"corp"}
        original = gs.installations["corp"]
        copy = restored["corp"]
        assert copy.label == original.label
        assert copy.committed_load == original.committed_load
        assert copy.ingress_site == original.ingress_site
        assert copy.egress_site == original.egress_site
        # Completed: the transient phase marker must be gone.
        assert pending_install_markers(store) == {}

    def test_chain_checkpointed_mid_install_is_restorable(self):
        """A crash between route publication and configuration: the
        checkpoint plus the 'configuring' marker describe the chain."""
        rehearsal = rehearse()
        mid = (
            rehearsal.route_published_at + rehearsal.completed_at
        ) / 2.0
        store = ReplicatedStore(REPLICAS)
        gs = build()
        installer = make_installer(gs, store=store)
        timeline = installer.install(spec())
        installer.network.run(until=mid)
        assert timeline.route_published_at is not None
        assert timeline.completed_at is None

        restored = restore_installations(store)
        assert set(restored) == {"corp"}
        assert restored["corp"].committed_load == dict(
            installer._pending["corp"].loads
        )
        markers = pending_install_markers(store)
        assert markers["corp"]["phase"] == "configuring"
        assert set(markers["corp"]["loads"]) == set(
            installer._pending["corp"].loads
        )

    def test_mid_2pc_marker_precedes_checkpoint(self):
        rehearsal = rehearse()
        mid = (
            rehearsal.sites_resolved_at + rehearsal.route_committed_at
        ) / 2.0
        store = ReplicatedStore(REPLICAS)
        gs = build()
        installer = make_installer(gs, store=store)
        installer.install(spec())
        installer.network.run(until=mid)
        assert restore_installations(store) == {}
        markers = pending_install_markers(store)
        assert markers["corp"]["phase"] == "committing"


class TestTakeOver:
    def test_uncommitted_install_is_aborted_on_takeover(self):
        """The 2PC outcome of an uncommitted install is unknown to the
        standby: takeover aborts it and releases every participant."""
        rehearsal = rehearse()
        mid = (
            rehearsal.sites_resolved_at + rehearsal.route_committed_at
        ) / 2.0
        store = ReplicatedStore(REPLICAS)
        gs = build()
        installer = make_installer(gs, store=store)
        timeline = installer.install(spec())
        installer.network.run(until=mid)
        assert timeline.route_committed_at is None

        fm = FailoverManager(installer, store)
        fm.take_over("gs-standby")
        installer.network.run()
        assert fm.active == "gs-standby"
        assert timeline.failed == "controller failover"
        assert installer._pending == {}
        service = gs.vnf_services["fw"]
        assert service.pending_reservations() == 0
        assert service.committed("B") == pytest.approx(0.0)
        assert pending_install_markers(store) == {}

    def test_committed_install_is_redriven_to_completion(self):
        """Past route commit the capacity is durably the chain's:
        takeover re-arms the deadline and re-drives configuration."""
        rehearsal = rehearse()
        mid = (
            rehearsal.route_published_at + rehearsal.completed_at
        ) / 2.0
        store = ReplicatedStore(REPLICAS)
        gs = build()
        installer = make_installer(gs, store=store)
        timeline = installer.install(spec())
        installer.network.run(until=mid)
        assert timeline.route_committed_at is not None

        fm = FailoverManager(installer, store)
        fm.take_over("gs-standby")
        installer.network.run()
        assert timeline.completed_at is not None
        assert timeline.failed is None
        assert "corp" in gs.installations

    def test_orphan_committing_marker_is_torn_down(self):
        """A marker with no in-memory pending install (the previous
        coordinator died mid-2PC): participants are torn down and the
        marker cleared."""
        store = ReplicatedStore(REPLICAS)
        gs = build()
        installer = make_installer(gs, store=store)
        service = gs.vnf_services["fw"]
        service.prepare("ghost", "B", 5.0)
        mark_install_phase(store, "ghost", "committing", {("fw", "B"): 5.0})

        fm = FailoverManager(installer, store)
        fm.take_over("gs-standby")
        installer.network.run()
        assert service.pending_reservations() == 0
        assert service.committed("B") == pytest.approx(0.0)
        assert pending_install_markers(store) == {}

    def test_checkpoints_are_adopted_into_empty_memory(self):
        """A standby with empty in-memory state inherits every durable
        installation record."""
        store = ReplicatedStore(REPLICAS)
        gs = build()
        installer = make_installer(gs, store=store)
        timeline = installer.install(spec())
        installer.network.run()
        assert timeline.completed_at is not None
        label = gs.installations["corp"].label

        gs.installations.clear()  # the new controller's cold memory
        fm = FailoverManager(installer, store)
        fm.take_over("gs-standby")
        assert "corp" in gs.installations
        assert gs.installations["corp"].label == label


class TestFailoverLoop:
    def test_crash_mid_install_fails_over_and_settles(self):
        """End to end: the active GS host crashes mid-install; the
        standby waits out the lease, takes over, and the system settles
        with no orphaned participant state."""
        rehearsal = rehearse()
        mid = (
            rehearsal.sites_resolved_at + rehearsal.route_committed_at
        ) / 2.0
        store = ReplicatedStore(REPLICAS)
        gs = build()
        resilience = ResilienceConfig(
            rpc=RpcConfig(timeout_s=0.25, max_retries=8),
            install_deadline_s=8.0,
        )
        installer = make_installer(gs, resilience=resilience, store=store)
        fm = FailoverManager(
            installer, store, lease_duration_s=1.0, check_interval_s=0.25
        )
        fm.start(until=10.0)
        timeline = installer.install(spec())

        def crash() -> None:
            installer.network.crash_host(installer.gs_host)
            fm.mark_dead(fm.active)

        installer.sim.schedule(mid, crash)
        installer.network.run()
        assert fm.takeovers == 1
        assert fm.active == "gs-standby"
        # The install either finished under the new controller or was
        # aborted cleanly -- never left half-done.
        assert (timeline.completed_at is not None) or (
            timeline.failed is not None
        )
        assert installer._pending == {}
        service = gs.vnf_services["fw"]
        assert service.pending_reservations() == 0
        if timeline.failed is not None:
            assert service.committed("B") == pytest.approx(0.0)
