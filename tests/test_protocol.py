"""Tests for the bus-driven (discrete-event) Figure 4 installation."""

import random

import pytest

from repro.bus.bus import make_bus
from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.protocol import (
    BusDrivenInstaller,
    ProtocolDelays,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService

SITES = ["A", "B", "C"]
WAN_DELAY_S = 0.030


def build(fw_cap_b=40.0, seed=11):
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [CloudSite(s, s.lower(), 100.0) for s in SITES]
    vnfs = [VNF("fw", 1.0, {"B": fw_cap_b})]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(seed))
    gs = GlobalSwitchboard(model, dp)
    for site in SITES:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    service = VnfService("fw", 1.0, {"B": fw_cap_b})
    gs.register_vnf_service(service)
    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(ingress)
    edge.register_instance(egress)
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    return gs, dp, service, ingress, egress


def make_installer(gs):
    bus = make_bus(SITES, wan_delay_s=WAN_DELAY_S, uplink_bps=100e6)
    return BusDrivenInstaller(
        gs,
        bus,
        gs_site="A",
        edge_controller_site="A",
        vnf_controller_sites={"fw": "B"},
    )


def spec(name="corp", demand=5.0):
    return ChainSpecification(
        name, "vpn", "in", "out", ["fw"],
        forward_demand=demand,
        src_prefix="10.0.0.0/24",
        dst_prefixes=["20.0.0.0/24"],
    )


class TestBusDrivenInstallation:
    def test_installation_completes(self):
        gs, *_ = build()
        installer = make_installer(gs)
        timeline = installer.install(spec())
        installer.network.run()
        assert timeline.failed is None
        assert timeline.completed_at is not None
        assert timeline.installation is not None
        assert timeline.installation.routed_fraction == pytest.approx(1.0)

    def test_milestones_are_ordered(self):
        gs, *_ = build()
        installer = make_installer(gs)
        timeline = installer.install(spec())
        installer.network.run()
        assert (
            timeline.requested_at
            < timeline.sites_resolved_at
            < timeline.route_committed_at
            <= timeline.route_published_at
            < timeline.completed_at
        )

    def test_latency_reflects_wan_geography(self):
        """The total must cover at least: request hop, edge-resolve RTT,
        2PC prepare+commit RTTs to B, bus propagation, and the config
        delay -- all of which are simulated, not budgeted."""
        gs, *_ = build()
        installer = make_installer(gs)
        timeline = installer.install(spec())
        installer.network.run()
        delays = ProtocolDelays()
        floor = (
            2 * (2 * WAN_DELAY_S)      # prepare + commit RTTs (A<->B)
            + delays.route_compute_s
            + delays.dataplane_config_s
        )
        assert timeline.total_s > floor
        assert timeline.total_s < 1.0  # and it finishes in sub-second

    def test_end_state_matches_synchronous_install(self):
        gs_sync, *_ = build(seed=11)
        gs_sync.create_chain(spec())
        gs_bus, *_ = build(seed=11)
        installer = make_installer(gs_bus)
        installer.install(spec())
        installer.network.run()

        sync_flows = gs_sync.router.solution.stage_flows("corp", 1)
        bus_flows = gs_bus.router.solution.stage_flows("corp", 1)
        assert sync_flows == bus_flows
        sync_inst = gs_sync.installations["corp"]
        bus_inst = gs_bus.installations["corp"]
        assert sync_inst.committed_load == bus_inst.committed_load
        # Rules exist at the same (forwarder, key) pairs.
        sync_rules = {
            (name, key)
            for name, fwd in gs_sync.dataplane.forwarders.items()
            for key in fwd.rules
        }
        bus_rules = {
            (name, key)
            for name, fwd in gs_bus.dataplane.forwarders.items()
            for key in fwd.rules
        }
        assert sync_rules == bus_rules

    def test_packets_flow_after_bus_driven_install(self):
        gs, _dp, _service, ingress, egress = build()
        installer = make_installer(gs)
        installer.install(spec())
        installer.network.run()
        packet = Packet(FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1234, 80))
        ingress.ingress(packet)
        assert egress.delivered
        assert any(e.startswith("fw.") for e in packet.trace)

    def test_rejection_with_no_capacity_left_fails_cleanly(self):
        gs, _dp, service, *_ = build(fw_cap_b=100.0)
        # The VNF controller has quietly given ALL of B away.
        service.prepare("tenant-x", "B", 100.0)
        service.commit("tenant-x", "B")
        installer = make_installer(gs)
        timeline = installer.install(spec(demand=5.0))
        installer.network.run()
        assert timeline.failed is not None
        assert "corp" not in gs.model.chains
        assert service.pending_reservations() == 0

    def test_rejection_recomputes_onto_partial_capacity(self):
        gs, _dp, service, *_ = build(fw_cap_b=100.0)
        # B has only 5 load units left; the first 2PC attempt (load 10)
        # is rejected, the recompute admits the half that fits.
        service.prepare("tenant-x", "B", 95.0)
        service.commit("tenant-x", "B")
        installer = make_installer(gs)
        timeline = installer.install(spec(demand=5.0))
        installer.network.run()
        assert timeline.failed is None
        installation = gs.installations["corp"]
        assert installation.routed_fraction == pytest.approx(0.5)
        assert service.pending_reservations() == 0

    def test_rejection_recomputes_onto_other_site(self):
        """Mirrors the synchronous 2PC test: B rejects, A serves."""
        nodes = ["a", "b", "c"]
        latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
        sites = [CloudSite(s, s.lower(), 100.0) for s in SITES]
        vnfs = [VNF("fw", 1.0, {"A": 100.0, "B": 100.0})]
        model = NetworkModel(nodes, latency, sites, vnfs)
        dp = DataPlane(random.Random(4))
        gs = GlobalSwitchboard(model, dp)
        for site in SITES:
            gs.register_local_switchboard(LocalSwitchboard(site, dp))
        service = VnfService("fw", 1.0, {"A": 100.0, "B": 100.0})
        gs.register_vnf_service(service)
        edge = EdgeController("vpn")
        edge.register_instance(EdgeInstance("edge.A", "A", dp))
        edge.register_instance(EdgeInstance("edge.C", "C", dp))
        edge.register_attachment("in", "A")
        edge.register_attachment("out", "C")
        gs.register_edge_service(edge)
        service.prepare("tenant-x", "B", 95.0)
        service.commit("tenant-x", "B")
        installer = make_installer(gs)
        timeline = installer.install(spec(demand=5.0))
        installer.network.run()
        assert timeline.failed is None
        installation = gs.installations["corp"]
        assert installation.routed_fraction == pytest.approx(1.0)
        assert ("fw", "A") in installation.committed_load

    def test_bus_carries_one_instance_copy_per_site(self):
        gs, *_ = build()
        installer = make_installer(gs)
        installer.install(spec())
        installer.network.run()
        stats = installer.bus.stats
        assert stats.published >= 1
        # Route sites are {A (ingress), B (fw)}; the announcement is
        # published at B, so one WAN copy reaches A's proxy.
        assert stats.wan_messages >= 1
        assert stats.wan_drops == 0

    def test_two_sequential_installations(self):
        gs, _dp, _service, ingress, egress = build()
        installer = make_installer(gs)
        t1 = installer.install(spec("c1"))
        installer.network.run()
        t2 = installer.install(
            ChainSpecification(
                "c2", "vpn", "in", "out", ["fw"],
                forward_demand=3.0, src_prefix="10.1.0.0/24",
                dst_prefixes=["20.0.1.0/24"],
            )
        )
        installer.network.run()
        assert t1.completed_at is not None
        assert t2.completed_at is not None
        assert gs.installations.keys() == {"c1", "c2"}
