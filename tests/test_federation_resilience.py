"""Tests for the partition-tolerant federation deployment: coordinator
failover from the durable WAL, degraded-mode regional autonomy, and the
seeded federated chaos soak."""

import types

import pytest

from repro.chaos import SoakConfig
from repro.chaos import run_soak as run_chaos_soak
from repro.cli import main
from repro.federation import (
    FederationChaosConfig,
    build_federation_deployment,
    check_ledger_consistency,
    generate_federation_scenario,
    run_federation_chaos,
)


def small_config(**overrides):
    defaults = dict(
        seed=3,
        duration_s=30.0,
        pops=12,
        regions=3,
        chains=24,
        locality=0.5,
        lease_duration_s=1.0,
        check_interval_s=0.25,
        install_deadline_s=3.0,
    )
    defaults.update(overrides)
    return FederationChaosConfig(**defaults)


def quiet_config(**overrides):
    """A deployment config with no scheduled faults (tests inject their
    own)."""
    defaults = dict(
        link_flaps=0,
        partition=False,
        coordinator_crash=False,
        region_restart=False,
    )
    defaults.update(overrides)
    return small_config(**defaults)


def cross_shard_chain(d, config):
    """A live cross-shard chain that installs cleanly absent faults
    (learned from a no-fault rehearsal of the same seeded deployment,
    so a 'rejected' in the real run can only come from the fault)."""
    rehearsal = build_federation_deployment(config)
    candidates = []
    for chain in rehearsal.live_chains:
        ingress = rehearsal.primary.shard_map.region_of(
            rehearsal.model, chain.ingress
        )
        egress = rehearsal.primary.shard_map.region_of(
            rehearsal.model, chain.egress
        )
        if ingress != egress:
            rehearsal.region_nodes[ingress].submit(chain)
            candidates.append((chain.name, ingress))
    rehearsal.net.run(until=10.0)
    for name, ingress in candidates:
        if rehearsal.region_nodes[ingress].outcomes.get(name) == "installed":
            chain = next(c for c in d.live_chains if c.name == name)
            return chain, ingress
    pytest.skip("workload produced no cleanly installable cross chain")


def ledger_occupancy(regional):
    """Total committed+prepared border occupancy, per ledger."""
    return {
        name: (
            sum(ledger.committed.values()),
            sum(ledger.prepared.values()),
        )
        for name, ledger in regional.ledgers.items()
    }


class TestPartitionMidPrepare:
    def test_partition_mid_prepare_aborts_cleanly_then_drains_on_heal(self):
        """A region partitioned away mid-prepare: the round aborts with
        zero border-ledger leak, the origin keeps the chain queued, and
        the queue drains once the partition heals."""
        config = quiet_config()
        d = build_federation_deployment(config)
        d.failover.start(until=config.duration_s)
        chain, origin = cross_shard_chain(d, config)
        origin_node = d.region_nodes[origin]

        before = {
            r: ledger_occupancy(d.primary.regionals[r])
            for r in d.region_nodes
        }

        # Submit at t=1 and cut every region off from the coordinators
        # at t=1.01 -- after the submit forwards, before any prepare
        # reply can arrive (one-way coordinator<->region delay is 20ms).
        d.sim.schedule_at(1.0, origin_node.submit, chain)
        d.sim.schedule_at(
            1.01,
            d.net.partition,
            [list(d.failover.order), [n.host for n in d.region_nodes.values()]],
        )
        d.net.run(until=10.0)

        # Aborted, not installed: the origin still queues the chain and
        # every ledger is back to its pre-submit occupancy (no leak).
        assert chain.name not in d.primary._cross
        assert chain.name in origin_node.queued()
        for r, node in d.region_nodes.items():
            assert ledger_occupancy(d.primary.regionals[r]) == before[r]
            assert not d.primary.regionals[r].prepared_segments()

        d.net.heal_partition()
        active = d.failover.active
        active.reconcile_all()
        d.net.run(until=config.duration_s)
        d.net.run()

        assert origin_node.outcomes[chain.name] == "installed"
        assert not origin_node.queued()
        assert chain.name in active._cross
        assert check_ledger_consistency(active) == []


class TestRegionalRestart:
    def test_restart_readopts_committed_segments_and_ledgers(self):
        """A regional control-process restart wipes the switchboard;
        resync + reconciliation re-adopts the committed segments and
        rebuilds the border-ledger occupancy."""
        config = quiet_config()
        d = build_federation_deployment(config)
        d.failover.start(until=config.duration_s)

        # Pick a region that owns committed cross-shard segments.
        region = next(
            (
                r
                for r, node in sorted(d.region_nodes.items())
                if d.primary.regionals[r].committed_segments()
            ),
            None,
        )
        assert region is not None, "base population has no cross chain"
        regional = d.primary.regionals[region]
        committed_before = set(regional.committed_segments())
        ledgers_before = ledger_occupancy(regional)
        assert committed_before  # non-vacuous

        node = d.region_nodes[region]
        d.net.restart_host(node.host)
        node.restart()
        # The restart really wiped the volatile state.
        assert not regional.committed_segments()
        assert node.needs_resync

        d.net.run(until=10.0)

        assert set(regional.committed_segments()) == committed_before
        assert ledger_occupancy(regional) == ledgers_before
        assert not node.needs_resync
        assert check_ledger_consistency(d.failover.active) == []


class TestCoordinatorFailover:
    def test_standby_redrives_committed_but_unacked_install(self):
        """The primary crashes at the 2PC commit point -- WAL flipped,
        durable record written, no commit message sent.  The standby
        takes over, finds the 'committing' WAL entry, and re-drives the
        commits until every region holds the segments."""
        config = quiet_config()
        d = build_federation_deployment(config)
        d.failover.start(until=config.duration_s)
        chain, origin = cross_shard_chain(d, config)
        origin_node = d.region_nodes[origin]

        snapshot = {}

        def crash_instead(self, st):
            # Snapshot the decided-but-unsent state, then crash.
            snapshot["wal_phase"] = d.fed_store.pending_wal()[
                st.chain.name
            ]["phase"]
            snapshot["committed"] = {
                seg.chain.name: seg.chain.name
                in d.primary.regionals[seg.region].committed_segments()
                for seg in st.segments
            }
            snapshot["segments"] = [
                (seg.chain.name, seg.region) for seg in st.segments
            ]
            d.failover.crash_active()

        d.primary._send_commits = types.MethodType(crash_instead, d.primary)

        d.sim.schedule_at(1.0, origin_node.submit, chain)
        d.net.run(until=config.duration_s)
        d.net.run()

        # The crash really hit the commit point: WAL said "committing"
        # and no region had committed yet (proves the test is not
        # passing vacuously on an already-finished install).
        assert snapshot["wal_phase"] == "committing"
        assert snapshot["committed"]
        assert not any(snapshot["committed"].values())

        assert d.failover.takeovers == 1
        assert d.standby.active
        assert d.standby.recovered_commits == 1
        assert chain.name in d.standby._cross
        for key, region in snapshot["segments"]:
            assert key in d.standby.regionals[region].committed_segments()
        assert origin_node.outcomes[chain.name] == "installed"
        # Reconciliation settled the owed commits and cleared the WAL.
        assert d.standby._unacked == {}
        assert d.fed_store.pending_wal() == {}
        assert check_ledger_consistency(
            d.standby, in_flight=d.in_flight()
        ) == []

    def test_takeover_aborts_uncommitted_wal_rounds(self):
        """A crash *before* the decide point leaves a 'preparing' WAL
        entry; the standby aborts it (release, no tombstone) and the
        origin's queued retry re-installs the chain."""
        config = quiet_config()
        d = build_federation_deployment(config)
        d.failover.start(until=config.duration_s)
        chain, origin = cross_shard_chain(d, config)
        origin_node = d.region_nodes[origin]

        def crash_instead(self, st, index):
            d.failover.crash_active()

        d.primary._prepare_next = types.MethodType(crash_instead, d.primary)

        d.sim.schedule_at(1.0, origin_node.submit, chain)
        d.net.run(until=config.duration_s)
        d.net.run()

        assert d.standby.active
        assert d.standby.aborted_recoveries == 1
        # The origin's retry reached the standby and the chain made it.
        assert origin_node.outcomes[chain.name] == "installed"
        assert chain.name in d.standby._cross
        assert d.fed_store.pending_wal() == {}
        assert check_ledger_consistency(d.standby) == []


class TestFederatedChaosSoak:
    def test_multi_seed_soak_passes_and_replays_byte_identically(self):
        for seed in (1, 2):
            config = small_config(seed=seed)
            first = run_federation_chaos(config)
            assert first.passed, [
                (v.invariant, v.detail) for v in first.violations
            ]
            assert first.takeovers >= 1
            assert first.queued_final == 0
            again = run_federation_chaos(config)
            assert again.to_json() == first.to_json()

    def test_scenario_is_deterministic_per_seed(self):
        config = small_config(seed=5)
        a = generate_federation_scenario(config)
        b = generate_federation_scenario(config)
        assert a.digest() == b.digest()
        assert a.to_json() == b.to_json()
        kinds = {event.kind for event in a.events}
        assert "gs_crash" in kinds
        assert "partition" in kinds


class TestUnifiedProbeRegistry:
    def test_chaos_runner_accepts_extra_probes(self):
        """Satellite: the generic chaos runner runs externally supplied
        invariant probes on its checker cadence."""
        hits = []

        def tattletale():
            hits.append(True)
            return ["synthetic problem"] if len(hits) == 1 else []

        report = run_chaos_soak(
            SoakConfig(seed=1, duration_s=10.0, num_chains=2),
            extra_probes={"tattletale": tattletale},
        )
        assert hits  # the probe really ran on the checker cadence
        assert any(v.invariant == "tattletale" for v in report.violations)


class TestChaosSoakCli:
    def test_federation_chaos_soak_smoke(self, capsys):
        rc = main([
            "federation", "--chaos-soak",
            "--pops", "12", "--chains", "24", "--regions", "3",
            "--seed", "3", "--duration", "30",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "federated chaos soak" in out
        assert "PASS" in out

    def test_federation_chaos_soak_json(self, capsys):
        import json

        rc = main([
            "federation", "--chaos-soak", "--json",
            "--pops", "12", "--chains", "24", "--regions", "3",
            "--seed", "3", "--duration", "30",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        doc = json.loads(out)
        assert doc["violations"] == []
        assert doc["seed"] == 3
