"""Tests for the message aggregator and the coroutine process API."""

import pytest

from repro.bus import Topic, make_bus
from repro.bus.aggregator import AggregatorError, MessageAggregator
from repro.simnet.events import Simulator
from repro.simnet.process import Process, ProcessError

SITES = ["S0", "S1"]
TOPIC = Topic("c1", "e1", "G", "S0", "instances")


def make_aggregating_bus(window_s=0.05):
    bus = make_bus(SITES, wan_delay_s=0.02, uplink_bps=100e6)
    bus.attach("lsb", "S0")
    bus.attach("sub", "S1")
    bus.subscribe("sub", TOPIC)
    return bus, MessageAggregator(bus, "lsb", window_s=window_s)


class TestMessageAggregator:
    def test_items_within_window_become_one_publication(self):
        bus, agg = make_aggregating_bus(window_s=0.05)
        for i in range(8):
            bus.network.sim.schedule(i * 0.005, agg.collect, TOPIC, f"u{i}")
        bus.network.run()
        assert bus.stats.published == 1
        assert bus.stats.wan_messages == 1
        payload = bus.clients["sub"].received[0][2]
        assert payload["batch"] == [f"u{i}" for i in range(8)]

    def test_items_across_windows_batch_separately(self):
        bus, agg = make_aggregating_bus(window_s=0.05)
        bus.network.sim.schedule(0.0, agg.collect, TOPIC, "a")
        bus.network.sim.schedule(0.2, agg.collect, TOPIC, "b")
        bus.network.run()
        assert bus.stats.published == 2
        assert agg.stats.compression == 1.0

    def test_compression_statistic(self):
        bus, agg = make_aggregating_bus(window_s=0.1)
        for i in range(10):
            bus.network.sim.schedule(i * 0.005, agg.collect, TOPIC, i)
        bus.network.run()
        assert agg.stats.compression == 10.0

    def test_topics_batched_independently(self):
        other = Topic("c2", "e1", "H", "S0", "forwarders")
        bus, agg = make_aggregating_bus()
        bus.subscribe("sub", other)
        bus.network.sim.schedule(0.0, agg.collect, TOPIC, "x")
        bus.network.sim.schedule(0.0, agg.collect, other, "y")
        bus.network.run()
        assert bus.stats.published == 2

    def test_flush_all_publishes_immediately(self):
        bus, agg = make_aggregating_bus(window_s=10.0)
        agg.collect(TOPIC, "x")
        assert agg.pending_items(TOPIC) == 1
        agg.flush_all()
        bus.network.run()
        assert bus.stats.published == 1
        assert agg.pending_items(TOPIC) == 0

    def test_invalid_window_rejected(self):
        bus, _ = make_aggregating_bus()
        with pytest.raises(AggregatorError):
            MessageAggregator(bus, "lsb", window_s=0.0)


class TestProcess:
    def test_sleep_advances_clock(self):
        sim = Simulator()
        times = []

        def body(proc):
            times.append(sim.now)
            yield 1.5
            times.append(sim.now)
            yield 0.5
            times.append(sim.now)

        Process(sim, body)
        sim.run()
        assert times == [0.0, 1.5, 2.0]

    def test_receive_blocks_until_delivery(self):
        sim = Simulator()
        got = []

        def consumer(proc):
            message = yield proc.receive()
            got.append((sim.now, message))

        consumer_proc = Process(sim, consumer)
        sim.schedule(3.0, consumer_proc.deliver, "hello")
        sim.run()
        assert got == [(3.0, "hello")]

    def test_queued_message_consumed_immediately(self):
        sim = Simulator()
        got = []

        def consumer(proc):
            yield 5.0
            message = yield proc.receive()
            got.append(message)

        consumer_proc = Process(sim, consumer)
        sim.schedule(1.0, consumer_proc.deliver, "early")
        sim.run()
        assert got == ["early"]

    def test_result_captured_on_completion(self):
        sim = Simulator()

        def body(proc):
            yield 1.0
            return 42

        proc = Process(sim, body)
        sim.run()
        assert proc.finished
        assert proc.result == 42

    def test_two_processes_ping_pong(self):
        sim = Simulator()
        transcript = []
        procs = {}

        def ping(proc):
            yield 1.0
            procs["pong"].deliver("ping")
            reply = yield proc.receive()
            transcript.append((sim.now, reply))

        def pong(proc):
            message = yield proc.receive()
            transcript.append((sim.now, message))
            yield 2.0
            procs["ping"].deliver("pong")

        procs["ping"] = Process(sim, ping, name="ping")
        procs["pong"] = Process(sim, pong, name="pong")
        sim.run()
        assert transcript == [(1.0, "ping"), (3.0, "pong")]

    def test_deliver_to_finished_process_rejected(self):
        sim = Simulator()

        def body(proc):
            yield 0.1

        proc = Process(sim, body)
        sim.run()
        with pytest.raises(ProcessError):
            proc.deliver("late")

    def test_bad_yield_value_crashes(self):
        sim = Simulator()

        def body(proc):
            yield "nonsense"

        Process(sim, body)
        with pytest.raises(ProcessError):
            sim.run()

    def test_negative_sleep_crashes(self):
        sim = Simulator()

        def body(proc):
            yield -1.0

        Process(sim, body)
        with pytest.raises(ProcessError):
            sim.run()
