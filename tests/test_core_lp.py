"""Tests for SB-LP: optimality, constraints, objectives."""

import pytest

from repro.core.lp import LpError, LpObjective, solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF


def small_model(chain_demand=5.0, fw_cap_a=10.0, fw_cap_b=50.0):
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", 100.0),
        CloudSite("B", "b", 100.0),
        CloudSite("C", "c", 100.0),
    ]
    vnfs = [VNF("fw", 1.0, {"A": fw_cap_a, "B": fw_cap_b})]
    chains = [Chain("c1", "a", "c", ["fw"], chain_demand, 0.0)]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


class TestMinLatency:
    def test_solves_to_optimality(self):
        result = solve_chain_routing_lp(small_model())
        assert result.ok
        assert result.solution is not None
        result.solution.validate()

    def test_routes_all_demand(self):
        result = solve_chain_routing_lp(small_model())
        assert result.solution.routed_fraction("c1") == pytest.approx(1.0)

    def test_prefers_lower_latency_site(self):
        # Via A: 0 + 30 = 30; via B: 10 + 15 = 25 -> everything on B.
        result = solve_chain_routing_lp(small_model(chain_demand=5.0))
        assert result.solution.fraction("c1", 1, "a", "B") == pytest.approx(1.0)

    def test_objective_equals_weighted_latency(self):
        result = solve_chain_routing_lp(small_model())
        assert result.objective == pytest.approx(
            result.solution.total_weighted_latency()
        )

    def test_splits_when_capacity_binds(self):
        # fw at B can only carry 2.5 demand units (load 2*d <= 5).
        model = small_model(chain_demand=5.0, fw_cap_b=5.0, fw_cap_a=100.0)
        result = solve_chain_routing_lp(model)
        assert result.ok
        b_frac = result.solution.fraction("c1", 1, "a", "B")
        assert 0 < b_frac < 1
        result.solution.validate()

    def test_infeasible_when_demand_exceeds_capacity(self):
        model = small_model(chain_demand=100.0, fw_cap_a=5.0, fw_cap_b=5.0)
        result = solve_chain_routing_lp(model)
        assert result.status == "infeasible"
        assert result.solution is None

    def test_no_chains_raises(self):
        model = small_model()
        model.remove_chain("c1")
        with pytest.raises(LpError):
            solve_chain_routing_lp(model)


class TestMaxThroughput:
    def test_partial_routing_when_capacity_short(self):
        model = small_model(chain_demand=100.0, fw_cap_a=5.0, fw_cap_b=5.0)
        result = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert result.ok
        routed = result.solution.routed_fraction("c1")
        # Total fw capacity 10 = load 2*traffic -> 5 traffic of 100 = 5%.
        assert routed == pytest.approx(0.05, rel=1e-3)
        result.solution.validate()

    def test_routes_everything_when_feasible(self):
        result = solve_chain_routing_lp(small_model(), LpObjective.MAX_THROUGHPUT)
        assert result.solution.routed_fraction("c1") == pytest.approx(1.0)

    def test_latency_tiebreak_picks_short_path(self):
        result = solve_chain_routing_lp(small_model(), LpObjective.MAX_THROUGHPUT)
        assert result.solution.fraction("c1", 1, "a", "B") == pytest.approx(
            1.0, abs=1e-4
        )

    def test_multi_chain_joint_optimization(self):
        model = small_model(fw_cap_a=12.0, fw_cap_b=12.0)
        model.add_chain(Chain("c2", "b", "c", ["fw"], 5.0))
        result = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert result.ok
        total = result.solution.throughput()
        # Combined demand 10; combined fw load capacity 24 -> 12 traffic.
        assert total == pytest.approx(10.0, rel=1e-3)
        result.solution.validate()


class TestMluConstraint:
    def make_linked_model(self, bandwidth=8.0):
        nodes = ["a", "b"]
        latency = {("a", "b"): 10.0}
        sites = [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)]
        vnfs = [VNF("fw", 0.1, {"B": 100.0})]
        chains = [Chain("c1", "a", "b", ["fw"], 10.0, 0.0)]
        links = [
            Link("ab", "a", "b", bandwidth),
            Link("ba", "b", "a", bandwidth),
        ]
        routing = {("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0}}
        return NetworkModel(
            nodes, latency, sites, vnfs, chains, links, routing, mlu_limit=1.0
        )

    def test_link_capacity_limits_throughput(self):
        model = self.make_linked_model(bandwidth=8.0)
        result = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        # The a->b link carries the chain's 10 units but only 8 fit.
        assert result.solution.throughput() == pytest.approx(8.0, rel=1e-3)

    def test_min_latency_infeasible_beyond_link_capacity(self):
        model = self.make_linked_model(bandwidth=8.0)
        result = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
        assert result.status == "infeasible"

    def test_disabling_mlu_ignores_links(self):
        model = self.make_linked_model(bandwidth=8.0)
        result = solve_chain_routing_lp(
            model, LpObjective.MAX_THROUGHPUT, enforce_mlu=False
        )
        assert result.solution.throughput() == pytest.approx(10.0, rel=1e-3)

    def test_background_traffic_consumes_headroom(self):
        model = self.make_linked_model(bandwidth=8.0)
        links = [
            Link("ab", "a", "b", 8.0, background=4.0),
            Link("ba", "b", "a", 8.0),
        ]
        model = NetworkModel(
            model.nodes,
            {("a", "b"): 10.0},
            model.sites.values(),
            model.vnfs.values(),
            model.chains.values(),
            links,
            model.routing,
        )
        result = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert result.solution.throughput() == pytest.approx(4.0, rel=1e-3)


class TestMinMlu:
    def make_two_path_model(self, demand=8.0):
        """Two parallel links a->b; fw at B only, so the chain's traffic
        can split across links only via the underlay fractions -- instead
        we give fw at two sites reached over different links."""
        nodes = ["a", "b", "c"]
        latency = {("a", "b"): 10.0, ("a", "c"): 10.0, ("b", "c"): 5.0}
        sites = [CloudSite("B", "b", 1000.0), CloudSite("C", "c", 1000.0)]
        vnfs = [VNF("fw", 0.01, {"B": 1000.0, "C": 1000.0})]
        chains = [Chain("c1", "a", "a", ["fw"], demand, 0.0)]
        links = [
            Link("ab", "a", "b", 10.0), Link("ba", "b", "a", 10.0),
            Link("ac", "a", "c", 10.0), Link("ca", "c", "a", 10.0),
        ]
        routing = {
            ("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0},
            ("a", "c"): {"ac": 1.0}, ("c", "a"): {"ca": 1.0},
        }
        return NetworkModel(nodes, latency, sites, vnfs, chains,
                            links, routing)

    def test_balances_load_across_links(self):
        model = self.make_two_path_model(demand=8.0)
        result = solve_chain_routing_lp(model, LpObjective.MIN_MLU)
        assert result.ok
        # 8 units split over two 10-unit paths -> MLU 0.4.
        assert result.objective == pytest.approx(0.4, abs=1e-4)
        assert result.solution.max_link_utilization() == pytest.approx(
            0.4, abs=1e-4
        )
        flows = result.solution.stage_flows("c1", 1)
        assert flows[("a", "B")] == pytest.approx(0.5, abs=1e-3)
        assert flows[("a", "C")] == pytest.approx(0.5, abs=1e-3)

    def test_min_mlu_routes_all_demand(self):
        model = self.make_two_path_model()
        result = solve_chain_routing_lp(model, LpObjective.MIN_MLU)
        assert result.solution.routed_fraction("c1") == pytest.approx(1.0)

    def test_min_mlu_can_exceed_the_budget(self):
        # Demand larger than the combined link capacity: MIN_MLU still
        # solves and reports a beta above 1 (the best achievable).
        model = self.make_two_path_model(demand=30.0)
        result = solve_chain_routing_lp(model, LpObjective.MIN_MLU)
        assert result.ok
        assert result.objective == pytest.approx(1.5, abs=1e-3)

    def test_min_mlu_accounts_background(self):
        model = self.make_two_path_model(demand=8.0)
        links = [
            Link("ab", "a", "b", 10.0, background=5.0),
            Link("ba", "b", "a", 10.0),
            Link("ac", "a", "c", 10.0),
            Link("ca", "c", "a", 10.0),
        ]
        model = NetworkModel(
            model.nodes,
            {("a", "b"): 10.0, ("a", "c"): 10.0, ("b", "c"): 5.0},
            model.sites.values(),
            model.vnfs.values(),
            model.chains.values(),
            links,
            model.routing,
        )
        result = solve_chain_routing_lp(model, LpObjective.MIN_MLU)
        # Balance point: x*8+5 = (1-x)*8 -> the optimizer pushes traffic
        # off the pre-loaded link; both links end at utilization 0.65.
        assert result.objective == pytest.approx(0.65, abs=1e-3)

    def test_min_mlu_beats_min_latency_on_mlu(self):
        model = self.make_two_path_model(demand=8.0)
        mlu = solve_chain_routing_lp(model, LpObjective.MIN_MLU)
        latency = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
        assert (
            mlu.solution.max_link_utilization()
            <= latency.solution.max_link_utilization() + 1e-9
        )

    def test_requires_links(self):
        model = small_model()
        with pytest.raises(LpError):
            solve_chain_routing_lp(model, LpObjective.MIN_MLU)


class TestReportedShape:
    def test_counts_variables_and_constraints(self):
        result = solve_chain_routing_lp(small_model())
        # Stage 1: a->{A,B}; stage 2: {A,B}->c -> 4 variables.
        assert result.num_variables == 4
        assert result.num_constraints > 0
        assert result.solve_seconds >= 0.0
