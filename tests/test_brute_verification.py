"""Brute-force verification of the DP recurrence and protocol equivalence.

Two of the strongest correctness anchors in the suite:

1. on enumerable instances at zero load, SB-DP's path must equal the
   brute-force latency optimum exactly (the Equation 8 recurrence is an
   exact shortest-path computation in that regime);
2. the bus-driven Figure 4 protocol must leave the deployment in the
   same state as the synchronous installation path, for randomized
   deployments.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brute import BruteForceError, enumerate_paths, min_latency_path
from repro.core.dp import DpConfig, route_chains_dp
from repro.core.model import Chain, CloudSite, NetworkModel, VNF


@st.composite
def enumerable_model(draw):
    """A random model small enough to brute-force: <= 4 sites, chain of
    <= 3 VNFs, ample capacity (so load never constrains)."""
    rng = random.Random(draw(st.integers(0, 100_000)))
    num_nodes = draw(st.integers(3, 5))
    nodes = [f"n{i}" for i in range(num_nodes)]
    coords = {n: (rng.uniform(0, 40), rng.uniform(0, 40)) for n in nodes}
    latency = {}
    for i, n1 in enumerate(nodes):
        for n2 in nodes[i + 1:]:
            (x1, y1), (x2, y2) = coords[n1], coords[n2]
            latency[(n1, n2)] = ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5 + 0.5
    sites = [
        CloudSite(f"S{i}", node, 1e9) for i, node in enumerate(nodes)
    ]
    num_vnfs = draw(st.integers(1, 3))
    vnfs = []
    for v in range(num_vnfs):
        deployments = rng.sample(sites, rng.randint(1, len(sites)))
        vnfs.append(
            VNF(f"f{v}", 1.0, {s.name: 1e9 for s in deployments})
        )
    ingress, egress = rng.sample(nodes, 2)
    chain = Chain(
        "c0", ingress, egress, [f"f{v}" for v in range(num_vnfs)], 1.0
    )
    return NetworkModel(nodes, latency, sites, vnfs, [chain])


class TestDpMatchesBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(enumerable_model())
    def test_dp_latency_equals_brute_force_optimum(self, model):
        chain = model.chains["c0"]
        optimum = min_latency_path(model, chain)
        result = route_chains_dp(model, DpConfig.latency_only())
        assert result.fully_routed
        dp_latency = result.solution.chain_latency("c0")
        assert dp_latency == pytest.approx(optimum.latency, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(enumerable_model())
    def test_full_dp_at_zero_load_also_optimal(self, model):
        # With astronomically large capacities the utilization penalty is
        # ~0, so full SB-DP must also land on the latency optimum.
        chain = model.chains["c0"]
        optimum = min_latency_path(model, chain)
        result = route_chains_dp(model)
        dp_latency = result.solution.chain_latency("c0")
        assert dp_latency == pytest.approx(optimum.latency, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(enumerable_model())
    def test_lp_min_latency_matches_brute_force(self, model):
        from repro.core.lp import LpObjective, solve_chain_routing_lp

        chain = model.chains["c0"]
        optimum = min_latency_path(model, chain)
        result = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
        assert result.ok
        # Objective = demand (1.0 per stage) x path latency.
        assert result.objective == pytest.approx(optimum.latency, rel=1e-6)

    def test_enumeration_counts_paths(self):
        nodes = ["a", "b"]
        latency = {("a", "b"): 1.0}
        sites = [CloudSite("A", "a", 10.0), CloudSite("B", "b", 10.0)]
        vnfs = [
            VNF("f0", 1.0, {"A": 10.0, "B": 10.0}),
            VNF("f1", 1.0, {"A": 10.0, "B": 10.0}),
        ]
        chain = Chain("c", "a", "b", ["f0", "f1"], 1.0)
        model = NetworkModel(nodes, latency, sites, vnfs, [chain])
        assert len(enumerate_paths(model, chain)) == 4  # 2 x 2

    def test_enumeration_cap(self):
        nodes = [f"n{i}" for i in range(8)]
        latency = {
            (a, b): 1.0
            for i, a in enumerate(nodes)
            for b in nodes[i + 1:]
        }
        sites = [CloudSite(f"S{i}", n, 10.0) for i, n in enumerate(nodes)]
        caps = {s.name: 10.0 for s in sites}
        vnfs = [VNF(f"f{v}", 1.0, caps) for v in range(8)]
        chain = Chain("c", "n0", "n1", [v.name for v in vnfs], 1.0)
        model = NetworkModel(nodes, latency, sites, vnfs, [chain])
        with pytest.raises(BruteForceError):
            enumerate_paths(model, chain, max_paths=1000)


# ---------------------------------------------------------------------------
# Bus-driven protocol equivalence over randomized deployments
# ---------------------------------------------------------------------------

from repro.bus.bus import make_bus  # noqa: E402
from repro.controller import (  # noqa: E402
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.protocol import BusDrivenInstaller  # noqa: E402
from repro.dataplane import DataPlane  # noqa: E402
from repro.edge import EdgeController, EdgeInstance  # noqa: E402
from repro.vnf import VnfService  # noqa: E402


def random_deployment(seed: int):
    rng = random.Random(seed)
    nodes = ["a", "b", "c", "d"]
    site_names = [n.upper() for n in nodes]
    latency = {}
    coords = {n: (rng.uniform(0, 30), rng.uniform(0, 30)) for n in nodes}
    for i, n1 in enumerate(nodes):
        for n2 in nodes[i + 1:]:
            (x1, y1), (x2, y2) = coords[n1], coords[n2]
            latency[(n1, n2)] = ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5 + 1.0
    sites = [CloudSite(s, s.lower(), 500.0) for s in site_names]
    num_vnfs = rng.randint(1, 2)
    vnf_caps = {}
    for v in range(num_vnfs):
        deployments = rng.sample(site_names, rng.randint(1, 3))
        vnf_caps[f"f{v}"] = {s: rng.uniform(20, 60) for s in deployments}
    vnfs = [VNF(name, 1.0, caps) for name, caps in vnf_caps.items()]
    model = NetworkModel(nodes, latency, sites, vnfs)

    dp = DataPlane(random.Random(seed + 1))
    gs = GlobalSwitchboard(model, dp)
    for site in site_names:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    for name, caps in vnf_caps.items():
        gs.register_vnf_service(VnfService(name, 1.0, dict(caps)))
    edge = EdgeController("vpn")
    ingress_site, egress_site = rng.sample(site_names, 2)
    edge.register_instance(EdgeInstance(f"edge.{ingress_site}", ingress_site, dp))
    edge.register_instance(EdgeInstance(f"edge.{egress_site}", egress_site, dp))
    edge.register_attachment("in", ingress_site)
    edge.register_attachment("out", egress_site)
    gs.register_edge_service(edge)
    spec = ChainSpecification(
        "corp", "vpn", "in", "out", sorted(vnf_caps),
        forward_demand=rng.uniform(1.0, 8.0),
        src_prefix="10.0.0.0/24",
        dst_prefixes=["20.0.0.0/24"],
    )
    controller_sites = {
        name: sorted(caps)[0] for name, caps in vnf_caps.items()
    }
    return gs, spec, controller_sites


class TestProtocolEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_bus_driven_matches_synchronous(self, seed):
        gs_sync, spec, _sites = random_deployment(seed)
        gs_sync.create_chain(spec)

        gs_bus, spec2, controller_sites = random_deployment(seed)
        bus = make_bus(
            [s for s in gs_bus.locals], wan_delay_s=0.02, uplink_bps=100e6
        )
        installer = BusDrivenInstaller(
            gs_bus,
            bus,
            gs_site=sorted(gs_bus.locals)[0],
            edge_controller_site=sorted(gs_bus.locals)[0],
            vnf_controller_sites=controller_sites,
        )
        timeline = installer.install(spec2)
        installer.network.run()
        assert timeline.failed is None

        chain = gs_sync.model.chains["corp"]
        for z in range(1, chain.num_stages + 1):
            assert gs_sync.router.solution.stage_flows(
                "corp", z
            ) == pytest.approx(gs_bus.router.solution.stage_flows("corp", z))
        assert gs_sync.installations["corp"].committed_load == pytest.approx(
            gs_bus.installations["corp"].committed_load
        )
