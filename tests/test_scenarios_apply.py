"""WorkloadEngine: logical ops applied tolerantly to a live deployment."""

from repro.chaos import SoakConfig, run_soak
from repro.chaos.runner import build_deployment
from repro.scenarios import WorkloadOp, WorkloadSchedule, generate
from repro.scenarios.apply import WorkloadEngine


def make_engine(seed=1):
    deployment = build_deployment(SoakConfig(seed=seed, duration_s=10.0))
    return deployment, WorkloadEngine(deployment)


def run_schedule(engine, deployment, ops, duration_s=10.0):
    engine.schedule(WorkloadSchedule(
        kind="test", seed=1, duration_s=duration_s, ops=ops))
    deployment.net.run(until=duration_s)


class TestCreateRemove:
    def test_create_installs_chain(self):
        deployment, engine = make_engine()
        run_schedule(engine, deployment, [
            WorkloadOp(at=1.0, op="create", chain="wl-t-0",
                       ingress=0, egress=1, stages=2, value=1.0),
        ])
        assert engine.counts["created"] == 1
        assert "wl-t-0" in deployment.gs.model.chains

    def test_remove_deletes_chain(self):
        deployment, engine = make_engine()
        run_schedule(engine, deployment, [
            WorkloadOp(at=1.0, op="create", chain="wl-t-0", value=1.0),
            WorkloadOp(at=2.0, op="remove", chain="wl-t-0"),
        ])
        assert engine.counts["removed"] == 1
        assert "wl-t-0" not in deployment.gs.model.chains

    def test_remove_of_unknown_chain_is_skipped_not_fatal(self):
        deployment, engine = make_engine()
        run_schedule(engine, deployment, [
            WorkloadOp(at=1.0, op="remove", chain="wl-never-created"),
        ])
        assert engine.counts["remove_skipped"] == 1

    def test_remove_of_base_chain(self):
        deployment, engine = make_engine()
        run_schedule(engine, deployment, [
            WorkloadOp(at=1.0, op="remove", chain="chain0"),
        ])
        assert engine.counts["removed"] == 1
        assert "chain0" not in deployment.gs.model.chains


class TestRedemand:
    def test_redemand_scales_base_chain(self):
        deployment, engine = make_engine()
        before = deployment.gs.model.chains["chain0"].forward_traffic[0]
        run_schedule(engine, deployment, [
            WorkloadOp(at=1.0, op="redemand", chain="chain0", value=1.5),
        ])
        assert engine.counts["redemanded"] == 1
        after = deployment.gs.model.chains["chain0"].forward_traffic[0]
        assert after == before * 1.5

    def test_redemand_of_unknown_chain_is_skipped(self):
        deployment, engine = make_engine()
        run_schedule(engine, deployment, [
            WorkloadOp(at=1.0, op="redemand", chain="wl-ghost", value=2.0),
        ])
        assert engine.counts["redemand_skipped"] == 1

    def test_max_redemand_factor_tracked(self):
        deployment, engine = make_engine()
        run_schedule(engine, deployment, [
            WorkloadOp(at=1.0, op="redemand", chain="chain0", value=1.2),
            WorkloadOp(at=2.0, op="redemand", chain="chain1", value=2.8),
        ])
        assert engine.max_redemand_factor == 2.8


class TestRunSoakIntegration:
    def test_soak_report_carries_workload_fields(self):
        workload = generate("site_churn", 5, duration_s=12.0)
        report = run_soak(SoakConfig(seed=5, duration_s=12.0),
                          workload=workload)
        assert report.workload_digest == workload.digest()
        assert report.workload_ops_applied == len(workload.ops)
        assert sum(report.workload_counts.values()) == len(workload.ops)
        assert "workload" in report.render()

    def test_soak_without_workload_unchanged(self):
        report = run_soak(SoakConfig(seed=1, duration_s=10.0))
        assert report.workload_digest == ""
        assert report.workload_ops_applied == 0
