"""Safety-property tests for the forwarding data plane (Section 5.3).

Conformity, flow affinity, and symmetric return -- including under rule
updates, weight changes, and header-rewriting VNFs.
"""

import random

import pytest

from repro.dataplane.forwarder import (
    DataPlane,
    Forwarder,
    ForwardingError,
    VnfInstance,
)
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice
from repro.vnf.nat import NatFunction


class Sink:
    """A minimal chain endpoint standing in for an egress edge."""

    def __init__(self, name: str):
        self.name = name
        self.received: list[Packet] = []

    def receive_from_chain(self, packet: Packet, came_from: str) -> None:
        packet.record(self.name)
        self.received.append(packet)


def flow(i: int) -> FiveTuple:
    return FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1000 + i, 80)


@pytest.fixture
def fabric():
    """Two-stage chain: ingress fwd -> G instances (2, site B) -> sink.

    Returns (dataplane, ingress forwarder, vnf forwarder, instances, sink).
    """
    dp = DataPlane(random.Random(7))
    f_in = dp.add_forwarder(Forwarder("f.in", "A"))
    f_g = dp.add_forwarder(Forwarder("f.g", "B"))
    g1 = VnfInstance("g1", "G", "B")
    g2 = VnfInstance("g2", "G", "B")
    f_g.attach(g1)
    f_g.attach(g2)
    sink = Sink("egress")
    dp.add_endpoint(sink)
    dp.add_endpoint(Sink("ingress-edge"))  # reverse packets terminate here
    f_in.install_rule(
        1, "E", LoadBalancingRule(next_forwarders=WeightedChoice({"f.g": 1.0}))
    )
    f_g.install_rule(
        1,
        "E",
        LoadBalancingRule(
            local_instances=WeightedChoice({"g1": 1.0, "g2": 1.0}),
            next_forwarders=WeightedChoice({"egress": 1.0}),
        ),
    )
    return dp, f_in, f_g, (g1, g2), sink


def send(dp, i, direction="forward", labels=None):
    packet = Packet(flow(i), labels=labels if labels is not None else Labels(1, "E"))
    if direction == "forward":
        return dp.send_forward(packet, "f.in", "ingress-edge")
    packet.flow = packet.flow.reversed()
    return dp.send_reverse(packet, "f.g", "egress")


class TestConformity:
    def test_packet_visits_chain_elements_in_order(self, fabric):
        dp, _f_in, _f_g, _gs, sink = fabric
        packet = send(dp, 0)
        assert packet.trace[0] == "f.in"
        assert packet.trace[1] == "f.g"
        assert packet.trace[2] in ("g1", "g2")
        assert packet.trace[3] == "egress"
        assert sink.received == [packet]

    def test_unlabelled_packet_dropped(self, fabric):
        dp, *_ = fabric
        packet = Packet(flow(0), labels=None)
        dp.send_forward(packet, "f.in", "edge")
        assert dp.drops and dp.drops[0][1] == "f.in"

    def test_unknown_chain_label_dropped(self, fabric):
        dp, f_in, *_ = fabric
        packet = Packet(flow(0), labels=Labels(99, "E"))
        dp.send_forward(packet, "f.in", "edge")
        assert dp.drops
        assert f_in.packets_dropped == 1

    def test_loops_detected_by_hop_limit(self):
        dp = DataPlane(random.Random(0))
        f1 = dp.add_forwarder(Forwarder("f1", "A"))
        f2 = dp.add_forwarder(Forwarder("f2", "A"))
        f1.install_rule(
            1, "E", LoadBalancingRule(next_forwarders=WeightedChoice({"f2": 1}))
        )
        f2.install_rule(
            1, "E", LoadBalancingRule(next_forwarders=WeightedChoice({"f1": 1}))
        )
        with pytest.raises(ForwardingError, match="hops"):
            dp.send_forward(Packet(flow(0), labels=Labels(1, "E")), "f1", "e")


class TestFlowAffinity:
    def test_same_flow_same_instance(self, fabric):
        dp, *_ = fabric
        first = send(dp, 0)
        chosen = [e for e in first.trace if e.startswith("g")]
        for _ in range(20):
            again = send(dp, 0)
            assert [e for e in again.trace if e.startswith("g")] == chosen

    def test_distinct_flows_spread_over_instances(self, fabric):
        dp, *_ = fabric
        instances = set()
        for i in range(50):
            packet = send(dp, i)
            instances.update(e for e in packet.trace if e.startswith("g"))
        assert instances == {"g1", "g2"}

    def test_affinity_survives_weight_change(self, fabric):
        dp, _f_in, f_g, _gs, _sink = fabric
        pinned = {}
        for i in range(10):
            packet = send(dp, i)
            pinned[i] = [e for e in packet.trace if e.startswith("g")][0]
        # Shift all weight to g1: existing flows must keep their instance.
        f_g.install_rule(
            1,
            "E",
            LoadBalancingRule(
                local_instances=WeightedChoice({"g1": 1.0, "g2": 0.0}),
                next_forwarders=WeightedChoice({"egress": 1.0}),
            ),
        )
        for i in range(10):
            packet = send(dp, i)
            assert [e for e in packet.trace if e.startswith("g")][0] == pinned[i]

    def test_new_flows_follow_new_weights(self, fabric):
        dp, _f_in, f_g, _gs, _sink = fabric
        f_g.install_rule(
            1,
            "E",
            LoadBalancingRule(
                local_instances=WeightedChoice({"g1": 1.0, "g2": 0.0}),
                next_forwarders=WeightedChoice({"egress": 1.0}),
            ),
        )
        for i in range(100, 120):
            packet = send(dp, i)
            assert "g1" in packet.trace and "g2" not in packet.trace

    def test_load_balancing_matches_weights(self, fabric):
        dp, _f_in, f_g, (g1, g2), _sink = fabric
        f_g.install_rule(
            1,
            "E",
            LoadBalancingRule(
                local_instances=WeightedChoice({"g1": 3.0, "g2": 1.0}),
                next_forwarders=WeightedChoice({"egress": 1.0}),
            ),
        )
        for i in range(400):
            send(dp, i)
        share = g1.packets_processed / (
            g1.packets_processed + g2.packets_processed
        )
        assert 0.68 <= share <= 0.82


class TestSymmetricReturn:
    def test_reverse_uses_same_instance(self, fabric):
        dp, *_ = fabric
        fwd = send(dp, 0)
        chosen = [e for e in fwd.trace if e.startswith("g")]
        rev = send(dp, 0, direction="reverse")
        assert [e for e in rev.trace if e.startswith("g")] == chosen

    def test_reverse_retraces_forwarders_backwards(self, fabric):
        dp, *_ = fabric
        send(dp, 0)
        rev = send(dp, 0, direction="reverse")
        fwd_hops = [h for h in rev.trace if h.startswith("f.")]
        assert fwd_hops == ["f.g", "f.in"]

    def test_reverse_without_forward_state_dropped(self, fabric):
        dp, *_ = fabric
        rev = send(dp, 77, direction="reverse")
        assert dp.drops
        assert rev.trace[-1] == "f.g"

    def test_symmetric_return_for_many_flows(self, fabric):
        dp, *_ = fabric
        forward_instance = {}
        for i in range(30):
            packet = send(dp, i)
            forward_instance[i] = [e for e in packet.trace if e.startswith("g")]
        for i in range(30):
            rev = send(dp, i, direction="reverse")
            assert [e for e in rev.trace if e.startswith("g")] == (
                forward_instance[i]
            )


class TestLabelHandling:
    def test_label_unaware_vnf_never_sees_labels(self):
        dp = DataPlane(random.Random(1))
        f = dp.add_forwarder(Forwarder("f1", "A"))
        vnf = VnfInstance("v1", "V", "A", supports_labels=False)
        f.attach(vnf)
        sink = Sink("out")
        dp.add_endpoint(sink)
        f.install_rule(
            1,
            "E",
            LoadBalancingRule(
                local_instances=WeightedChoice({"v1": 1.0}),
                next_forwarders=WeightedChoice({"out": 1.0}),
            ),
        )
        packet = Packet(flow(0), labels=Labels(1, "E"))
        dp.send_forward(packet, "f1", "edge")
        assert vnf.saw_labels == [False]
        assert packet.labels == Labels(1, "E")  # re-affixed downstream

    def test_label_aware_vnf_sees_labels(self, fabric):
        dp, _f_in, _f_g, (g1, g2), _sink = fabric
        send(dp, 0)
        assert all((g1.saw_labels or [True]))
        assert all((g2.saw_labels or [True]))


class TestHeaderRewritingVnf:
    def make_nat_fabric(self):
        dp = DataPlane(random.Random(5))
        f_in = dp.add_forwarder(Forwarder("f.in", "A"))
        f_nat = dp.add_forwarder(Forwarder("f.nat", "B"))
        nat = NatFunction("99.9.9.9")
        inst = VnfInstance("nat1", "NAT", "B", transform=nat)
        f_nat.attach(inst)
        sink = Sink("out")
        dp.add_endpoint(sink)
        dp.add_endpoint(Sink("edge"))  # reverse packets terminate here
        f_in.install_rule(
            1, "E",
            LoadBalancingRule(next_forwarders=WeightedChoice({"f.nat": 1.0})),
        )
        f_nat.install_rule(
            1, "E",
            LoadBalancingRule(
                local_instances=WeightedChoice({"nat1": 1.0}),
                next_forwarders=WeightedChoice({"out": 1.0}),
            ),
        )
        return dp, sink

    def test_forward_rewrite_reaches_sink_translated(self):
        dp, sink = self.make_nat_fabric()
        packet = Packet(flow(0), labels=Labels(1, "E"))
        dp.send_forward(packet, "f.in", "edge")
        assert sink.received[0].flow.src_ip == "99.9.9.9"

    def test_reverse_of_rewritten_flow_is_untranslated(self):
        dp, sink = self.make_nat_fabric()
        packet = Packet(flow(0), labels=Labels(1, "E"))
        dp.send_forward(packet, "f.in", "edge")
        public = sink.received[0].flow
        rev = Packet(public.reversed(), labels=Labels(1, "E"))
        out = dp.send_reverse(rev, "f.nat", "out")
        assert out.flow.dst_ip == "10.0.0.1"
        assert out.flow.dst_port == 1000

    def test_second_packet_of_rewritten_flow_keeps_mapping(self):
        dp, sink = self.make_nat_fabric()
        for _ in range(3):
            packet = Packet(flow(0), labels=Labels(1, "E"))
            dp.send_forward(packet, "f.in", "edge")
        ports = {p.flow.src_port for p in sink.received}
        assert len(ports) == 1  # stable NAT binding


class TestForwarderManagement:
    def test_attach_rejects_wrong_site(self):
        f = Forwarder("f1", "A")
        with pytest.raises(ForwardingError):
            f.attach(VnfInstance("v1", "V", "B"))

    def test_detached_instance_causes_drop(self, fabric):
        dp, _f_in, f_g, _gs, _sink = fabric
        send(dp, 0)
        f_g.detach("g1")
        f_g.detach("g2")
        send(dp, 0)  # flow entry still points at the detached instance
        assert dp.drops

    def test_duplicate_forwarder_rejected(self, fabric):
        dp, *_ = fabric
        with pytest.raises(ForwardingError):
            dp.add_forwarder(Forwarder("f.in", "A"))

    def test_flow_table_limit_evicts(self):
        dp = DataPlane(random.Random(2))
        f = dp.add_forwarder(Forwarder("f1", "A", max_flow_entries=10))
        sink = Sink("out")
        dp.add_endpoint(sink)
        f.install_rule(
            1, "E",
            LoadBalancingRule(next_forwarders=WeightedChoice({"out": 1.0})),
        )
        for i in range(50):
            dp.send_forward(Packet(flow(i), labels=Labels(1, "E")), "f1", "e")
        assert len(f.flow_table) == 10
        assert f.flow_table.evictions == 40
