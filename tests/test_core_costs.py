"""Unit and property tests for the piecewise-linear convex cost function."""

import pytest
from hypothesis import given, strategies as st

from repro.core.costs import (
    CostError,
    FORTZ_THORUP,
    PiecewiseLinearCost,
    fortz_thorup_cost,
)


class TestConstruction:
    def test_first_breakpoint_must_be_zero(self):
        with pytest.raises(CostError):
            PiecewiseLinearCost([0.5, 1.0], [1.0, 2.0])

    def test_breakpoints_strictly_increasing(self):
        with pytest.raises(CostError):
            PiecewiseLinearCost([0.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_slopes_non_decreasing(self):
        with pytest.raises(CostError):
            PiecewiseLinearCost([0.0, 1.0], [3.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(CostError):
            PiecewiseLinearCost([0.0, 1.0], [1.0])


class TestEvaluation:
    def test_zero_at_origin(self):
        assert FORTZ_THORUP(0.0) == 0.0

    def test_identity_slope_below_first_knee(self):
        assert FORTZ_THORUP(0.2) == pytest.approx(0.2)

    def test_known_value_at_one(self):
        # 1/3 * 1 + 1/3 * 3 + (0.9 - 2/3) * 10 + 0.1 * 70
        expected = 1 / 3 + 1.0 + (0.9 - 2 / 3) * 10 + 0.1 * 70
        assert FORTZ_THORUP(1.0) == pytest.approx(expected)

    def test_steep_above_capacity(self):
        assert FORTZ_THORUP(1.2) > FORTZ_THORUP(1.0) + 500 * 0.1

    def test_negative_utilization_rejected(self):
        with pytest.raises(CostError):
            FORTZ_THORUP(-0.1)

    def test_module_level_helper_matches(self):
        assert fortz_thorup_cost(0.7) == FORTZ_THORUP(0.7)

    def test_marginal_matches_segment_slopes(self):
        assert FORTZ_THORUP.marginal(0.1) == 1.0
        assert FORTZ_THORUP.marginal(0.5) == 3.0
        assert FORTZ_THORUP.marginal(0.95) == 70.0
        assert FORTZ_THORUP.marginal(2.0) == 5000.0


class TestConvexityProperties:
    @given(st.floats(min_value=0.0, max_value=3.0))
    def test_non_negative(self, u):
        assert FORTZ_THORUP(u) >= 0.0

    @given(
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=0.0, max_value=3.0),
    )
    def test_monotone(self, u1, u2):
        lo, hi = sorted((u1, u2))
        assert FORTZ_THORUP(lo) <= FORTZ_THORUP(hi) + 1e-12

    @given(
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_convex(self, u1, u2, t):
        mid = t * u1 + (1 - t) * u2
        chord = t * FORTZ_THORUP(u1) + (1 - t) * FORTZ_THORUP(u2)
        assert FORTZ_THORUP(mid) <= chord + 1e-9

    @given(st.floats(min_value=0.0, max_value=3.0))
    def test_continuity_no_jumps(self, u):
        eps = 1e-7
        assert abs(FORTZ_THORUP(u + eps) - FORTZ_THORUP(u)) < 1e-2
