"""Workload schedules: validation, canonical JSON, digests, composition."""

import json

import pytest

from repro.chaos import FaultEvent, Scenario, merge_scenarios
from repro.scenarios import (
    ComposedSchedule,
    ScheduleError,
    WorkloadOp,
    WorkloadSchedule,
    compose,
    merge_workloads,
)


def make_schedule(kind="t", seed=1, ops=None):
    ops = ops if ops is not None else [
        WorkloadOp(at=3.0, op="remove", chain="b"),
        WorkloadOp(at=1.0, op="create", chain="a", value=2.0),
        WorkloadOp(at=2.0, op="redemand", chain="a", value=1.5),
    ]
    return WorkloadSchedule(kind=kind, seed=seed, duration_s=10.0, ops=ops)


class TestWorkloadOp:
    def test_unknown_op_rejected(self):
        with pytest.raises(ScheduleError):
            WorkloadOp(at=1.0, op="explode", chain="c")

    def test_create_needs_positive_value(self):
        with pytest.raises(ScheduleError):
            WorkloadOp(at=1.0, op="create", chain="c", value=0.0)

    def test_redemand_needs_positive_value(self):
        with pytest.raises(ScheduleError):
            WorkloadOp(at=1.0, op="redemand", chain="c", value=-1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ScheduleError):
            WorkloadOp(at=-0.1, op="remove", chain="c")

    def test_doc_round_trip(self):
        op = WorkloadOp(at=1.5, op="create", chain="c",
                        ingress=2, egress=3, stages=2, value=4.0)
        assert WorkloadOp.from_doc(op.to_doc()) == op


class TestWorkloadSchedule:
    def test_ops_sorted_by_time(self):
        schedule = make_schedule()
        assert [op.at for op in schedule.ops] == [1.0, 2.0, 3.0]

    def test_json_round_trip_is_byte_identical(self):
        schedule = make_schedule()
        clone = WorkloadSchedule.from_json(schedule.to_json())
        assert clone.to_json() == schedule.to_json()
        assert clone.digest() == schedule.digest()

    def test_digest_changes_with_content(self):
        a = make_schedule()
        b = make_schedule(ops=[WorkloadOp(at=1.0, op="remove", chain="x")])
        assert a.digest() != b.digest()

    def test_counts(self):
        counts = make_schedule().counts()
        assert counts == {"create": 1, "redemand": 1, "remove": 1}

    def test_canonical_json_is_sorted_and_compact(self):
        doc = json.loads(make_schedule().to_json())
        assert list(doc) == sorted(doc)
        assert ": " not in make_schedule().to_json()


class TestMergeWorkloads:
    def test_merges_and_sorts(self):
        a = make_schedule(kind="a", ops=[
            WorkloadOp(at=5.0, op="remove", chain="wl-a-0")])
        b = make_schedule(kind="b", ops=[
            WorkloadOp(at=1.0, op="create", chain="wl-b-0", value=1.0)])
        merged = merge_workloads("a+b", [a, b])
        assert [op.chain for op in merged.ops] == ["wl-b-0", "wl-a-0"]
        assert merged.kind == "a+b"

    def test_rejects_cross_kind_create_collision(self):
        a = make_schedule(kind="a", ops=[
            WorkloadOp(at=1.0, op="create", chain="wl-x", value=1.0)])
        b = make_schedule(kind="b", ops=[
            WorkloadOp(at=2.0, op="create", chain="wl-x", value=1.0)])
        with pytest.raises(ScheduleError):
            merge_workloads("a+b", [a, b])

    def test_rejects_empty(self):
        with pytest.raises(ScheduleError):
            merge_workloads("none", [])


class TestComposedSchedule:
    def make_composed(self):
        faults = Scenario(seed=9, duration_s=10.0, events=[
            FaultEvent(at=4.0, kind="link_down", target=("wan.A", "proxy.B")),
            FaultEvent(at=6.0, kind="link_up", target=("wan.A", "proxy.B")),
        ])
        return compose(make_schedule(), faults)

    def test_json_round_trip(self):
        composed = self.make_composed()
        clone = ComposedSchedule.from_json(composed.to_json())
        assert clone.to_json() == composed.to_json()
        assert clone.digest() == composed.digest()

    def test_items_are_time_sorted_and_tagged(self):
        items = self.make_composed().items()
        assert [tag for tag, _ in items] == [
            "workload", "workload", "workload", "fault", "fault"]
        assert [item[1].at for item in items] == [1.0, 2.0, 3.0, 4.0, 6.0]

    def test_with_items_round_trips(self):
        composed = self.make_composed()
        rebuilt = composed.with_items(composed.items())
        assert rebuilt.to_json() == composed.to_json()

    def test_with_items_subset(self):
        composed = self.make_composed()
        subset = composed.with_items(composed.items()[:2])
        assert len(subset.workload.ops) == 2
        assert not subset.faults.events
        assert subset.digest() != composed.digest()


class TestScenarioRoundTrip:
    def test_fault_scenario_json_round_trip(self):
        scenario = Scenario(seed=3, duration_s=8.0, events=[
            FaultEvent(at=1.0, kind="partition",
                       target=(("A", "B"), ("C",))),
            FaultEvent(at=4.0, kind="fail_site", target=("B",)),
        ])
        clone = Scenario.from_json(scenario.to_json())
        assert clone.to_json() == scenario.to_json()
        assert clone.events[0].target == (("A", "B"), ("C",))

    def test_merge_scenarios(self):
        a = Scenario(seed=1, duration_s=5.0, events=[
            FaultEvent(at=1.0, kind="fail_site", target=("A",))])
        b = Scenario(seed=2, duration_s=9.0, events=[
            FaultEvent(at=2.0, kind="restore_site", target=("A",))])
        merged = merge_scenarios(a, b)
        assert merged.duration_s == 9.0
        assert len(merged.events) == 2
