"""Tests for JSON serialization and the compressor VNF (per-stage demands)."""

import pytest

from repro.controller.chainspec import ChainSpecification
from repro.core.dp import route_chains_dp
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, Link, ModelError, NetworkModel, VNF
from repro.core.serialization import (
    SerializationError,
    model_from_json,
    model_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.dataplane.labels import FiveTuple, Packet
from repro.vnf.compressor import (
    Compressor,
    CompressorError,
    compressed_stage_demands,
)


def full_model() -> NetworkModel:
    links = [Link("ab", "a", "b", 100.0, background=3.0),
             Link("ba", "b", "a", 100.0)]
    routing = {("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0}}
    return NetworkModel(
        ["a", "b"],
        {("a", "b"): 12.5},
        [CloudSite("A", "a", 50.0), CloudSite("B", "b", 75.0)],
        [VNF("fw", 1.5, {"A": 20.0, "B": 30.0})],
        [Chain("c1", "a", "b", ["fw"], [4.0, 2.0], [1.0, 0.5])],
        links,
        routing,
        mlu_limit=0.9,
    )


class TestModelSerialization:
    def test_round_trip_preserves_everything(self):
        original = full_model()
        restored = model_from_json(model_to_json(original))
        assert restored.nodes == original.nodes
        assert restored.latency("a", "b") == 12.5
        assert restored.sites["B"].capacity == 75.0
        assert restored.vnfs["fw"].load_per_unit == 1.5
        assert restored.vnfs["fw"].site_capacity == {"A": 20.0, "B": 30.0}
        chain = restored.chains["c1"]
        assert chain.forward_traffic == (4.0, 2.0)
        assert chain.reverse_traffic == (1.0, 0.5)
        assert restored.links["ab"].background == 3.0
        assert restored.route_fraction("a", "b", "ab") == 1.0
        assert restored.mlu_limit == 0.9

    def test_round_trip_solves_identically(self):
        original = full_model()
        restored = model_from_json(model_to_json(original))
        lp1 = solve_chain_routing_lp(original, LpObjective.MIN_LATENCY)
        lp2 = solve_chain_routing_lp(restored, LpObjective.MIN_LATENCY)
        assert lp1.objective == pytest.approx(lp2.objective)

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            model_from_json("{not json")
        with pytest.raises(SerializationError):
            model_from_json("[1, 2]")

    def test_wrong_schema_version_rejected(self):
        doc = model_to_json(full_model()).replace(
            '"schema_version": 1', '"schema_version": 99'
        )
        with pytest.raises(SerializationError):
            model_from_json(doc)

    def test_missing_field_rejected(self):
        with pytest.raises(SerializationError):
            model_from_json('{"schema_version": 1}')

    def test_semantic_validation_still_applies(self):
        # A document referencing an unknown node fails model validation.
        doc = model_to_json(full_model()).replace(
            '"node": "a"', '"node": "ghost"'
        )
        with pytest.raises(ModelError):
            model_from_json(doc)


class TestSpecSerialization:
    def test_round_trip(self):
        spec = ChainSpecification(
            "corp", "vpn", "in", "out", ["fw", "nat"],
            forward_demand=5.0, reverse_demand=2.0,
            src_prefix="10.0.0.0/24", dst_prefixes=["20.0.0.0/24"],
            protocol="tcp", dst_port_range=(80, 443),
        )
        restored = spec_from_json(spec_to_json(spec))
        assert restored == spec

    def test_optional_fields_default(self):
        minimal = (
            '{"schema_version": 1, "name": "c", "edge_service": "vpn", '
            '"ingress_attachment": "i", "egress_attachment": "e", '
            '"vnf_services": ["fw"]}'
        )
        spec = spec_from_json(minimal)
        assert spec.forward_demand == 1.0
        assert spec.dst_port_range is None

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            spec_from_json('{"schema_version": 1}')


class TestCompressorVnf:
    def test_forward_compression(self):
        compressor = Compressor(0.5)
        packet = Packet(
            FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1, 80), size_bytes=1000
        )
        compressor(packet)
        assert packet.size_bytes == 500

    def test_reverse_decompression(self):
        compressor = Compressor(0.5)
        packet = Packet(
            FiveTuple("20.0.0.1", "10.0.0.1", "tcp", 80, 1),
            direction="reverse",
            size_bytes=500,
        )
        compressor(packet)
        assert packet.size_bytes == 1000

    def test_header_floor(self):
        compressor = Compressor(0.1)
        packet = Packet(
            FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1, 80), size_bytes=64
        )
        compressor(packet)
        assert packet.size_bytes == 40

    def test_savings_tracked(self):
        compressor = Compressor(0.25)
        for i in range(4):
            compressor(
                Packet(
                    FiveTuple("10.0.0.1", "20.0.0.1", "tcp", i, 80),
                    size_bytes=1000,
                )
            )
        assert compressor.savings == pytest.approx(0.75)

    def test_invalid_ratio(self):
        with pytest.raises(CompressorError):
            Compressor(0.0)
        with pytest.raises(CompressorError):
            Compressor(1.5)


class TestStageVaryingDemands:
    def test_demand_helper_applies_ratios_cumulatively(self):
        forward, reverse = compressed_stage_demands(
            10.0, 2.0, [None, 0.5, 0.4]
        )
        assert forward == pytest.approx([10.0, 10.0, 5.0, 2.0])
        assert reverse == pytest.approx([2.0, 2.0, 1.0, 0.4])

    def make_compressing_model(self):
        """fw -> wanopt(0.5) chain: the last stage carries half the bytes."""
        forward, reverse = compressed_stage_demands(10.0, 0.0, [None, 0.5])
        nodes = ["a", "b", "c"]
        latency = {("a", "b"): 5.0, ("a", "c"): 20.0, ("b", "c"): 15.0}
        sites = [CloudSite("B", "b", 1000.0)]
        vnfs = [
            VNF("fw", 1.0, {"B": 500.0}),
            VNF("wanopt", 1.0, {"B": 500.0}),
        ]
        chains = [Chain("c1", "a", "c", ["fw", "wanopt"], forward, reverse)]
        links = [
            Link("ab", "a", "b", 100.0), Link("ba", "b", "a", 100.0),
            Link("bc", "b", "c", 100.0), Link("cb", "c", "b", 100.0),
        ]
        routing = {
            ("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0},
            ("b", "c"): {"bc": 1.0}, ("c", "b"): {"cb": 1.0},
        }
        return NetworkModel(nodes, latency, sites, vnfs, chains,
                            links, routing)

    def test_te_sees_reduced_downstream_link_load(self):
        model = self.make_compressing_model()
        result = route_chains_dp(model)
        assert result.fully_routed
        traffic = result.solution.link_traffic()
        # Upstream of the compressor: 10 units; downstream: 5.
        assert traffic["ab"] == pytest.approx(10.0)
        assert traffic["bc"] == pytest.approx(5.0)

    def test_lp_handles_stage_varying_demands(self):
        model = self.make_compressing_model()
        result = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
        assert result.ok
        result.solution.validate()
        # Weighted latency counts the thinner last stage at half weight:
        # 10 * 5 (a->B) + 10 * 0 (B->B) + 5 * 15 (B->c).
        assert result.objective == pytest.approx(10 * 5 + 5 * 15)
