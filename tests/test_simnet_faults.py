"""Tests for the simnet fault primitives and their drop accounting.

The contract under test: every message lost to a fault (downed link,
crashed host, partition, probabilistic loss, or a mid-flight fault) is
counted as a *drop* on its link, so ``sent == delivered + dropped +
in_flight`` holds at any simulated time under any fault schedule.
"""

import random

import pytest

from repro.simnet.events import Simulator
from repro.simnet.network import LinkSpec, NetworkError, SimNetwork


def make_net(delay_s=0.01):
    sim = Simulator()
    net = SimNetwork(sim)
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", LinkSpec(delay_s=delay_s))
    return net


def conserved(stats):
    return (
        stats.delivered + stats.dropped + stats.in_flight == stats.sent
        and stats.in_flight >= 0
    )


class TestLinkFailure:
    def test_down_link_drops_sends(self):
        net = make_net()
        net.fail_link("a", "b")
        assert net.send("a", "b", "x") is False
        net.run()
        stats = net.link_stats("a", "b")
        assert stats.sent == 1 and stats.dropped == 1
        assert stats.delivered == 0
        assert net.drop_reasons == {"link_down": 1}
        assert conserved(stats)

    def test_restore_resumes_delivery(self):
        net = make_net()
        net.fail_link("a", "b")
        net.send("a", "b", "lost")
        net.restore_link("a", "b")
        assert net.send("a", "b", "ok") is True
        net.run()
        assert net.host("b").received[-1][2] == "ok"
        assert conserved(net.link_stats("a", "b"))

    def test_in_flight_message_becomes_drop(self):
        """A message crossing the link when it fails must not be
        delivered -- it is accounted as an in-flight drop."""
        net = make_net(delay_s=1.0)
        assert net.send("a", "b", "doomed") is True
        net.sim.schedule(0.5, net.fail_link, "a", "b")
        net.run()
        stats = net.link_stats("a", "b")
        assert stats.delivered == 0 and stats.dropped == 1
        assert net.drop_reasons == {"in_flight": 1}
        assert not net.host("b").received
        assert conserved(stats)

    def test_bidirectional_by_default(self):
        net = make_net()
        net.fail_link("a", "b")
        assert not net.link_is_up("a", "b")
        assert not net.link_is_up("b", "a")
        net.restore_link("a", "b", bidirectional=False)
        assert net.link_is_up("a", "b")
        assert not net.link_is_up("b", "a")

    def test_unknown_link_rejected(self):
        net = make_net()
        net.add_host("c")
        with pytest.raises(NetworkError):
            net.fail_link("a", "c")

    def test_site_local_link_materialized_for_fault(self):
        """Faults reach the lazily-created site-local links too."""
        sim = Simulator()
        net = SimNetwork(sim)
        net.add_host("x", site="S")
        net.add_host("y", site="S")
        net.fail_link("x", "y")
        assert net.send("x", "y", "m") is False
        assert net.drop_reasons == {"link_down": 1}


class TestHostCrash:
    def test_send_to_crashed_host_dropped(self):
        net = make_net()
        net.crash_host("b")
        assert net.send("a", "b", "x") is False
        stats = net.link_stats("a", "b")
        assert stats.dropped == 1
        assert net.drop_reasons == {"dst_down": 1}
        assert conserved(stats)

    def test_send_from_crashed_host_dropped(self):
        net = make_net()
        net.crash_host("a")
        assert net.send("a", "b", "x") is False
        assert net.drop_reasons == {"src_down": 1}

    def test_restart_resumes(self):
        net = make_net()
        net.crash_host("b")
        assert not net.host_is_up("b")
        net.send("a", "b", "lost")
        net.restart_host("b")
        assert net.host_is_up("b")
        net.send("a", "b", "ok")
        net.run()
        assert [p for (_, _, p) in net.host("b").received] == ["ok"]

    def test_crash_during_flight_drops(self):
        net = make_net(delay_s=1.0)
        net.send("a", "b", "doomed")
        net.sim.schedule(0.5, net.crash_host, "b")
        net.run()
        stats = net.link_stats("a", "b")
        assert stats.delivered == 0 and stats.dropped == 1
        assert net.drop_reasons == {"in_flight": 1}
        assert conserved(stats)

    def test_receiver_callback_not_fired_while_crashed(self):
        net = make_net()
        seen = []
        net.host("b").on_receive(lambda s, p: seen.append(p))
        net.crash_host("b")
        net.send("a", "b", "x")
        net.run()
        assert seen == []

    def test_unknown_host_rejected(self):
        net = make_net()
        with pytest.raises(NetworkError):
            net.crash_host("ghost")


class TestLossAndDegradation:
    def test_seeded_loss_is_deterministic(self):
        def run(seed):
            net = make_net()
            net.set_fault_rng(random.Random(seed))
            net.set_link_loss("a", "b", 0.5)
            for i in range(50):
                net.send("a", "b", i)
            net.run()
            return net.link_stats("a", "b").dropped

        assert run(7) == run(7)
        assert 0 < run(7) < 50
        # Different seeds may coincide by chance; the property under
        # test is same-seed reproducibility only.

    def test_zero_loss_delivers_everything(self):
        net = make_net()
        net.set_fault_rng(random.Random(1))
        net.set_link_loss("a", "b", 0.5)
        net.set_link_loss("a", "b", 0.0)
        for i in range(20):
            net.send("a", "b", i)
        net.run()
        stats = net.link_stats("a", "b")
        assert stats.delivered == 20 and stats.dropped == 0

    def test_invalid_probability_rejected(self):
        net = make_net()
        with pytest.raises(NetworkError):
            net.set_link_loss("a", "b", 1.5)

    def test_loss_drops_are_accounted(self):
        net = make_net()
        net.set_fault_rng(random.Random(3))
        net.set_link_loss("a", "b", 1.0)
        net.send("a", "b", "x")
        assert net.drop_reasons == {"loss": 1}
        assert conserved(net.link_stats("a", "b"))

    def test_degradation_scales_delay(self):
        net = make_net(delay_s=0.01)
        net.set_link_degradation("a", "b", 4.0)
        net.send("a", "b", "slow")
        net.run()
        assert net.host("b").received[0][0] == pytest.approx(0.04)
        net.set_link_degradation("a", "b", 1.0)
        net.send("a", "b", "fast")
        net.run()
        assert net.host("b").received[1][0] == pytest.approx(0.04 + 0.01)

    def test_negative_multiplier_rejected(self):
        net = make_net()
        with pytest.raises(NetworkError):
            net.set_link_degradation("a", "b", -1.0)


class TestPartition:
    def make(self):
        sim = Simulator()
        net = SimNetwork(sim)
        for name in ("a", "b", "c"):
            net.add_host(name)
        net.connect("a", "b", LinkSpec(delay_s=0.01))
        net.connect("a", "c", LinkSpec(delay_s=0.01))
        net.connect("b", "c", LinkSpec(delay_s=0.01))
        return net

    def test_cross_group_dropped_same_group_delivered(self):
        net = self.make()
        net.partition([["a"], ["b", "c"]])
        assert net.send("a", "b", "cut") is False
        assert net.send("b", "c", "ok") is True
        net.run()
        assert net.drop_reasons == {"partition": 1}
        assert conserved(net.link_stats("a", "b"))

    def test_unlisted_host_unrestricted(self):
        net = self.make()
        net.partition([["a"], ["b"]])
        assert net.send("a", "c", "ok") is True
        assert net.send("c", "b", "ok") is True

    def test_heal_restores(self):
        net = self.make()
        net.partition([["a"], ["b"]])
        net.heal_partition()
        assert net.send("a", "b", "ok") is True

    def test_unknown_host_in_partition_rejected(self):
        net = self.make()
        with pytest.raises(NetworkError):
            net.partition([["a", "ghost"]])


class TestStrictSend:
    def test_strict_unknown_destination_raises(self):
        net = make_net()
        with pytest.raises(NetworkError):
            net.send("a", "ghost", "x")

    def test_lenient_unknown_destination_counts_drop(self):
        net = make_net()
        assert net.send("a", "ghost", "x", strict=False) is False
        assert net.drop_reasons == {"dst_down": 1}

    def test_unknown_source_always_raises(self):
        net = make_net()
        with pytest.raises(NetworkError):
            net.send("ghost", "b", "x", strict=False)


class TestConservationUnderChaos:
    def test_ledger_balances_under_random_fault_schedule(self):
        """Sustained random faults + traffic: after the queue drains,
        every link's ledger balances exactly."""
        rng = random.Random(99)
        sim = Simulator()
        net = SimNetwork(sim)
        hosts = ["h0", "h1", "h2", "h3"]
        for name in hosts:
            net.add_host(name)
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                net.connect(a, b, LinkSpec(delay_s=0.02))
        net.set_fault_rng(random.Random(5))

        def flip(a, b):
            if net.link_is_up(a, b):
                net.fail_link(a, b)
            else:
                net.restore_link(a, b)

        for t in range(200):
            src, dst = rng.sample(hosts, 2)
            sim.schedule_at(t * 0.01, net.send, src, dst, t, 500, False)
            if rng.random() < 0.1:
                sim.schedule_at(t * 0.01, flip, *rng.sample(hosts, 2))
            if rng.random() < 0.05:
                victim = rng.choice(hosts)
                sim.schedule_at(t * 0.01, net.crash_host, victim)
                sim.schedule_at(t * 0.01 + 0.05, net.restart_host, victim)
            if rng.random() < 0.05:
                pair = rng.sample(hosts, 2)
                sim.schedule_at(
                    t * 0.01, net.set_link_loss, *pair, rng.random() * 0.5
                )
        net.run()
        total_sent = total_delivered = total_dropped = 0
        for (src, dst), _ in list(net._links.items()):
            stats = net.link_stats(src, dst)
            assert stats.in_flight == 0, (src, dst)
            assert stats.delivered + stats.dropped == stats.sent
            total_sent += stats.sent
            total_delivered += stats.delivered
            total_dropped += stats.dropped
        assert total_sent == 200
        assert total_dropped > 0  # faults actually bit
        assert total_delivered + total_dropped == total_sent
