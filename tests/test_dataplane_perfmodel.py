"""Tests for the OVS/DPDK forwarder performance models (Figures 7-8)."""

import pytest

from repro.dataplane.perfmodel import (
    DpdkForwarderModel,
    OvsForwarderModel,
    PerfModelError,
    pps_to_gbps,
)


class TestConversions:
    def test_paper_headline_20mpps_is_80gbps_at_500b(self):
        assert pps_to_gbps(20e6, 500) == pytest.approx(80.0)

    def test_invalid_packet_size_rejected(self):
        with pytest.raises(PerfModelError):
            pps_to_gbps(1e6, 0)


class TestOvsModel:
    model = OvsForwarderModel()

    def test_label_overhead_within_paper_band(self):
        # "overlay labels (VXLAN+MPLS) add between 19-29% overhead"
        assert self.model.label_overhead(1) == pytest.approx(0.29, abs=0.005)
        assert self.model.label_overhead(50) == pytest.approx(0.19, abs=0.01)

    def test_affinity_overhead_within_paper_band(self):
        # "flow affinity rules further add between 33-44% overhead"
        assert self.model.affinity_overhead(1) == pytest.approx(0.44, abs=0.005)
        assert self.model.affinity_overhead(50) == pytest.approx(0.33, abs=0.01)

    def test_overhead_decreases_with_flows(self):
        # "With more concurrent flows, the overhead reduces."
        overheads = [self.model.label_overhead(f) for f in (1, 5, 20, 50)]
        assert overheads == sorted(overheads, reverse=True)

    def test_config_ordering(self):
        for flows in (1, 10, 50):
            bridge = self.model.throughput_pps("bridge", flows)
            labels = self.model.throughput_pps("labels", flows)
            affinity = self.model.throughput_pps("labels+affinity", flows)
            assert bridge > labels > affinity

    def test_flow_scaling_collapse(self):
        # "poor scalability upon increasing the number of flows"
        small = self.model.throughput_pps("labels+affinity", 50)
        large = self.model.throughput_pps("labels+affinity", 50_000)
        assert large < small / 5

    def test_bridge_unaffected_below_cache_limit(self):
        assert self.model.throughput_pps("bridge", 1) == pytest.approx(
            self.model.throughput_pps("bridge", 1000)
        )

    def test_unknown_config_rejected(self):
        with pytest.raises(PerfModelError):
            self.model.throughput_pps("magic", 1)

    def test_zero_flows_rejected(self):
        with pytest.raises(PerfModelError):
            self.model.throughput_pps("bridge", 0)


class TestDpdkModel:
    model = DpdkForwarderModel()

    def test_single_core_small_flows_near_7mpps(self):
        # "a high throughput of up to 7 million pkts/sec with only a
        # single CPU core"
        pps = self.model.throughput_pps(cores=1, flows_per_core=10_000)
        assert pps == pytest.approx(7.2e6, rel=0.05)

    def test_six_cores_512k_flows_exceeds_20mpps(self):
        # "six forwarder instances store entries for a total of 3 million
        # flows while still achieving more than 20 Mpps"
        pps = self.model.throughput_pps(cores=6, flows_per_core=512_000)
        assert pps > 20e6

    def test_per_core_increment_3_to_4_mpps_at_scale(self):
        # "Each additional forwarder instance increases the throughput by
        # 3-4 Mpps" (at the 512K-flow operating point).
        one = self.model.throughput_pps(1, 512_000)
        two = self.model.throughput_pps(2, 512_000)
        assert 3e6 <= two - one <= 4.6e6

    def test_steady_state_above_3mpps(self):
        # "throughput of a single forwarder core reaches a steady-state
        # value in excess of 3 Mpps"
        assert self.model.steady_state_pps() > 3e6
        assert self.model.per_core_pps(50_000_000) == pytest.approx(
            self.model.steady_state_pps(), rel=0.01
        )

    def test_throughput_decreases_with_flows(self):
        # "throughput reduces with an increase in the number of flows due
        # to lower CPU cache hit rates"
        rates = [
            self.model.per_core_pps(flows)
            for flows in (1000, 300_000, 512_000, 2_000_000)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_cores_scale_linearly(self):
        one = self.model.throughput_pps(1, 100_000)
        four = self.model.throughput_pps(4, 100_000)
        assert four == pytest.approx(4 * one)

    def test_miss_rate_zero_when_cached(self):
        assert self.model.miss_rate(100_000) == 0.0

    def test_miss_rate_grows_toward_one(self):
        assert self.model.miss_rate(512_000) == pytest.approx(0.5, abs=0.01)
        assert self.model.miss_rate(100_000_000) > 0.99

    def test_latency_low_at_low_load(self):
        # "latency at low to moderate loads is typically a few tens of
        # microseconds"
        assert self.model.latency_us(0.1) < 50

    def test_latency_capped_at_1ms_at_saturation(self):
        # "latency introduced by forwarders at the maximum throughput is 1 ms"
        assert self.model.latency_us(1.0) == pytest.approx(1000.0)
        assert self.model.latency_us(5.0) == pytest.approx(1000.0)

    def test_latency_monotone_in_load(self):
        lats = [self.model.latency_us(u) for u in (0.0, 0.3, 0.6, 0.9, 0.99)]
        assert lats == sorted(lats)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(PerfModelError):
            self.model.throughput_pps(0, 100)
        with pytest.raises(PerfModelError):
            self.model.miss_rate(-1)
        with pytest.raises(PerfModelError):
            self.model.latency_us(-0.1)
