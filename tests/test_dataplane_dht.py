"""Tests for the DHT-replicated flow table (forwarder elasticity / FT)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane.dht import (
    ConsistentHashRing,
    DhtError,
    DhtFlowTableView,
    ReplicatedFlowTable,
)
from repro.dataplane.forwarder import DataPlane, Forwarder, VnfInstance
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice

LBL = Labels(chain=1, egress_site="E")


def flow(i: int) -> FiveTuple:
    return FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1000 + i, 80)


class TestConsistentHashRing:
    def test_owner_stable_for_same_token(self):
        ring = ConsistentHashRing()
        for node in ("f1", "f2", "f3"):
            ring.add(node)
        assert ring.owners("some-key", 1) == ring.owners("some-key", 1)

    def test_owners_distinct(self):
        ring = ConsistentHashRing()
        for node in ("f1", "f2", "f3"):
            ring.add(node)
        owners = ring.owners("k", 3)
        assert len(owners) == len(set(owners)) == 3

    def test_count_capped_by_membership(self):
        ring = ConsistentHashRing()
        ring.add("f1")
        assert ring.owners("k", 5) == ["f1"]

    def test_removal_only_moves_affected_keys(self):
        ring = ConsistentHashRing()
        for node in ("f1", "f2", "f3", "f4"):
            ring.add(node)
        keys = [f"key-{i}" for i in range(200)]
        before = {k: ring.owners(k, 1)[0] for k in keys}
        ring.remove("f2")
        moved = 0
        for k in keys:
            after = ring.owners(k, 1)[0]
            if before[k] == "f2":
                assert after != "f2"
            elif after != before[k]:
                moved += 1
        assert moved == 0  # consistent hashing: unaffected keys stay put

    def test_distribution_roughly_even(self):
        ring = ConsistentHashRing(virtual_nodes=128)
        for node in ("f1", "f2", "f3", "f4"):
            ring.add(node)
        counts = {n: 0 for n in ("f1", "f2", "f3", "f4")}
        for i in range(4000):
            counts[ring.owners(f"key-{i}", 1)[0]] += 1
        for count in counts.values():
            assert 600 <= count <= 1500  # within ~50% of fair share

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing()
        ring.add("f1")
        with pytest.raises(DhtError):
            ring.add("f1")

    def test_remove_unknown_rejected(self):
        with pytest.raises(DhtError):
            ConsistentHashRing().remove("ghost")


class TestReplicatedFlowTable:
    def make_table(self, nodes=3, replication=2):
        table = ReplicatedFlowTable(replication=replication)
        for i in range(nodes):
            table.join(f"f{i}")
        return table

    def test_insert_then_lookup_from_any_node(self):
        table = self.make_table()
        entry = table.insert(LBL, flow(0))
        entry.next_hop = "next"
        for node in table.nodes:
            found = table.lookup(node, LBL, flow(0))
            assert found is entry

    def test_entry_replicated_on_r_nodes(self):
        table = self.make_table(nodes=4, replication=3)
        table.insert(LBL, flow(0))
        holders = sum(
            1 for node in table.nodes if table.entries_at(node) > 0
        )
        assert holders == 3

    def test_survives_single_crash_with_replication_two(self):
        table = self.make_table(nodes=4, replication=2)
        entries = {}
        for i in range(100):
            entry = table.insert(LBL, flow(i))
            entry.next_hop = f"hop{i}"
            entries[i] = entry
        table.fail("f1")
        survivor = table.nodes[0]
        for i in range(100):
            found = table.lookup(survivor, LBL, flow(i))
            assert found is not None
            assert found.next_hop == f"hop{i}"

    def test_no_replication_loses_state_on_crash(self):
        table = self.make_table(nodes=3, replication=1)
        for i in range(200):
            table.insert(LBL, flow(i))
        lost_node = table.nodes[0]
        held = table.entries_at(lost_node)
        table.fail(lost_node)
        survivor = table.nodes[0]
        missing = sum(
            1
            for i in range(200)
            if table.lookup(survivor, LBL, flow(i)) is None
        )
        assert missing == held
        assert missing > 0  # the hash spreads entries over all nodes

    def test_graceful_leave_preserves_everything(self):
        table = self.make_table(nodes=3, replication=1)
        for i in range(100):
            table.insert(LBL, flow(i))
        table.leave(table.nodes[0])
        survivor = table.nodes[0]
        assert all(
            table.lookup(survivor, LBL, flow(i)) is not None
            for i in range(100)
        )

    def test_join_rebalances_ownership(self):
        table = self.make_table(nodes=2, replication=2)
        for i in range(100):
            table.insert(LBL, flow(i))
        table.join("f-new")
        # The new node can serve every owned entry locally or remotely.
        assert all(
            table.lookup("f-new", LBL, flow(i)) is not None
            for i in range(100)
        )
        assert table.entries_at("f-new") > 0

    def test_remote_lookup_counted_and_cached(self):
        table = self.make_table(nodes=3, replication=1)
        entry = table.insert(LBL, flow(0))
        remote = next(
            n for n in table.nodes if table.entries_at(n) == 0
        )
        assert table.lookup(remote, LBL, flow(0)) is entry
        remote_hits = table.stats.remote_hits
        assert remote_hits >= 1
        # Second lookup hits the read-repair cache locally.
        table.lookup(remote, LBL, flow(0))
        assert table.stats.remote_hits == remote_hits

    def test_miss_counted(self):
        table = self.make_table()
        assert table.lookup("f0", LBL, flow(99)) is None
        assert table.stats.misses == 1

    def test_remove(self):
        table = self.make_table()
        table.insert(LBL, flow(0))
        assert table.remove(LBL, flow(0))
        assert table.lookup("f0", LBL, flow(0)) is None

    def test_invalid_replication_rejected(self):
        with pytest.raises(DhtError):
            ReplicatedFlowTable(replication=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=5), st.integers(0, 1000))
    def test_replication_invariant(self, nodes, seed):
        rng = random.Random(seed)
        table = ReplicatedFlowTable(replication=2)
        for i in range(nodes):
            table.join(f"f{i}")
        keys = rng.sample(range(1000), 30)
        for i in keys:
            table.insert(LBL, flow(i))
        # Crash one node: every entry must still be readable.
        table.fail(rng.choice(table.nodes))
        survivor = table.nodes[0]
        assert all(
            table.lookup(survivor, LBL, flow(i)) is not None for i in keys
        )


class TestDhtBackedForwarders:
    def test_affinity_survives_forwarder_failover(self):
        """The paper's motivating scenario: a forwarder dies, its VNF
        instance is re-fronted by a sibling, and existing connections
        keep their instance binding because flow state is in the DHT."""
        table = ReplicatedFlowTable(replication=2)
        dp = DataPlane(random.Random(3))
        f1 = dp.add_forwarder(
            Forwarder("f1", "A", flow_table=DhtFlowTableView(table, "f1"))
        )
        f2 = dp.add_forwarder(
            Forwarder("f2", "A", flow_table=DhtFlowTableView(table, "f2"))
        )
        g1 = VnfInstance("g1", "G", "A")
        g2 = VnfInstance("g2", "G", "A")
        f1.attach(g1)
        f1.attach(g2)

        class Sink:
            name = "out"

            def receive_from_chain(self, packet, came_from):
                packet.record("out")

        dp.add_endpoint(Sink())
        rule = LoadBalancingRule(
            local_instances=WeightedChoice({"g1": 1.0, "g2": 1.0}),
            next_forwarders=WeightedChoice({"out": 1.0}),
        )
        f1.install_rule(1, "E", rule)
        f2.install_rule(1, "E", rule)

        pinned = {}
        for i in range(10):
            packet = Packet(flow(i), labels=Labels(1, "E"))
            dp.send_forward(packet, "f1", "edge")
            pinned[i] = [e for e in packet.trace if e.startswith("g")][0]

        # f1 crashes; its instances re-home to f2 (instance objects are
        # per-site VMs, the forwarder was just their proxy).
        table.fail("f1")
        del dp.forwarders["f1"]
        f2.attach(g1)
        f2.attach(g2)

        for i in range(10):
            packet = Packet(flow(i), labels=Labels(1, "E"))
            dp.send_forward(packet, "f2", "edge")
            chosen = [e for e in packet.trace if e.startswith("g")][0]
            assert chosen == pinned[i], "affinity broken by failover"
