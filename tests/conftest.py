"""Shared fixtures for the Switchboard reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.model import Chain, CloudSite, NetworkModel, VNF


@pytest.fixture
def triangle_model() -> NetworkModel:
    """Three nodes a-b-c with sites at each and two VNFs.

    Latencies: a-b 10, b-c 15, a-c 30 -- going through b is attractive
    for a->c traffic, which several routing tests exploit.
    """
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", 100.0),
        CloudSite("B", "b", 100.0),
        CloudSite("C", "c", 100.0),
    ]
    vnfs = [
        VNF("fw", 1.0, {"A": 10.0, "B": 50.0}),
        VNF("nat", 0.5, {"B": 50.0, "C": 50.0}),
    ]
    chains = [
        Chain("c1", "a", "c", ["fw", "nat"], 5.0, 2.0),
        Chain("c2", "b", "c", ["fw"], 3.0, 1.0),
    ]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
