"""Tests for flow decomposition and TE-solution evaluation."""

import pytest

from repro.core.dp import route_chains_dp
from repro.core.model import Chain, CloudSite, NetworkModel, VNF
from repro.core.routes import RoutingSolution
from repro.dataplane.evaluation import (
    EvaluationError,
    decompose_paths,
    evaluate_solution,
)


def make_model(fw_caps=None, demand=4.0):
    fw_caps = fw_caps or {"A": 100.0, "B": 100.0}
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", 1000.0),
        CloudSite("B", "b", 1000.0),
    ]
    vnfs = [VNF("fw", 1.0, dict(fw_caps))]
    chains = [Chain("c1", "a", "c", ["fw"], demand)]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


class TestDecomposition:
    def test_single_path_solution(self):
        model = make_model()
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "B", "c"], 1.0)
        paths = decompose_paths(solution, "c1")
        assert len(paths) == 1
        assert paths[0].sites == ("a", "B", "c")
        assert paths[0].fraction == pytest.approx(1.0)

    def test_split_solution_decomposes_exactly(self):
        model = make_model()
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "A", "c"], 0.3)
        solution.add_path("c1", ["a", "B", "c"], 0.7)
        paths = decompose_paths(solution, "c1")
        assert len(paths) == 2
        total = sum(p.fraction for p in paths)
        assert total == pytest.approx(1.0)
        by_site = {p.sites[1]: p.fraction for p in paths}
        assert by_site == pytest.approx({"A": 0.3, "B": 0.7})

    def test_widest_path_first(self):
        model = make_model()
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "A", "c"], 0.2)
        solution.add_path("c1", ["a", "B", "c"], 0.8)
        paths = decompose_paths(solution, "c1")
        assert paths[0].sites[1] == "B"

    def test_empty_solution_no_paths(self):
        model = make_model()
        solution = RoutingSolution(model)
        assert decompose_paths(solution, "c1") == []

    def test_dp_solution_decomposes_to_carried_fraction(self):
        model = make_model(fw_caps={"A": 5.0, "B": 5.0}, demand=4.0)
        result = route_chains_dp(model)
        paths = decompose_paths(result.solution, "c1")
        total = sum(p.fraction for p in paths)
        assert total == pytest.approx(
            result.solution.routed_fraction("c1"), abs=1e-6
        )


class TestEvaluateSolution:
    def test_uncongested_solution_carries_demand(self):
        model = make_model(demand=4.0)
        result = route_chains_dp(model)
        outcome = evaluate_solution(
            result.solution, instance_capacity_mbps=100.0,
            demand_unit_mbps=10.0,
        )
        assert outcome.total_throughput_mbps == pytest.approx(40.0)

    def test_instance_capacity_caps_throughput(self):
        model = make_model(demand=4.0)
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "B", "c"], 1.0)
        outcome = evaluate_solution(
            solution, instance_capacity_mbps=25.0, demand_unit_mbps=10.0
        )
        assert outcome.total_throughput_mbps == pytest.approx(25.0)

    def test_rtt_follows_model_latency(self):
        model = make_model()
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "B", "c"], 1.0)
        outcome = evaluate_solution(
            solution, instance_capacity_mbps=1000.0, demand_unit_mbps=1.0
        )
        route = next(iter(outcome.routes.values()))
        # Path a->B->c: (10 + 15) one-way, times rtt_scale=2.
        assert route.rtt_ms == pytest.approx(50.0, abs=1.0)

    def test_split_evaluates_both_paths(self):
        model = make_model(demand=4.0)
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "A", "c"], 0.5)
        solution.add_path("c1", ["a", "B", "c"], 0.5)
        outcome = evaluate_solution(
            solution, instance_capacity_mbps=100.0, demand_unit_mbps=10.0
        )
        assert len(outcome.routes) == 2
        assert outcome.total_throughput_mbps == pytest.approx(40.0)

    def test_loss_applies_to_wan_hops(self):
        model = make_model(demand=50.0)
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "B", "c"], 1.0)
        lossless = evaluate_solution(
            solution, instance_capacity_mbps=10_000.0,
            demand_unit_mbps=10.0,
        )
        lossy = evaluate_solution(
            solution, instance_capacity_mbps=10_000.0,
            demand_unit_mbps=10.0, loss_per_wan_hop=1e-4,
        )
        assert (
            lossy.total_throughput_mbps < lossless.total_throughput_mbps
        )

    def test_invalid_capacity_rejected(self):
        model = make_model()
        solution = RoutingSolution(model)
        with pytest.raises(EvaluationError):
            evaluate_solution(solution, instance_capacity_mbps=0.0)

    def test_shared_instances_across_chains(self):
        model = make_model(demand=4.0)
        model.add_chain(Chain("c2", "b", "c", ["fw"], 4.0))
        solution = RoutingSolution(model)
        solution.add_path("c1", ["a", "B", "c"], 1.0)
        solution.add_path("c2", ["b", "B", "c"], 1.0)
        outcome = evaluate_solution(
            solution, instance_capacity_mbps=60.0, demand_unit_mbps=10.0
        )
        # Both chains share fw@B (60 Mbps): max-min gives 30 each.
        assert outcome.total_throughput_mbps == pytest.approx(60.0)
        rates = sorted(
            m.throughput_mbps for m in outcome.routes.values()
        )
        assert rates == pytest.approx([30.0, 30.0])
