"""Tests for the federated control plane: shard map, regional 2PC
participant, cross-shard split + install, invariants, and the soak."""

import pytest

from repro.core.lp import LpObjective
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF
from repro.federation import (
    CoordinatorCrash,
    FaultPolicy,
    FederationError,
    GlobalCoordinator,
    build_shards,
    check_all,
    check_quiescence,
    run_soak,
    trivial_segment,
)
from repro.federation.regional import BorderLedger
from repro.scale import PartitionError, shard_map
from repro.topology.pops import PopGridConfig, generate_federation_workload

# Three regions on a line: {a0,a1} - {b0,b1} - {c0,c1}, intra delay 1,
# border delay 10.  VNF fa deploys only in region 0, fb in 1, fc in 2,
# so a chain [fa, fb, fc] must span all three regions.
_POSITIONS = {"a0": 0.0, "a1": 1.0, "b0": 11.0, "b1": 12.0, "c0": 22.0, "c1": 23.0}
_EDGES = [("a0", "a1"), ("a1", "b0"), ("b0", "b1"), ("b1", "c0"), ("c0", "c1")]
_BORDER_EDGES = {("a1", "b0"), ("b1", "c0")}


def tri_model(border_bw=(100.0, 100.0), chains=()):
    nodes = sorted(_POSITIONS)
    latency = {
        (u, v): abs(_POSITIONS[u] - _POSITIONS[v])
        for u in nodes
        for v in nodes
        if u < v
    }
    links = []
    for u, v in _EDGES:
        if (u, v) in _BORDER_EDGES:
            bw = border_bw[0] if u.startswith("a") else border_bw[1]
        else:
            bw = 1000.0
        links.append(Link(f"{u}-{v}", u, v, bw))
        links.append(Link(f"{v}-{u}", v, u, bw))
    sites = [CloudSite(n.upper(), n, 400.0) for n in nodes]
    vnfs = [
        VNF("fa", 1.0, {"A0": 200.0, "A1": 200.0}),
        VNF("fb", 1.0, {"B0": 200.0, "B1": 200.0}),
        VNF("fc", 1.0, {"C0": 200.0, "C1": 200.0}),
    ]
    return NetworkModel(nodes, latency, sites, vnfs, chains, links)


def intra_chain(name="ia", demand=5.0):
    return Chain(name, "a0", "a1", ["fa"], demand)


def cross_chain(name="x3", demand=10.0):
    """Spans all three regions: fa in 0, fb in 1, fc in 2."""
    return Chain(name, "a0", "c1", ["fa", "fb", "fc"], demand)


def tri_coordinator(border_bw=(100.0, 100.0), **kwargs):
    model = tri_model(border_bw=border_bw)
    return model, GlobalCoordinator(model, n_regions=3, **kwargs)


class ScriptedFaults:
    """Deterministic fault policy: reject every prepare in one region."""

    def __init__(self, reject_region, coordinator=None):
        self.reject_region = reject_region
        self.coordinator = coordinator
        self.observed_prepared = []

    def reject_prepare(self, chain, region, attempt_no):
        if region != self.reject_region:
            return False
        if self.coordinator is not None:
            # Snapshot what the *other* regions hold at rejection time,
            # so the test can prove the rollback was not vacuous.
            self.observed_prepared.append(
                {
                    r: tuple(regional.prepared_segments())
                    for r, regional in self.coordinator.regionals.items()
                }
            )
        return True

    def crash_after_prepares(self, chain, attempt_no):
        return None


class TestShardMap:
    def test_deterministic_disjoint_cover(self):
        model = tri_model()
        regions = shard_map(model, 3)
        assert regions == shard_map(model, 3)
        assert regions == (("a0", "a1"), ("b0", "b1"), ("c0", "c1"))

    def test_byte_stable_across_rebuilt_models(self):
        assert shard_map(tri_model(), 3) == shard_map(tri_model(), 3)

    def test_bounds_validated(self):
        model = tri_model()
        with pytest.raises(PartitionError):
            shard_map(model, 0)
        with pytest.raises(PartitionError):
            shard_map(model, 7)

    def test_generated_topology_cover(self):
        config = PopGridConfig(num_pops=12, num_metros=3, num_chains=12)
        model, _metro_of = generate_federation_workload(config)
        regions = shard_map(model, 3)
        nodes = [n for region in regions for n in region]
        assert sorted(nodes) == sorted(model.nodes)
        assert len(set(nodes)) == len(nodes)

    def test_build_shards_borders(self):
        model = tri_model()
        smap = build_shards(model, 3)
        assert sorted(smap.borders) == ["a1-b0", "b0-a1", "b1-c0", "c0-b1"]
        ab = smap.borders["a1-b0"]
        assert (ab.src_region, ab.dst_region) == (0, 1)
        assert ab.capacity == pytest.approx(
            model.link_headroom(model.links["a1-b0"])
        )
        # Each border is owned by its source-side region.
        assert "a1-b0" in smap.shards[0].owned_borders
        assert "b0-a1" in smap.shards[1].owned_borders
        assert smap.region_path(0, 2) == (0, 1, 2)

    def test_regional_model_restriction(self):
        model = tri_model()
        smap = build_shards(model, 3)
        regional = smap.regional_model(model, 1)
        assert sorted(regional.nodes) == ["b0", "b1"]
        # No border links: the regional planner never sees the cut.
        assert sorted(regional.links) == ["b0-b1", "b1-b0"]
        # Only regionally deployed VNFs survive.
        assert sorted(regional.vnfs) == ["fb"]
        assert sorted(regional.sites) == ["B0", "B1"]
        # Latency recomputed over the regional subgraph.
        assert regional.latency("b0", "b1") == pytest.approx(1.0)


class TestBorderLedger:
    def test_prepare_commit_release(self):
        ledger = BorderLedger("l", 100.0)
        assert ledger.prepare("s1", 60.0)
        assert ledger.prepare("s1", 60.0)  # idempotent re-prepare
        assert not ledger.prepare("s2", 50.0)  # over capacity
        assert ledger.prepare("s2", 40.0)
        assert ledger.reserved() == pytest.approx(100.0)
        assert ledger.commit("s1")
        assert ledger.commit("s1")  # idempotent
        ledger.abort("s2")
        assert ledger.reserved() == pytest.approx(60.0)
        ledger.teardown("s1")
        assert ledger.reserved() == 0.0

    def test_update_committed_is_guarded(self):
        ledger = BorderLedger("l", 100.0)
        ledger.prepare("s1", 60.0)
        ledger.commit("s1")
        assert not ledger.fits_update("s1", 120.0)
        assert not ledger.update_committed("s1", 120.0)
        assert ledger.committed["s1"] == pytest.approx(60.0)  # untouched
        assert ledger.update_committed("s1", 90.0)
        assert ledger.reserved() == pytest.approx(90.0)
        assert not ledger.update_committed("missing", 1.0)


class TestRegional2PC:
    def test_epoch_fencing_and_tombstone(self):
        model, coordinator = tri_coordinator()
        chain = cross_chain()
        seg0 = coordinator._split(chain, 0)[0]
        r0 = coordinator.regionals[0]
        assert r0.prepare(seg0, attempt=5)
        assert r0.prepare(seg0, attempt=5)  # idempotent
        assert not r0.prepare(seg0, attempt=3)  # stale attempt fenced
        assert not r0.commit(seg0.chain.name, attempt=3)
        assert not r0.abort(seg0.chain.name, attempt=3)
        assert r0.prepared_segments() == [seg0.chain.name]
        assert r0.commit(seg0.chain.name, attempt=5)
        assert r0.committed_segments() == [seg0.chain.name]
        r0.teardown(seg0.chain.name)
        # Tombstone: even a far-future attempt is fenced forever.
        assert not r0.prepare(seg0, attempt=10**6)
        assert r0.prepared_segments() == [] and r0.committed_segments() == []
        assert all(lg.reserved() == 0.0 for lg in r0.ledgers.values())
        assert seg0.chain.name not in r0.model.chains

    def test_rejected_prepare_leaves_no_partial_state(self):
        model, coordinator = tri_coordinator()
        chain = cross_chain(demand=10.0)
        segs = coordinator._split(chain, 0)
        r0 = coordinator.regionals[0]
        # Exhaust the a1-b0 ledger so the border reservation fails.
        r0.ledgers["a1-b0"].prepare("hog", 95.0)
        assert not r0.prepare(segs[0], attempt=1)
        assert r0.prepared_segments() == []
        assert segs[0].chain.name not in r0.model.chains
        assert r0.ledgers["a1-b0"].reserved() == pytest.approx(95.0)


class TestCrossInstall:
    def test_intra_classification(self):
        model, coordinator = tri_coordinator()
        region = coordinator.submit(intra_chain())
        assert region == 0
        assert coordinator.installed() == ["ia"]
        assert not coordinator.is_cross("ia")
        assert coordinator.regionals[0].intra_chains() == ["ia"]
        assert "ia" in model.chains

    def test_cross_install_spans_three_regions(self):
        model, coordinator = tri_coordinator()
        record = coordinator.submit(cross_chain(demand=10.0))
        assert [seg.region for seg in record.segments] == [0, 1, 2]
        assert coordinator.is_cross("x3")
        # Each crossing reserved the stage demand on the src-side ledger.
        assert coordinator.regionals[0].ledgers["a1-b0"].committed[
            "x3@s0"
        ] == pytest.approx(10.0)
        assert coordinator.regionals[1].ledgers["b1-c0"].committed[
            "x3@s1"
        ] == pytest.approx(10.0)
        hops = coordinator.end_to_end_route("x3")
        kinds = [h["kind"] for h in hops]
        assert kinds == ["segment", "border", "segment", "border", "segment"]
        assert check_all(coordinator) == []

    def test_prepare_rejection_rolls_back_all_regions(self):
        # Satellite 3: a chain spanning three regions where one regional
        # prepare is rejected must roll back reservations in ALL regions.
        model, coordinator = tri_coordinator()
        policy = ScriptedFaults(reject_region=2)
        policy.coordinator = coordinator
        coordinator.fault_policy = policy
        with pytest.raises(FederationError):
            coordinator.submit(cross_chain(demand=10.0))
        # The rejection was not vacuous: when region 2 said no, regions
        # 0 and 1 really held prepared segments (every attempt).
        assert len(policy.observed_prepared) == coordinator.max_attempts
        for snapshot in policy.observed_prepared:
            assert snapshot[0] == ("x3@s0",)
            assert snapshot[1] == ("x3@s1",)
        # ... and afterwards every region is fully rolled back.
        for regional in coordinator.regionals.values():
            assert regional.prepared_segments() == []
            assert regional.committed_segments() == []
            for ledger in regional.ledgers.values():
                assert ledger.prepared == {} and ledger.committed == {}
                assert ledger.reserved() == 0.0
            assert not any(
                name.startswith("x3@") for name in regional.model.chains
            )
        assert "x3" not in model.chains
        assert coordinator.installed() == []
        assert check_all(coordinator) == []

    def test_border_capacity_rejection_preserves_prior_installs(self):
        model, coordinator = tri_coordinator()  # border headroom 100
        coordinator.submit(cross_chain("x3", demand=60.0))
        with pytest.raises(FederationError):
            coordinator.submit(cross_chain("x4", demand=60.0))
        assert coordinator.installed() == ["x3"]
        ledger = coordinator.regionals[0].ledgers["a1-b0"]
        assert ledger.committed == {"x3@s0": pytest.approx(60.0)}
        assert ledger.prepared == {}
        assert "x4" not in model.chains
        assert check_all(coordinator) == []

    def test_coordinator_crash_residue_is_swept(self):
        model, coordinator = tri_coordinator()

        class CrashOnce:
            def reject_prepare(self, chain, region, attempt_no):
                return False

            def crash_after_prepares(self, chain, attempt_no):
                return 2 if attempt_no == 0 else None

        coordinator.fault_policy = CrashOnce()
        with pytest.raises(CoordinatorCrash):
            coordinator.submit(cross_chain(demand=10.0))
        # Crash after two prepares: fenced residue is still pinned.
        assert check_quiescence(coordinator) != []
        released = coordinator.sweep()
        assert [key for _region, key in released] == ["x3@s0", "x3@s1"]
        assert check_quiescence(coordinator) == []
        assert check_all(coordinator) == []
        for regional in coordinator.regionals.values():
            assert all(
                lg.reserved() == 0.0 for lg in regional.ledgers.values()
            )

    def test_remove_cross_releases_everything(self):
        model, coordinator = tri_coordinator()
        coordinator.submit(cross_chain(demand=10.0))
        coordinator.remove("x3")
        assert coordinator.installed() == []
        assert "x3" not in model.chains
        for regional in coordinator.regionals.values():
            assert regional.committed_segments() == []
            assert all(
                lg.reserved() == 0.0 for lg in regional.ledgers.values()
            )


class TestFederatedPlanning:
    def test_plan_all_carries_offered_demand(self):
        model, coordinator = tri_coordinator()
        coordinator.submit(intra_chain(demand=5.0))
        coordinator.submit(cross_chain(demand=10.0))
        plan = coordinator.plan_all(LpObjective.MAX_THROUGHPUT)
        assert plan.ok
        assert plan.offered_demand == pytest.approx(15.0)
        assert plan.carried_demand == pytest.approx(15.0)
        assert plan.violations == []
        assert check_all(coordinator, plan) == []

    def test_resolve_touches_only_changed_regions(self):
        model, coordinator = tri_coordinator()
        coordinator.submit(intra_chain(demand=5.0))
        coordinator.submit(cross_chain(demand=10.0))
        first = coordinator.plan_all()
        scaled = model.chains["ia"].scaled(1.2)
        model.remove_chain("ia")
        model.add_chain(scaled)
        second = coordinator.resolve(model, ["ia"])
        assert second.ok
        assert second.resolved_regions == (0,)
        # Untouched regions reuse the exact cached result object.
        assert second.per_region[1] is first.per_region[1]
        assert second.per_region[2] is first.per_region[2]

    def test_cross_demand_refresh_updates_border_reservations(self):
        model, coordinator = tri_coordinator()
        coordinator.submit(cross_chain(demand=10.0))
        scaled = model.chains["x3"].scaled(1.5)
        model.remove_chain("x3")
        model.add_chain(scaled)
        plan = coordinator.resolve(model, ["x3"])
        assert plan.ok
        ledger = coordinator.regionals[0].ledgers["a1-b0"]
        assert ledger.committed["x3@s0"] == pytest.approx(15.0)
        assert check_all(coordinator, plan) == []

    def test_border_overflow_on_refresh_is_atomic(self):
        # First border huge, second tight: the refresh must fail on the
        # second border *without* having resized the first.
        model, coordinator = tri_coordinator(border_bw=(1000.0, 100.0))
        coordinator.submit(cross_chain(demand=60.0))
        scaled = model.chains["x3"].scaled(2.0)
        model.remove_chain("x3")
        model.add_chain(scaled)
        with pytest.raises(FederationError):
            coordinator.resolve(model, ["x3"])
        assert coordinator.regionals[0].ledgers["a1-b0"].committed[
            "x3@s0"
        ] == pytest.approx(60.0)
        assert coordinator.regionals[1].ledgers["b1-c0"].committed[
            "x3@s1"
        ] == pytest.approx(60.0)

    def test_solve_syncs_against_shared_model(self):
        model, coordinator = tri_coordinator()
        model.add_chain(intra_chain(demand=5.0))
        model.add_chain(cross_chain(demand=10.0))
        plan = coordinator.solve(model)
        assert plan.ok
        assert coordinator.installed() == ["ia", "x3"]
        model.remove_chain("x3")
        coordinator.solve(model)
        assert coordinator.installed() == ["ia"]
        assert all(
            lg.reserved() == 0.0
            for regional in coordinator.regionals.values()
            for lg in regional.ledgers.values()
        )


class TestTrivialSegments:
    def test_transit_segment_skips_regional_lp(self):
        model, coordinator = tri_coordinator()
        # fa in region 0, fc in region 2: region 1 is pure transit and
        # its segment enters at b0 and leaves at b1 (distinct nodes), so
        # it IS planned; a same-node transit would be trivial.
        record = coordinator.submit(
            Chain("xt", "a0", "c1", ["fa", "fc"], 8.0)
        )
        middle = record.segments[1]
        assert middle.region == 1 and middle.chain.vnfs == ()
        assert not trivial_segment(middle.chain)
        assert trivial_segment(Chain("t", "b0", "b0", [], 8.0))
        plan = coordinator.plan_all()
        assert plan.ok and plan.carried_demand == pytest.approx(8.0)
        assert check_all(coordinator, plan) == []


class TestMetrics:
    def test_counters_and_collector(self):
        from repro.obs import MetricsRegistry, collect_federation

        registry = MetricsRegistry()
        model = tri_model()
        coordinator = GlobalCoordinator(model, n_regions=3, metrics=registry)
        coordinator.submit(intra_chain())
        coordinator.submit(cross_chain(demand=10.0))
        assert registry.value("federation.chains.intra") == 1
        assert registry.value("federation.chains.cross") == 1
        assert registry.value("federation.2pc.commits") == 1
        assert registry.value("federation.cross_shard_ratio") == pytest.approx(
            0.5
        )
        coordinator.plan_all()
        collect_federation(registry, coordinator)
        assert registry.value("federation.regions") == 3
        assert registry.value("federation.borders") == 4
        assert registry.value("federation.region_chains", region=0) == 2
        assert registry.value("federation.region_segments", region=1) == 1
        assert registry.value(
            "federation.border_utilization", border="a1-b0"
        ) == pytest.approx(0.1)


class TestGlobalSwitchboardIntegration:
    def build(self):
        import random

        from repro.controller import (
            GlobalSwitchboard,
            LocalSwitchboard,
        )
        from repro.dataplane import DataPlane
        from repro.edge import EdgeController, EdgeInstance
        from repro.vnf import StatefulFirewall, VnfService

        nodes = ["a0", "a1", "b0", "b1"]
        pos = {"a0": 0.0, "a1": 1.0, "b0": 11.0, "b1": 12.0}
        latency = {
            (u, v): abs(pos[u] - pos[v])
            for u in nodes
            for v in nodes
            if u < v
        }
        links = []
        for u, v in [("a0", "a1"), ("a1", "b0"), ("b0", "b1")]:
            bw = 100.0 if (u, v) == ("a1", "b0") else 1000.0
            links.append(Link(f"{u}-{v}", u, v, bw))
            links.append(Link(f"{v}-{u}", v, u, bw))
        sites = [CloudSite(n.upper(), n, 200.0) for n in nodes]
        caps = {"A0": 100.0, "A1": 100.0}
        model = NetworkModel(
            nodes, latency, sites, [VNF("fw", 1.0, caps)], links=links
        )

        dp = DataPlane(random.Random(11))
        gs = GlobalSwitchboard(model, dp)
        for site in ("A0", "A1", "B0", "B1"):
            gs.register_local_switchboard(LocalSwitchboard(site, dp))
        gs.register_vnf_service(
            VnfService(
                "fw",
                1.0,
                caps,
                instance_factory=lambda n, s: StatefulFirewall(
                    default_allow=True
                ),
            )
        )
        edge = EdgeController("vpn")
        ingress = EdgeInstance("edge.A0", "A0", dp)
        egress = EdgeInstance("edge.B1", "B1", dp)
        edge.register_instance(ingress)
        edge.register_instance(egress)
        edge.register_attachment("office-1", "A0")
        edge.register_attachment("office-2", "B1")
        gs.register_edge_service(edge)
        egress.attach_forwarder(gs.local_switchboard("B1").forwarders[0].name)

        coordinator = GlobalCoordinator(model, n_regions=2)
        gs.attach_federation(coordinator)
        return gs, coordinator

    def test_install_plan_remove_mirror_into_federation(self):
        from repro.controller import ChainSpecification
        from repro.federation import FederatedPlan

        gs, coordinator = self.build()
        spec = ChainSpecification(
            "corp",
            "vpn",
            "office-1",
            "office-2",
            ["fw"],
            forward_demand=5.0,
            reverse_demand=1.0,
            src_prefix="10.0.0.0/24",
            dst_prefixes=["20.0.0.0/24"],
        )
        installation = gs.create_chain(spec)
        assert installation.routed_fraction == pytest.approx(1.0)
        # The install was mirrored into the federation: a0 -> b1 crosses
        # the cut, so the chain was split and 2PC-installed.
        assert coordinator.installed() == ["corp"]
        assert coordinator.is_cross("corp")
        plan = gs.plan_routes()
        assert isinstance(plan, FederatedPlan)
        assert plan.ok
        assert check_all(coordinator, plan) == []
        gs.remove_chain("corp")
        assert coordinator.installed() == []
        assert all(
            lg.reserved() == 0.0
            for regional in coordinator.regionals.values()
            for lg in regional.ledgers.values()
        )


class TestSoak:
    def test_mini_soak_is_green(self):
        model, coordinator = tri_coordinator(
            metrics=None, max_attempts=3
        )
        base = [
            intra_chain("ia", 4.0),
            Chain("ib", "b0", "b1", ["fb"], 4.0),
            cross_chain("x3", 8.0),
        ]
        for chain in base:
            coordinator.submit(chain)
        pool = [
            Chain("x4", "a1", "c0", ["fb"], 6.0),
            Chain("ic", "c0", "c1", ["fc"], 4.0),
            Chain("x5", "a0", "b1", ["fa", "fb"], 6.0),
            Chain("x6", "b0", "c1", ["fc"], 5.0),
        ]
        coordinator.fault_policy = FaultPolicy(
            seed=3, reject_rate=0.3, crash_rate=0.25
        )
        report = run_soak(model, coordinator, pool, ops=40, seed=5)
        assert report["ok"], report["violations"]
        assert report["counts"]["submit"] > 0
        assert report["counts"]["resolve"] > 0
        assert report["final_status"] == "optimal"
