"""Tests for site-failure recovery and demand re-optimization."""

import random

import pytest

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
    fail_link,
    fail_site,
    reoptimize,
    restore_link,
    restore_site,
)
from repro.controller.failures import (
    FailureError,
    chains_through_link,
    chains_through_site,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService


def build_deployment(cap_a=40.0, cap_b=40.0):
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", 100.0),
        CloudSite("B", "b", 100.0),
        CloudSite("C", "c", 100.0),
    ]
    vnfs = [VNF("fw", 1.0, {"A": cap_a, "B": cap_b})]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(5))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B", "C"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    service = VnfService("fw", 1.0, {"A": cap_a, "B": cap_b})
    gs.register_vnf_service(service)
    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(ingress)
    edge.register_instance(egress)
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    return gs, service, ingress, egress


def spec(name="c1", demand=5.0, dst="20.0.0.0/24"):
    return ChainSpecification(
        name, "vpn", "in", "out", ["fw"],
        forward_demand=demand,
        src_prefix="10.0.0.0/24",
        dst_prefixes=[dst],
    )


class TestSiteFailure:
    def test_affected_chains_identified(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1"))
        used_sites = {
            dst for (_s, dst) in gs.router.solution.stage_flows("c1", 1)
        }
        used = used_sites.pop()
        assert chains_through_site(gs, used) == ["c1"]
        unused = ({"A", "B"} - {used}).pop()
        assert chains_through_site(gs, unused) == []

    def test_chain_rerouted_to_surviving_site(self):
        gs, service, ingress, egress = build_deployment()
        gs.create_chain(spec("c1"))
        # Find where it landed and fail that site.
        site = next(iter(
            dst for (_s, dst) in gs.router.solution.stage_flows("c1", 1)
        ))
        other = ({"A", "B"} - {site}).pop()
        report = fail_site(gs, site)
        assert report.affected_chains == ["c1"]
        assert report.carried_after["c1"] == pytest.approx(1.0)
        assert report.fully_recovered == ["c1"]
        # Routing now uses the surviving site.
        flows = gs.router.solution.stage_flows("c1", 1)
        assert all(dst == other for (_s, dst) in flows)
        # And the data plane follows for new connections.
        packet = Packet(FiveTuple("10.0.0.9", "20.0.0.9", "tcp", 1, 80))
        ingress.ingress(packet)
        assert egress.delivered

    def test_capacity_released_at_failed_and_committed_at_new(self):
        gs, service, *_ = build_deployment()
        gs.create_chain(spec("c1"))
        site = next(iter(
            dst for (_s, dst) in gs.router.solution.stage_flows("c1", 1)
        ))
        other = ({"A", "B"} - {site}).pop()
        fail_site(gs, site)
        assert service.committed(other) > 0
        assert service.pending_reservations() == 0

    def test_unrecoverable_when_no_capacity_left(self):
        gs, *_ = build_deployment(cap_a=40.0, cap_b=0.0)
        gs.create_chain(spec("c1"))
        report = fail_site(gs, "A")
        assert report.degraded == ["c1"]
        assert report.carried_after["c1"] == 0.0
        assert report.recovery_ratio() == 0.0

    def test_partial_recovery_counts(self):
        # B can only carry half of what A carried.
        gs, *_ = build_deployment(cap_a=10.0, cap_b=5.0)
        gs.create_chain(spec("c1", demand=5.0))  # load 10 fits A exactly
        before = gs.installations["c1"].routed_fraction
        report = fail_site(gs, "A")
        assert report.carried_before["c1"] == pytest.approx(before)
        assert 0 < report.carried_after["c1"] < before
        assert 0 < report.recovery_ratio() < 1

    def test_unaffected_chain_untouched(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1", dst="20.0.0.0/24"))
        c1_site = next(iter(
            dst for (_s, dst) in gs.router.solution.stage_flows("c1", 1)
        ))
        other = ({"A", "B"} - {c1_site}).pop()
        report = fail_site(gs, other)
        assert report.affected_chains == []
        assert gs.installations["c1"].routed_fraction == pytest.approx(1.0)

    def test_unknown_site_rejected(self):
        gs, *_ = build_deployment()
        with pytest.raises(FailureError):
            fail_site(gs, "nowhere")

    def test_restore_site_enables_extension(self):
        gs, service, *_ = build_deployment(cap_a=10.0, cap_b=10.0)
        gs.create_chain(spec("c1", demand=10.0))  # needs 20 load; has 20
        assert gs.installations["c1"].routed_fraction == pytest.approx(1.0)
        fail_site(gs, "A")
        assert gs.installations["c1"].routed_fraction < 1.0
        restore_site(gs, "A", site_capacity=100.0, vnf_capacity={"fw": 10.0})
        gained = gs.extend_chain("c1")
        assert gained > 0
        assert gs.installations["c1"].routed_fraction == pytest.approx(1.0)


class TestLinkFailure:
    """fail_link is the first-class twin of fail_site: infinite delay on
    the pair, affected chains rolled back and recomputed, restorable."""

    @staticmethod
    def used_link(gs):
        """The backbone link chain c1 crosses, plus a surviving site."""
        site = next(
            dst for (_s, dst) in gs.router.solution.stage_flows("c1", 1)
        )
        if site == "B":
            return ("a", "b"), "A"
        return ("a", "c"), "B"

    def test_affected_chains_identified(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1"))
        link, _other = self.used_link(gs)
        assert chains_through_link(gs, *link) == ["c1"]
        unused = ("a", "b") if link == ("a", "c") else ("a", "c")
        assert chains_through_link(gs, *unused) == []

    def test_chain_rerouted_around_failed_link(self):
        gs, service, ingress, egress = build_deployment()
        gs.create_chain(spec("c1"))
        link, other = self.used_link(gs)
        report = fail_link(gs, *link)
        assert report.kind == "link"
        assert report.site == f"{link[0]}<->{link[1]}"
        assert report.affected_chains == ["c1"]
        assert report.carried_after["c1"] == pytest.approx(1.0)
        # The new route avoids the dead pair entirely.
        assert chains_through_link(gs, *link) == []
        assert service.committed(other) > 0
        assert service.pending_reservations() == 0
        # Delay on the pair is now infinite in both directions.
        assert gs.model.latency(*link) == float("inf")
        assert gs.model.latency(link[1], link[0]) == float("inf")

    def test_site_names_resolve_to_nodes(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1"))
        report = fail_link(gs, "A", "B")
        assert report.site == "a<->b"
        restore_link(gs, "A", "B")
        assert gs.model.latency("a", "b") == pytest.approx(10.0)

    def test_unrecoverable_when_only_deployment_behind_link(self):
        gs, *_ = build_deployment(cap_a=0.0, cap_b=40.0)
        gs.create_chain(spec("c1"))
        report = fail_link(gs, "a", "b")
        assert report.degraded == ["c1"]
        assert report.carried_after["c1"] == 0.0

    def test_restore_link_enables_extension(self):
        gs, *_ = build_deployment(cap_a=0.0, cap_b=40.0)
        gs.create_chain(spec("c1"))
        fail_link(gs, "a", "b")
        assert gs.installations["c1"].routed_fraction == 0.0
        restore_link(gs, "a", "b")
        assert gs.model.latency("a", "b") == pytest.approx(10.0)
        assert gs.extend_chain("c1") > 0
        assert gs.installations["c1"].routed_fraction == pytest.approx(1.0)

    def test_idempotent_refail_keeps_original_delay(self):
        gs, *_ = build_deployment()
        fail_link(gs, "a", "b")
        fail_link(gs, "a", "b")  # re-fail: original delay stays stashed
        restore_link(gs, "a", "b")
        assert gs.model.latency("a", "b") == pytest.approx(10.0)
        with pytest.raises(FailureError):
            restore_link(gs, "a", "b")

    def test_invalid_pairs_rejected(self):
        gs, *_ = build_deployment()
        with pytest.raises(FailureError):
            fail_link(gs, "a", "a")
        with pytest.raises(FailureError):
            fail_link(gs, "a", "nowhere")
        with pytest.raises(FailureError):
            restore_link(gs, "a", "b")  # never failed

    def test_unaffected_chain_untouched(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1"))
        link, _other = self.used_link(gs)
        unused = ("a", "b") if link == ("a", "c") else ("a", "c")
        report = fail_link(gs, *unused)
        assert report.affected_chains == []
        assert gs.installations["c1"].routed_fraction == pytest.approx(1.0)


class TestReoptimize:
    def test_unchanged_demand_skipped(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1"))
        flows_before = dict(gs.router.solution.stage_flows("c1", 1))
        report = reoptimize(gs, {"c1": 1.0})
        assert report.skipped == ["c1"]
        assert report.rerouted == []
        assert dict(gs.router.solution.stage_flows("c1", 1)) == flows_before

    def test_demand_increase_rerouted_and_committed(self):
        gs, service, *_ = build_deployment()
        gs.create_chain(spec("c1", demand=5.0))
        committed_before = sum(
            gs.installations["c1"].committed_load.values()
        )
        report = reoptimize(gs, {"c1": 2.0})
        assert report.rerouted == ["c1"]
        assert gs.model.chains["c1"].forward_traffic[0] == pytest.approx(10.0)
        committed_after = sum(gs.installations["c1"].committed_load.values())
        assert committed_after == pytest.approx(2 * committed_before)

    def test_demand_decrease_frees_capacity(self):
        gs, service, *_ = build_deployment(cap_a=12.0, cap_b=0.0)
        gs.create_chain(spec("c1", demand=6.0))  # exactly fills A
        report = reoptimize(gs, {"c1": 0.5})
        assert report.rerouted == ["c1"]
        # Another chain now fits.
        gs.create_chain(spec("c2", demand=3.0, dst="20.0.1.0/24"))
        assert gs.installations["c2"].routed_fraction == pytest.approx(1.0)

    def test_total_offered_and_carried_reported(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1", demand=5.0))
        report = reoptimize(gs, {"c1": 2.0})
        assert report.offered_after == pytest.approx(10.0)
        assert report.carried_after == pytest.approx(10.0)
        assert report.carried_share == pytest.approx(1.0)

    def test_unknown_chain_rejected(self):
        gs, *_ = build_deployment()
        with pytest.raises(KeyError):
            reoptimize(gs, {"ghost": 2.0})

    def test_negative_factor_rejected(self):
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1"))
        with pytest.raises(ValueError):
            reoptimize(gs, {"c1": -1.0})

    def test_mid_round_removal_skipped_not_keyerror(self):
        """Chains torn down while a round is running are skipped.

        Regression test: ``reoptimize`` used to iterate the live
        ``gs.installations`` dict, so a chain removed by a controller
        callback during an earlier chain's re-route (operator teardown
        between bus messages, admission-control eviction) raised
        ``KeyError`` halfway through the round, leaving released-but-
        unrouted chains behind.  The round now snapshots the
        installation set at entry and re-checks membership per step.
        """
        gs, *_ = build_deployment()
        gs.create_chain(spec("c1", demand=5.0))
        gs.create_chain(spec("c2", demand=4.0, dst="20.0.1.0/24"))
        original = gs._route_and_commit

        def evicting(name):
            if name == "c1":
                gs.remove_chain("c2")
            return original(name)

        gs._route_and_commit = evicting
        report = reoptimize(gs, {"c1": 2.0, "c2": 2.0})
        assert "c2" not in gs.installations
        assert report.vanished == ["c2"]
        assert report.rerouted == ["c1"]
        assert gs.installations["c1"].routed_fraction == pytest.approx(1.0)
        # Accounting covers only chains that survived the round.
        assert report.offered_after == pytest.approx(10.0)
        assert report.carried_after == pytest.approx(10.0)

    def test_diurnal_cycle_round_trip(self):
        """Drive a chain through a simulated day of demand factors."""
        from repro.topology.timeseries import diurnal_factor

        gs, *_ = build_deployment()
        gs.create_chain(spec("c1", demand=5.0))
        base = 5.0
        for hour in (0, 6, 12, 20):
            target = base * diurnal_factor(hour)
            current = gs.model.chains["c1"].forward_traffic[0]
            reoptimize(gs, {"c1": target / current}, threshold=0.0)
            assert gs.model.chains["c1"].forward_traffic[0] == pytest.approx(
                target
            )
            assert gs.installations["c1"].routed_fraction == pytest.approx(1.0)
