"""Property-based tests for the E2E allocator, the simulated network,
the capacity planners, and the workload generator."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.capacity import plan_cloud_capacity
from repro.core.model import Chain, CloudSite, NetworkModel, VNF
from repro.dataplane.e2e import E2ERoute, E2ETestbed, VnfInstanceSpec
from repro.simnet.network import LinkSpec, SimNetwork
from repro.topology.workload import WorkloadConfig, place_vnfs

TOL = 1e-6


# ---------------------------------------------------------------------------
# E2E max-min fairness
# ---------------------------------------------------------------------------


@st.composite
def e2e_scenario(draw):
    rng = random.Random(draw(st.integers(0, 100_000)))
    num_instances = draw(st.integers(1, 4))
    num_routes = draw(st.integers(1, 6))
    bed = E2ETestbed(rtt_ms={("A", "B"): 50.0})
    instances = []
    for i in range(num_instances):
        name = f"i{i}"
        bed.add_instance(
            VnfInstanceSpec(name, rng.choice(["A", "B"]), rng.uniform(10, 200))
        )
        instances.append(name)
    for r in range(num_routes):
        used = rng.sample(instances, rng.randint(1, num_instances))
        sites = ["A"]
        for inst in used:
            sites.append(bed.instances[inst].site)
        sites.append("B")
        bed.add_route(
            E2ERoute(f"r{r}", sites, used, rng.uniform(5, 400))
        )
    return bed


@settings(max_examples=60, deadline=None)
@given(e2e_scenario())
def test_e2e_allocation_is_feasible(bed):
    result = bed.evaluate()
    # No route exceeds its demand.
    for name, metrics in result.routes.items():
        assert metrics.throughput_mbps <= bed.routes[name].demand_mbps + TOL
        assert metrics.throughput_mbps >= -TOL
    # No instance exceeds its capacity.
    for inst_name, spec in bed.instances.items():
        load = sum(
            result.routes[r].throughput_mbps
            for r, route in bed.routes.items()
            if inst_name in route.instances
        )
        assert load <= spec.capacity_mbps + 1e-6


@settings(max_examples=60, deadline=None)
@given(e2e_scenario())
def test_e2e_allocation_is_work_conserving(bed):
    """No route can be unilaterally increased: it is either at its
    demand or crosses a saturated instance."""
    result = bed.evaluate()
    residual = {
        name: spec.capacity_mbps for name, spec in bed.instances.items()
    }
    for name, metrics in result.routes.items():
        for inst in bed.routes[name].instances:
            residual[inst] -= metrics.throughput_mbps
    for name, metrics in result.routes.items():
        route = bed.routes[name]
        if metrics.throughput_mbps >= route.demand_mbps - 1e-6:
            continue
        slack = min(
            (residual[inst] for inst in route.instances), default=0.0
        )
        assert slack <= 1e-6, f"route {name} could take {slack} more"


@settings(max_examples=40, deadline=None)
@given(e2e_scenario())
def test_e2e_allocation_is_max_min_fair(bed):
    """A route below its demand is bottlenecked at an instance where it
    already holds a maximal share (no smaller route at that instance
    could give it anything)."""
    result = bed.evaluate()
    for name, metrics in result.routes.items():
        route = bed.routes[name]
        if metrics.throughput_mbps >= route.demand_mbps - 1e-6:
            continue
        # At some shared instance, no other route gets more than this
        # one unless that route is itself demand-limited there.
        fair_somewhere = False
        for inst in route.instances:
            sharers = [
                r for r, other in bed.routes.items()
                if inst in other.instances
            ]
            bigger = [
                r for r in sharers
                if result.routes[r].throughput_mbps
                > metrics.throughput_mbps + 1e-6
                and result.routes[r].throughput_mbps
                < bed.routes[r].demand_mbps - 1e-6
            ]
            if not bigger:
                fair_somewhere = True
                break
        assert fair_somewhere, f"route {name} starved unfairly"


# ---------------------------------------------------------------------------
# Simulated network conservation
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 30),
    st.integers(100, 5000),
    st.integers(1, 50),
    st.integers(0, 10_000),
)
def test_simnet_messages_conserved(n_messages, size, buffer_kb, seed):
    """Every sent message is either delivered or dropped, never both."""
    rng = random.Random(seed)
    net = SimNetwork()
    net.add_host("a")
    net.add_host("b")
    net.connect(
        "a", "b",
        LinkSpec(delay_s=0.01, bandwidth_bps=1e6,
                 buffer_bytes=buffer_kb * 1000),
    )
    delivered = []
    net.host("b").on_receive(lambda s, p: delivered.append(p))
    for i in range(n_messages):
        net.sim.schedule(
            rng.uniform(0, 0.05), net.send, "a", "b", i, size
        )
    net.run()
    stats = net.link_stats("a", "b")
    assert stats.sent == n_messages
    assert stats.delivered + stats.dropped == n_messages
    assert len(delivered) == stats.delivered
    assert stats.bytes_sent == n_messages * size


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 20), st.integers(0, 10_000))
def test_simnet_fifo_ordering(n_messages, seed):
    """Messages on one link are delivered in send order."""
    net = SimNetwork()
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", LinkSpec(delay_s=0.01, bandwidth_bps=1e6))
    got = []
    net.host("b").on_receive(lambda s, p: got.append(p))
    for i in range(n_messages):
        net.send("a", "b", i, 500)
    net.run()
    assert got == list(range(n_messages))


# ---------------------------------------------------------------------------
# Workload generator invariants
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=1.0),
    st.integers(4, 30),
    st.integers(0, 10_000),
)
def test_vnf_placement_capacity_conserved(coverage, num_vnfs, seed):
    """Summed per-VNF capacity at a site never exceeds site capacity."""
    config = WorkloadConfig(
        num_vnfs=num_vnfs,
        coverage=coverage,
        site_capacity=100.0,
        min_chain_length=1,
        max_chain_length=min(3, num_vnfs),
    )
    sites = [f"S{i}" for i in range(12)]
    vnfs = place_vnfs(config, sites, random.Random(seed))
    per_site: dict[str, float] = {}
    for vnf in vnfs:
        for site, cap in vnf.site_capacity.items():
            per_site[site] = per_site.get(site, 0.0) + cap
    for total in per_site.values():
        assert total <= 100.0 + 1e-6
    # Every VNF got the right number of sites.
    expected = max(1, round(coverage * len(sites)))
    assert all(len(v.sites) == expected for v in vnfs)


# ---------------------------------------------------------------------------
# Cloud capacity planning monotonicity
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_cloud_planning_alpha_monotone_in_budget(seed):
    rng = random.Random(seed)
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 20.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", rng.uniform(5, 30)),
        CloudSite("B", "b", rng.uniform(5, 30)),
        CloudSite("C", "c", rng.uniform(5, 30)),
    ]
    vnfs = [
        VNF("f", 1.0, {"A": sites[0].capacity, "B": sites[1].capacity})
    ]
    chains = [Chain("c1", "a", "c", ["f"], rng.uniform(0.5, 3.0))]
    model = NetworkModel(nodes, latency, sites, vnfs, chains)
    alphas = [
        plan_cloud_capacity(model, budget).alpha
        for budget in (0.0, 10.0, 30.0)
    ]
    assert alphas == sorted(alphas)
    assert alphas[0] > 0
