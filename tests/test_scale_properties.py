"""Property tests: solver farm vs. monolithic SB-LP equivalence.

On models whose chains form disjoint coupling clusters the farm's
partitioning is *exact* (the joint LP is block-diagonal), so the merged
result must match the monolithic solve for every objective:

- ``MIN_LATENCY``: identical objective (sum over partitions) and all
  demand carried in both;
- ``MAX_THROUGHPUT``: identical carried demand (the raw objective mixes
  in a per-model latency-tiebreak scaling, so demand is the comparable
  quantity);
- ``MIN_MLU``: identical bottleneck utilization (max over partitions).

Split (inexact) partitioning is exercised too: the merged solution must
always be feasible for the original model and carry no more than the
monolithic optimum.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF
from repro.scale import SolverFarm, partition_chains

TOL = 1e-6


@st.composite
def clustered_model(draw, with_links=False):
    """2-4 disjoint islands; each island has its own nodes, sites, one
    VNF, optional links, and 1-2 chains.  No resource is shared across
    islands, so coupling groups == islands and partitioning is exact."""
    rng = random.Random(draw(st.integers(0, 100_000)))
    num_clusters = draw(st.integers(2, 4))
    nodes, latency, sites, vnfs, chains = [], {}, [], [], []
    links, routing = [], {}
    for i in range(num_clusters):
        a, b, c = f"a{i}", f"b{i}", f"c{i}"
        nodes += [a, b, c]
        latency[(a, b)] = rng.uniform(5, 20)
        latency[(a, c)] = rng.uniform(20, 40)
        latency[(b, c)] = rng.uniform(5, 20)
        sites += [
            CloudSite(f"A{i}", a, rng.uniform(50, 200)),
            CloudSite(f"B{i}", b, rng.uniform(50, 200)),
        ]
        vnfs.append(
            VNF(
                f"f{i}",
                rng.uniform(0.5, 1.5),
                {f"A{i}": rng.uniform(20, 60), f"B{i}": rng.uniform(20, 60)},
            )
        )
        for j in range(rng.randint(1, 2)):
            chains.append(
                Chain(
                    f"c{i}.{j}", a, c, [f"f{i}"],
                    rng.uniform(0.5, 5.0), rng.uniform(0.0, 1.0),
                )
            )
        if with_links:
            for n1, n2 in ((a, b), (b, c), (a, c)):
                cap = rng.uniform(15, 60)
                links.append(Link(f"{n1}-{n2}", n1, n2, cap))
                links.append(Link(f"{n2}-{n1}", n2, n1, cap))
                routing[(n1, n2)] = {f"{n1}-{n2}": 1.0}
                routing[(n2, n1)] = {f"{n2}-{n1}": 1.0}
    model = NetworkModel(nodes, latency, sites, vnfs, chains, links, routing)
    return model


@settings(max_examples=25, deadline=None)
@given(clustered_model())
def test_clusters_partition_exactly(model):
    plan = partition_chains(model, max_chains=2)
    assert plan.exact
    clusters = {name.split(".")[0] for name in model.chains}
    assert len(plan.partitions) == len(clusters)


@settings(max_examples=20, deadline=None)
@given(clustered_model())
def test_min_latency_equivalence(model):
    mono = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
    farm = SolverFarm(partition_size=2, max_workers=1).solve(
        model, LpObjective.MIN_LATENCY
    )
    assert farm.ok == mono.ok
    if not mono.ok:
        return
    assert farm.exact
    assert farm.objective == pytest.approx(mono.objective, rel=1e-5, abs=1e-6)
    for name in model.chains:
        assert farm.solution.routed_fraction(name) == pytest.approx(
            1.0, abs=1e-5
        )
    farm.solution.validate()


@settings(max_examples=20, deadline=None)
@given(clustered_model())
def test_max_throughput_equivalence(model):
    mono = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    farm = SolverFarm(partition_size=2, max_workers=1).solve(
        model, LpObjective.MAX_THROUGHPUT
    )
    assert farm.ok and mono.ok
    assert farm.exact
    assert farm.solution.throughput() == pytest.approx(
        mono.solution.throughput(), rel=1e-5, abs=1e-6
    )
    farm.solution.validate()


@settings(max_examples=15, deadline=None)
@given(clustered_model(with_links=True))
def test_min_mlu_equivalence(model):
    mono = solve_chain_routing_lp(model, LpObjective.MIN_MLU)
    farm = SolverFarm(partition_size=2, max_workers=1).solve(
        model, LpObjective.MIN_MLU
    )
    assert farm.ok and mono.ok
    assert farm.exact
    # Merged MIN_MLU is the max over partitions; the monolithic beta is
    # the same bottleneck.
    assert farm.objective == pytest.approx(mono.objective, rel=1e-5, abs=1e-6)
    assert farm.solution.max_link_utilization() == pytest.approx(
        mono.solution.max_link_utilization(), rel=1e-5, abs=1e-6
    )


@st.composite
def coupled_workload(draw):
    """One shared VNF deployment and one shared bottleneck link: a
    single coupling group that forced splitting makes inexact."""
    rng = random.Random(draw(st.integers(0, 100_000)))
    num_chains = draw(st.integers(3, 6))
    nodes = ["a", "b"]
    latency = {("a", "b"): rng.uniform(5, 20)}
    sites = [CloudSite("A", "a", 1000.0), CloudSite("B", "b", 1000.0)]
    demands = [rng.uniform(1.0, 6.0) for _ in range(num_chains)]
    vnfs = [VNF("fw", 1.0, {"B": rng.uniform(0.7, 2.0) * sum(demands) * 2})]
    chains = [
        Chain(f"c{i}", "a", "b", ["fw"], demands[i], 0.0)
        for i in range(num_chains)
    ]
    cap = rng.uniform(0.6, 1.5) * sum(demands)
    links = [Link("ab", "a", "b", cap), Link("ba", "b", "a", cap)]
    routing = {("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0}}
    return NetworkModel(nodes, latency, sites, vnfs, chains, links, routing)


@settings(max_examples=20, deadline=None)
@given(coupled_workload())
def test_split_solution_feasible_and_bounded(model):
    mono = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    farm = SolverFarm(partition_size=2, max_workers=1).solve(
        model, LpObjective.MAX_THROUGHPUT
    )
    assert farm.ok and mono.ok
    # Feasibility is unconditional: shares sum to the original budgets.
    assert farm.solution.violations() == []
    # The farm never carries more than the joint optimum.
    assert (
        farm.solution.throughput()
        <= mono.solution.throughput() * (1 + 1e-6) + TOL
    )
