"""End-to-end tests for the chaos soak runner.

The headline assertions mirror the subsystem's acceptance criteria:
distinct seeds all complete with zero invariant violations, the same
seed replays byte-identically, and the engine really applied every kind
of fault in the schedule.
"""

import json

import pytest

from repro.chaos import (
    ScenarioConfig,
    SoakConfig,
    generate_scenario,
    run_soak,
)
from repro.cli import main as cli_main

DURATION = 20.0


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_soak_zero_violations_across_seeds(seed):
    report = run_soak(SoakConfig(seed=seed, duration_s=DURATION))
    assert report.passed, report.render()
    # The schedule actually ran, end to end.
    applied = {kind for (_at, kind) in report.events_applied}
    assert {"link_down", "link_up", "fail_site", "restore_site",
            "crash_host", "restart_host", "kill_leader"} <= applied
    # Faults disturbed the system and were accounted.
    assert sum(report.drop_reasons.values()) > 0
    assert report.leaders_killed == 1
    assert report.leader_transitions >= 1
    # The provisioned headroom absorbs a single-site outage.
    assert report.carried_after >= 0.999


def test_replay_is_byte_identical():
    a = run_soak(SoakConfig(seed=9, duration_s=DURATION))
    b = run_soak(SoakConfig(seed=9, duration_s=DURATION))
    assert a.to_json() == b.to_json()
    assert a.scenario_digest == b.scenario_digest


def test_distinct_seeds_distinct_schedules():
    digests = {
        run_soak(SoakConfig(seed=s, duration_s=10.0,
                            scenario=ScenarioConfig(
                                duration_s=10.0, site_outage=False,
                                proxy_crash=False))).scenario_digest
        for s in (11, 12, 13)
    }
    assert len(digests) == 3


def test_explicit_scenario_is_replayed():
    config = SoakConfig(seed=4, duration_s=DURATION)
    wan_pairs = [("wan.A", "proxy.B"), ("wan.B", "proxy.C")]
    scenario = generate_scenario(4, ("A", "B", "C", "D"), wan_pairs,
                                 config.scenario_config())
    report = run_soak(config, scenario=scenario)
    assert report.scenario_digest == scenario.digest()
    assert report.passed, report.render()


def test_partition_scenario_passes():
    config = SoakConfig(
        seed=6, duration_s=DURATION,
        scenario=ScenarioConfig(duration_s=DURATION, partition=True),
    )
    report = run_soak(config)
    assert report.passed, report.render()
    assert report.event_counts.get("partition") == 1
    assert report.drop_reasons.get("partition", 0) >= 0


def test_site_outage_recovery_reported():
    report = run_soak(SoakConfig(seed=1, duration_s=DURATION))
    site_recoveries = [r for r in report.recovery if r["kind"] == "site"]
    assert len(site_recoveries) == 1
    assert site_recoveries[0]["ratio"] == pytest.approx(1.0)


def test_proxy_crash_turns_publishes_into_drops():
    """While a proxy is down, publishes to it are accounted drops, not
    exceptions -- the strict=False bus path."""
    report = run_soak(SoakConfig(seed=1, duration_s=DURATION))
    assert report.event_counts["crash_host"] == 1
    assert report.drop_reasons.get("dst_down", 0) > 0
    assert report.bus_delivered < report.bus_published * 3  # fan-out cap


def test_report_document_shape():
    report = run_soak(SoakConfig(seed=2, duration_s=10.0))
    doc = json.loads(report.to_json())
    assert doc["seed"] == 2
    assert doc["passed"] is True
    assert doc["violations"] == []
    assert doc["probes_run"] > 0
    assert set(doc["bus"]) == {"published", "delivered", "wan_drops"}
    assert doc["scenario_digest"] == report.scenario_digest
    # render() must not blow up and must carry the verdict.
    assert "PASS" in report.render()


class TestCli:
    def test_chaos_command_passes_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli_main([
            "chaos", "--seed", "3", "--duration", "10", "--json",
            "--out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["seed"] == 3 and doc["passed"] is True
        printed = json.loads(capsys.readouterr().out)
        assert printed == doc

    def test_chaos_command_human_output(self, capsys):
        code = cli_main(["chaos", "--seed", "1", "--duration", "10"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
