"""Tests for the seeded scenario generator: reproducibility above all."""

import pytest

from repro.chaos import (
    FaultEvent,
    Scenario,
    ScenarioConfig,
    ScenarioError,
    generate_scenario,
)

SITES = ("A", "B", "C")
PAIRS = (("wan.A", "proxy.B"), ("wan.B", "proxy.C"), ("wan.C", "proxy.A"))


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            FaultEvent(1.0, "meteor_strike")

    def test_negative_time_rejected(self):
        with pytest.raises(ScenarioError):
            FaultEvent(-1.0, "link_down", ("a", "b"))

    def test_to_doc_round_trippable(self):
        event = FaultEvent(2.5, "link_loss", ("a", "b"), 0.3)
        doc = event.to_doc()
        assert doc == {
            "at": 2.5, "kind": "link_loss", "target": ["a", "b"],
            "value": 0.3,
        }


class TestScenario:
    def test_events_sorted_by_time(self):
        scenario = Scenario(
            seed=0, duration_s=10.0,
            events=[
                FaultEvent(5.0, "link_up", ("a", "b")),
                FaultEvent(1.0, "link_down", ("a", "b")),
            ],
        )
        assert [e.at for e in scenario.events] == [1.0, 5.0]

    def test_counts(self):
        scenario = Scenario(
            seed=0, duration_s=10.0,
            events=[
                FaultEvent(1.0, "link_down", ("a", "b")),
                FaultEvent(2.0, "link_down", ("a", "c")),
                FaultEvent(3.0, "kill_leader"),
            ],
        )
        assert scenario.counts() == {"link_down": 2, "kill_leader": 1}


class TestGenerateScenario:
    def test_same_seed_byte_identical(self):
        a = generate_scenario(42, SITES, PAIRS)
        b = generate_scenario(42, SITES, PAIRS)
        assert a.to_json() == b.to_json()
        assert a.digest() == b.digest()

    def test_distinct_seeds_differ(self):
        digests = {
            generate_scenario(seed, SITES, PAIRS).digest()
            for seed in range(10)
        }
        assert len(digests) == 10

    def test_default_mix_present(self):
        counts = generate_scenario(1, SITES, PAIRS).counts()
        assert counts["link_down"] == 3
        assert counts["link_up"] == 3
        assert counts["fail_site"] == 1
        assert counts["restore_site"] == 1
        assert counts["crash_host"] == 1
        assert counts["restart_host"] == 1
        assert counts["kill_leader"] == 1
        assert counts["link_loss"] == 2  # on + off per window
        assert counts["link_degrade"] == 2

    def test_events_inside_middle_window(self):
        scenario = generate_scenario(7, SITES, PAIRS)
        for event in scenario.events:
            assert 0.1 * 60.0 <= event.at <= 0.9 * 60.0

    def test_heal_follows_fault(self):
        """Every down/crash/outage has its matching heal later on."""
        scenario = generate_scenario(3, SITES, PAIRS)
        pairs = {
            "link_down": "link_up",
            "crash_host": "restart_host",
            "fail_site": "restore_site",
        }
        for fault_kind, heal_kind in pairs.items():
            faults = [e for e in scenario.events if e.kind == fault_kind]
            heals = {
                e.target: e.at for e in scenario.events
                if e.kind == heal_kind
            }
            for fault in faults:
                assert fault.target in heals
                assert heals[fault.target] >= fault.at

    def test_partition_opt_in(self):
        config = ScenarioConfig(partition=True)
        counts = generate_scenario(1, SITES, PAIRS, config).counts()
        assert counts["partition"] == 1
        assert counts["heal_partition"] == 1
        default = generate_scenario(1, SITES, PAIRS).counts()
        assert "partition" not in default

    def test_proxy_crash_targets_proxy_host(self):
        scenario = generate_scenario(5, SITES, PAIRS)
        crash = next(e for e in scenario.events if e.kind == "crash_host")
        assert crash.target[0].startswith("proxy.")

    def test_no_wan_pairs_skips_link_events(self):
        counts = generate_scenario(1, SITES, ()).counts()
        assert "link_down" not in counts
        assert counts["fail_site"] == 1

    def test_validation(self):
        with pytest.raises(ScenarioError):
            generate_scenario(1, (), PAIRS)
        with pytest.raises(ScenarioError):
            generate_scenario(1, SITES, PAIRS, ScenarioConfig(duration_s=0))
