"""Tests for OpenNF-style flow migration between forwarders."""

import random

import pytest

from repro.dataplane.forwarder import DataPlane, Forwarder, VnfInstance
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.dataplane.migration import (
    MigrationError,
    drain_forwarder,
    migrate_flows,
)
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice

LBL = Labels(chain=1, egress_site="E")


def flow(i: int) -> FiveTuple:
    return FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1000 + i, 80)


class Sink:
    def __init__(self, name="out"):
        self.name = name
        self.count = 0

    def receive_from_chain(self, packet, came_from):
        packet.record(self.name)
        self.count += 1


def build_fabric():
    dp = DataPlane(random.Random(9))
    f1 = dp.add_forwarder(Forwarder("f1", "A"))
    f2 = dp.add_forwarder(Forwarder("f2", "A"))
    g1 = VnfInstance("g1", "G", "A")
    f1.attach(g1)
    sink = Sink()
    dp.add_endpoint(sink)
    rule = LoadBalancingRule(
        local_instances=WeightedChoice({"g1": 1.0}),
        next_forwarders=WeightedChoice({"out": 1.0}),
    )
    f1.install_rule(1, "E", rule)
    return dp, f1, f2, g1, sink


def establish(dp, n=8):
    traces = {}
    for i in range(n):
        packet = Packet(flow(i), labels=LBL)
        dp.send_forward(packet, "f1", "edge")
        traces[i] = list(packet.trace)
    return traces


class TestMigrateFlows:
    def test_moves_entries_and_instances(self):
        dp, f1, f2, g1, _sink = build_fabric()
        establish(dp)
        report = migrate_flows(f1, f2)
        assert report.entries_moved == 8
        assert report.instances_moved == ["g1"]
        assert len(f1.flow_table) == 0
        assert len(f2.flow_table) == 8
        assert "g1" in f2.attached and "g1" not in f1.attached

    def test_existing_flows_keep_instance_at_new_forwarder(self):
        dp, f1, f2, g1, _sink = build_fabric()
        establish(dp)
        migrate_flows(f1, f2)
        f2.install_rule(
            1,
            "E",
            LoadBalancingRule(
                local_instances=WeightedChoice({"g1": 1.0}),
                next_forwarders=WeightedChoice({"out": 1.0}),
            ),
        )
        before = g1.packets_processed
        packet = Packet(flow(0), labels=LBL)
        dp.send_forward(packet, "f2", "edge")
        assert g1.packets_processed == before + 1
        assert "g1" in packet.trace

    def test_chain_filter_moves_only_matching(self):
        dp, f1, f2, _g1, _sink = build_fabric()
        other = Labels(chain=2, egress_site="E")
        f1.install_rule(
            2, "E",
            LoadBalancingRule(next_forwarders=WeightedChoice({"out": 1.0})),
        )
        establish(dp, 4)
        dp.send_forward(Packet(flow(50), labels=other), "f1", "edge")
        report = migrate_flows(f1, f2, chain_label=1)
        assert report.entries_moved == 4
        assert len(f1.flow_table) == 1  # the chain-2 entry stays

    def test_cross_site_migration_rejected(self):
        dp = DataPlane(random.Random(0))
        f1 = dp.add_forwarder(Forwarder("f1", "A"))
        f3 = dp.add_forwarder(Forwarder("f3", "B"))
        with pytest.raises(MigrationError):
            migrate_flows(f1, f3)

    def test_move_instances_false_raises_when_needed(self):
        dp, f1, f2, _g1, _sink = build_fabric()
        establish(dp)
        with pytest.raises(MigrationError):
            migrate_flows(f1, f2, move_instances=False)
        # Nothing was half-moved.
        assert len(f1.flow_table) == 8

    def test_move_instances_false_ok_when_instance_already_there(self):
        dp, f1, f2, g1, _sink = build_fabric()
        establish(dp)
        f1.detach("g1")
        f2.attach(g1)
        report = migrate_flows(f1, f2, move_instances=False)
        assert report.entries_moved == 8
        assert report.instances_moved == []

    def test_empty_migration(self):
        _dp, f1, f2, _g1, _sink = build_fabric()
        report = migrate_flows(f1, f2)
        assert report.entries_moved == 0


class TestDrainForwarder:
    def test_drain_moves_everything(self):
        dp, f1, f2, _g1, sink = build_fabric()
        establish(dp)
        report = drain_forwarder(f1, f2)
        assert report.entries_moved == 8
        assert not f1.rules
        assert not f1.attached
        assert (1, "E") in f2.rules
        # New flows arrive at f2 and still work.
        packet = Packet(flow(99), labels=LBL)
        dp.send_forward(packet, "f2", "edge")
        assert packet.trace[-1] == "out"

    def test_drain_moves_idle_instances(self):
        dp, f1, f2, _g1, _sink = build_fabric()
        idle = VnfInstance("idle", "G", "A")
        f1.attach(idle)
        establish(dp, 2)
        report = drain_forwarder(f1, f2)
        assert "idle" in report.instances_moved
        assert "idle" in f2.attached
