"""Tests for edge classification, egress tables, instances, and controller."""

import random

import pytest

from repro.dataplane import DataPlane, Forwarder, LoadBalancingRule, WeightedChoice
from repro.dataplane.forwarder import ForwardingError
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.edge.classifier import ClassifierError, ClassifierRule, EgressTable, ip_in_prefix
from repro.edge.controller import EdgeController
from repro.edge.instance import EdgeError, EdgeInstance

FLOW = FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1234, 80)


class TestPrefixMatching:
    def test_ip_in_prefix(self):
        assert ip_in_prefix("10.0.0.5", "10.0.0.0/24")
        assert not ip_in_prefix("10.0.1.5", "10.0.0.0/24")
        assert ip_in_prefix("10.0.1.5", "10.0.0.0/16")

    def test_host_prefix(self):
        assert ip_in_prefix("10.0.0.5", "10.0.0.5/32")


class TestClassifierRule:
    def test_wildcard_rule_matches_everything(self):
        assert ClassifierRule(chain_label=1).matches(FLOW)

    def test_src_prefix_filter(self):
        rule = ClassifierRule(1, src_prefix="10.0.0.0/24")
        assert rule.matches(FLOW)
        assert not rule.matches(
            FiveTuple("11.0.0.5", "20.0.0.9", "tcp", 1234, 80)
        )

    def test_protocol_filter(self):
        rule = ClassifierRule(1, protocol="udp")
        assert not rule.matches(FLOW)

    def test_port_range_filter(self):
        rule = ClassifierRule(1, dst_port_range=(80, 443))
        assert rule.matches(FLOW)
        assert not rule.matches(
            FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1234, 8080)
        )

    def test_invalid_port_range_rejected(self):
        with pytest.raises(ClassifierError):
            ClassifierRule(1, dst_port_range=(443, 80))

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            ClassifierRule(1, src_prefix="not-an-ip/8")


class TestEgressTable:
    def test_longest_prefix_wins(self):
        table = EgressTable()
        table.add_route("20.0.0.0/8", "far")
        table.add_route("20.0.0.0/24", "near")
        assert table.lookup("20.0.0.9") == "near"
        assert table.lookup("20.5.0.9") == "far"

    def test_no_match_returns_none(self):
        assert EgressTable().lookup("1.2.3.4") is None

    def test_remove_route(self):
        table = EgressTable()
        table.add_route("20.0.0.0/24", "x")
        assert table.remove_route("20.0.0.0/24")
        assert not table.remove_route("20.0.0.0/24")
        assert table.lookup("20.0.0.9") is None


def make_edge_fabric():
    dp = DataPlane(random.Random(4))
    f_a = dp.add_forwarder(Forwarder("fA", "A"))
    dp.add_forwarder(Forwarder("fC", "C"))
    ingress = EdgeInstance("edgeA", "A", dp)
    egress = EdgeInstance("edgeC", "C", dp)
    ingress.attach_forwarder("fA")
    egress.attach_forwarder("fC")
    f_a.install_rule(
        1, "C", LoadBalancingRule(next_forwarders=WeightedChoice({"edgeC": 1.0}))
    )
    return dp, ingress, egress


class TestEdgeInstance:
    def test_labels_applied_from_classifier_and_egress_table(self):
        _dp, ingress, egress = make_edge_fabric()
        ingress.install_classifier(ClassifierRule(1, src_prefix="10.0.0.0/24"))
        ingress.egress_table.add_route("20.0.0.0/24", "C")
        ingress.ingress(Packet(FLOW))
        assert len(egress.delivered) == 1
        delivered = egress.delivered[0]
        assert delivered.labels is None  # stripped at the egress

    def test_unclassified_traffic_not_forwarded(self):
        _dp, ingress, egress = make_edge_fabric()
        ingress.egress_table.add_route("20.0.0.0/24", "C")
        ingress.ingress(Packet(FLOW))  # no classifier installed
        assert not egress.delivered
        assert len(ingress.unclassified) == 1

    def test_no_egress_route_means_unclassified(self):
        _dp, ingress, egress = make_edge_fabric()
        ingress.install_classifier(ClassifierRule(1))
        ingress.ingress(Packet(FLOW))
        assert not egress.delivered
        assert ingress.unclassified

    def test_reverse_uses_remembered_forwarder(self):
        _dp, ingress, egress = make_edge_fabric()
        ingress.install_classifier(ClassifierRule(1, src_prefix="10.0.0.0/24"))
        ingress.egress_table.add_route("20.0.0.0/24", "C")
        ingress.ingress(Packet(FLOW))
        rev = Packet(FLOW.reversed())
        egress.send_reverse(rev)
        assert rev.trace[-1] == "edgeA"

    def test_reverse_without_state_raises(self):
        _dp, _ingress, egress = make_edge_fabric()
        with pytest.raises(ForwardingError):
            egress.send_reverse(Packet(FLOW.reversed()))

    def test_ingress_without_forwarder_raises(self):
        dp = DataPlane(random.Random(0))
        lonely = EdgeInstance("lonely", "A", dp)
        with pytest.raises(EdgeError):
            lonely.ingress(Packet(FLOW))

    def test_attach_requires_same_site(self):
        dp = DataPlane(random.Random(0))
        dp.add_forwarder(Forwarder("fB", "B"))
        edge = EdgeInstance("edgeA", "A", dp)
        with pytest.raises(EdgeError):
            edge.attach_forwarder("fB")

    def test_remove_classifier_by_label(self):
        _dp, ingress, _egress = make_edge_fabric()
        ingress.install_classifier(ClassifierRule(1))
        ingress.install_classifier(ClassifierRule(2))
        ingress.remove_classifier(1)
        assert [r.chain_label for r in ingress.classifier] == [2]

    def test_first_match_wins(self):
        _dp, ingress, _egress = make_edge_fabric()
        ingress.install_classifier(ClassifierRule(5, src_prefix="10.0.0.0/24"))
        ingress.install_classifier(ClassifierRule(6))
        assert ingress.classify(FLOW) == 5


class TestEdgeController:
    def test_resolve_site_from_attachment(self):
        ctrl = EdgeController("vpn")
        ctrl.register_attachment("office-1", "A")
        assert ctrl.resolve_site("office-1") == "A"

    def test_unknown_attachment_raises(self):
        with pytest.raises(EdgeError):
            EdgeController("vpn").resolve_site("ghost")

    def test_install_chain_configures_all_site_instances(self):
        dp = DataPlane(random.Random(0))
        ctrl = EdgeController("vpn")
        e1 = EdgeInstance("e1", "A", dp)
        e2 = EdgeInstance("e2", "A", dp)
        ctrl.register_instance(e1)
        ctrl.register_instance(e2)
        rule = ClassifierRule(7)
        ctrl.install_chain("A", Labels(7, "C"), rule, [("20.0.0.0/24", "C")])
        for instance in (e1, e2):
            assert instance.classify(FLOW) == 7
            assert instance.egress_table.lookup("20.0.0.9") == "C"

    def test_install_chain_at_empty_site_raises(self):
        with pytest.raises(EdgeError):
            EdgeController("vpn").install_chain("A", Labels(1, "C"), None)

    def test_remove_chain_clears_classifiers(self):
        dp = DataPlane(random.Random(0))
        ctrl = EdgeController("vpn")
        e1 = EdgeInstance("e1", "A", dp)
        ctrl.register_instance(e1)
        ctrl.install_chain("A", Labels(7, "C"), ClassifierRule(7))
        ctrl.remove_chain(Labels(7, "C"))
        assert e1.classify(FLOW) is None

    def test_sites_lists_registered_locations(self):
        dp = DataPlane(random.Random(0))
        ctrl = EdgeController("vpn")
        ctrl.register_instance(EdgeInstance("e1", "B", dp))
        ctrl.register_instance(EdgeInstance("e2", "A", dp))
        assert ctrl.sites == ["A", "B"]
