"""Scenario library: generator determinism and digest stability.

The hardcoded digests below are the cross-run / cross-interpreter
stability net: ``random.Random(str)``, ``round``, and canonical JSON
are all version-stable across CPython 3.11/3.12, so these exact hashes
must reproduce everywhere.  If a generator intentionally changes,
update the snapshot *and* regenerate
``benchmarks/baselines/fuzz_known_good.json``.
"""

import pytest

from repro.scenarios import (
    SCENARIO_CONFIGS,
    SCENARIO_KINDS,
    WorkloadContext,
    generate,
)
from repro.scenarios.schedule import ScheduleError

SNAPSHOT_SEED = 42
SNAPSHOT_DURATION = 16.0
SNAPSHOT_DIGESTS = {
    "adversarial_matrix":
        "b9518bbb24540004f08e4890d50a5f21a7120105ccd61f06e57b1df2dea66680",
    "diurnal_wave":
        "d059f36f6050bc80890ce6b6f78f629dc0975fbd2dca376d5442dd7ee9228e02",
    "evacuation_cascade":
        "b5baa4c9fb9b29c033a2171e3ede12689054d7c8264bb9e97cf2caa203f92dbc",
    "flash_crowd":
        "90611fc0884dd95b0c3020fd792c25b0231cc8dc99d10aeb00ec339856816750",
    "site_churn":
        "0e3039d61a73a51b58f1a1c69d5388cd2da40e94319befdeb23455f594e5653b",
    "zipf_mix":
        "1946583220ecb927fab2be644be1d564b38676df7422d04afe02859faf43429b",
}


class TestRegistry:
    def test_every_kind_has_a_config(self):
        assert set(SCENARIO_KINDS) == set(SCENARIO_CONFIGS)

    def test_snapshot_covers_every_kind(self):
        assert set(SNAPSHOT_DIGESTS) == set(SCENARIO_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScheduleError):
            generate("rush_hour", 1)


@pytest.mark.parametrize("kind", sorted(SCENARIO_KINDS))
class TestGenerators:
    def test_digest_snapshot(self, kind):
        schedule = generate(kind, SNAPSHOT_SEED,
                            duration_s=SNAPSHOT_DURATION)
        assert schedule.digest() == SNAPSHOT_DIGESTS[kind], (
            f"{kind} schedule changed; update the snapshot AND "
            f"benchmarks/baselines/fuzz_known_good.json"
        )

    def test_two_runs_byte_identical(self, kind):
        a = generate(kind, 7, duration_s=SNAPSHOT_DURATION)
        b = generate(kind, 7, duration_s=SNAPSHOT_DURATION)
        assert a.to_json() == b.to_json()

    def test_seed_changes_schedule(self, kind):
        a = generate(kind, 7, duration_s=SNAPSHOT_DURATION)
        b = generate(kind, 8, duration_s=SNAPSHOT_DURATION)
        assert a.digest() != b.digest()

    def test_nonempty_and_inside_horizon(self, kind):
        schedule = generate(kind, 7, duration_s=SNAPSHOT_DURATION)
        assert schedule.ops
        assert schedule.duration_s == SNAPSHOT_DURATION
        for op in schedule.ops:
            assert 0.0 <= op.at <= SNAPSHOT_DURATION

    def test_created_chains_are_namespaced(self, kind):
        schedule = generate(kind, 7, duration_s=SNAPSHOT_DURATION)
        for op in schedule.ops:
            if op.op == "create":
                assert op.chain.startswith("wl-"), op.chain

    def test_json_round_trip(self, kind):
        schedule = generate(kind, 7, duration_s=SNAPSHOT_DURATION)
        from repro.scenarios import WorkloadSchedule

        clone = WorkloadSchedule.from_json(schedule.to_json())
        assert clone.to_json() == schedule.to_json()


class TestContext:
    def test_base_chain_wraps(self):
        ctx = WorkloadContext(num_base_chains=8)
        assert ctx.base_chain(0) == "chain0"
        assert ctx.base_chain(9) == "chain1"

    def test_default_duration_used_without_override(self):
        schedule = generate("site_churn", 3)
        assert schedule.duration_s == SCENARIO_CONFIGS["site_churn"]().duration_s
