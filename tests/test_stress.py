"""Seeded stress tests: many chains, churn, and invariants that must
hold through it all (clean audits, no capacity leaks, conservation)."""

import random

import pytest

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
    audit_deployment,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService

SITES = ["A", "B", "C", "D", "E"]
VNFS = {"fw": 1.0, "nat": 0.5, "ids": 2.0}


def build(seed=0, site_capacity=2000.0):
    rng = random.Random(seed)
    nodes = [s.lower() for s in SITES]
    latency = {}
    coords = {n: (rng.uniform(0, 40), rng.uniform(0, 40)) for n in nodes}
    for i, n1 in enumerate(nodes):
        for n2 in nodes[i + 1:]:
            (x1, y1), (x2, y2) = coords[n1], coords[n2]
            latency[(n1, n2)] = ((x1 - x2) ** 2 + (y1 - y2) ** 2) ** 0.5 + 1.0
    sites = [CloudSite(s, s.lower(), site_capacity) for s in SITES]
    vnf_defs = []
    services = []
    for name, load in VNFS.items():
        deployments = rng.sample(SITES, 3)
        caps = {s: site_capacity / 4 for s in deployments}
        vnf_defs.append(VNF(name, load, caps))
        services.append(VnfService(name, load, dict(caps)))
    model = NetworkModel(nodes, latency, sites, vnf_defs)
    dp = DataPlane(random.Random(seed + 1))
    gs = GlobalSwitchboard(model, dp)
    for site in SITES:
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    for service in services:
        gs.register_vnf_service(service)
    edge = EdgeController("vpn")
    for site in SITES:
        edge.register_instance(EdgeInstance(f"edge.{site}", site, dp))
        edge.register_attachment(f"att-{site}", site)
    gs.register_edge_service(edge)
    return gs, rng


def random_spec(rng, index):
    ingress, egress = rng.sample(SITES, 2)
    n_vnfs = rng.randint(1, 3)
    vnfs = rng.sample(list(VNFS), n_vnfs)
    return ChainSpecification(
        f"chain{index:03d}", "vpn", f"att-{ingress}", f"att-{egress}",
        vnfs,
        forward_demand=rng.uniform(2.0, 20.0),
        reverse_demand=rng.uniform(0.0, 5.0),
        dst_prefixes=[f"20.{index % 250}.0.0/24"],
    )


class TestManyChains:
    def test_forty_chains_install_and_audit_clean(self):
        gs, rng = build(seed=5)
        carried = 0
        for i in range(40):
            installation = gs.create_chain(random_spec(rng, i))
            carried += installation.routed_fraction > 0
        assert carried == 40
        gs.router.solution.validate()
        assert audit_deployment(gs) == []

    def test_committed_loads_match_te_loads(self):
        gs, rng = build(seed=6)
        for i in range(25):
            gs.create_chain(random_spec(rng, i))
        te_loads = gs.router.solution.vnf_site_loads()
        for name, service in gs.vnf_services.items():
            for site in service.sites:
                committed = service.committed(site)
                expected = te_loads.get((name, site), 0.0)
                assert committed == pytest.approx(expected, rel=1e-6, abs=1e-6)

    def test_churn_leaves_no_residue(self):
        gs, rng = build(seed=7)
        alive = {}
        for i in range(60):
            if alive and rng.random() < 0.4:
                victim = rng.choice(sorted(alive))
                gs.remove_chain(victim)
                del alive[victim]
            else:
                spec = random_spec(rng, i)
                gs.create_chain(spec)
                alive[spec.name] = True
        # Remove everything that's left.
        for name in sorted(alive):
            gs.remove_chain(name)
        # All capacity returned.
        for service in gs.vnf_services.values():
            for site in service.sites:
                assert service.committed(site) == pytest.approx(0.0, abs=1e-9)
            assert service.pending_reservations() == 0
        # No rules or labels left behind.
        assert audit_deployment(gs) == []
        for fwd in gs.dataplane.forwarders.values():
            assert not fwd.rules
        assert gs.router.solution.throughput() == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_capacity_never_oversubscribed_under_pressure(self, seed):
        # Small capacities: chains are partially admitted or rejected
        # outright, but the solution must stay feasible throughout and
        # rejected installs must leave no residue.
        from repro.controller import InstallationError

        gs, rng = build(seed=seed, site_capacity=120.0)
        admitted = rejected = 0
        for i in range(30):
            try:
                gs.create_chain(random_spec(rng, i))
                admitted += 1
            except InstallationError:
                rejected += 1
        assert admitted > 0
        assert gs.router.solution.violations(tol=1e-5) == []
        assert audit_deployment(gs) == []
        for service in gs.vnf_services.values():
            assert service.pending_reservations() == 0
