"""Tests for SB-DP: the Equation 8 recurrence, splitting, ablations,
and the incremental router used by Global Switchboard."""

import pytest

from repro.core.dp import (
    DpConfig,
    IncrementalDpRouter,
    route_chains_dp,
)
from repro.core.lp import solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF


def small_model(chain_demand=5.0, fw_cap_a=10.0, fw_cap_b=50.0):
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", 100.0),
        CloudSite("B", "b", 100.0),
        CloudSite("C", "c", 100.0),
    ]
    vnfs = [VNF("fw", 1.0, {"A": fw_cap_a, "B": fw_cap_b})]
    chains = [Chain("c1", "a", "c", ["fw"], chain_demand, 0.0)]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


class TestSingleChain:
    def test_routes_fully_when_capacity_ample(self):
        result = route_chains_dp(small_model())
        assert result.fully_routed
        assert result.solution.routed_fraction("c1") == pytest.approx(1.0)
        result.solution.validate()

    def test_finds_min_latency_path_at_low_load(self):
        result = route_chains_dp(small_model(chain_demand=0.1))
        # Via B (10+15=25) beats via A (0+30=30).
        assert result.solution.fraction("c1", 1, "a", "B") == pytest.approx(1.0)

    def test_matches_lp_on_uncongested_instance(self):
        model = small_model(chain_demand=0.1)
        dp = route_chains_dp(model)
        lp = solve_chain_routing_lp(model)
        assert dp.solution.total_weighted_latency() == pytest.approx(
            lp.objective, rel=1e-6
        )

    def test_splits_across_paths_when_capacity_binds(self):
        # Neither site alone can carry the chain (load 2*5=10 > 6), so
        # the residual re-routing loop must split it across A and B.
        model = small_model(chain_demand=5.0, fw_cap_a=6.0, fw_cap_b=6.0)
        result = route_chains_dp(model)
        assert result.fully_routed
        flows = result.solution.stage_flows("c1", 1)
        assert len(flows) == 2  # split across A and B
        result.solution.validate()

    def test_avoids_overloading_a_small_site(self):
        # B is lower latency but would be driven to 2x utilization; the
        # convex penalty steers the whole chain to A instead.
        model = small_model(chain_demand=5.0, fw_cap_b=5.0, fw_cap_a=100.0)
        result = route_chains_dp(model)
        assert result.fully_routed
        assert result.solution.fraction("c1", 1, "a", "A") == pytest.approx(1.0)

    def test_reports_unrouted_remainder(self):
        model = small_model(chain_demand=100.0, fw_cap_a=5.0, fw_cap_b=5.0)
        result = route_chains_dp(model)
        assert "c1" in result.unrouted
        # Total capacity 10 load units = 5 traffic of 100 offered.
        assert result.solution.throughput() == pytest.approx(5.0, abs=1e-6)

    def test_multi_vnf_chain_orders_sites(self):
        model = small_model()
        model = model.copy_with_vnfs(
            [
                VNF("fw", 1.0, {"A": 50.0, "B": 50.0}),
                VNF("nat", 1.0, {"B": 50.0, "C": 50.0}),
            ]
        )
        model.remove_chain("c1")
        model.add_chain(Chain("c2", "a", "c", ["fw", "nat"], 2.0))
        result = route_chains_dp(model)
        assert result.fully_routed
        result.solution.validate()
        # Several site paths tie at latency 25 (e.g. a->A->B->c and
        # a->B->B->c); the holistic DP must find one of them.
        assert result.solution.chain_latency("c2") == pytest.approx(25.0)


class TestCapacityEnforcement:
    def test_sequential_chains_respect_shared_capacity(self):
        model = small_model(fw_cap_a=6.0, fw_cap_b=6.0)
        model.add_chain(Chain("c2", "a", "c", ["fw"], 5.0))
        result = route_chains_dp(model)
        result.solution.validate()  # never exceeds capacities

    def test_link_capacity_respected(self):
        nodes = ["a", "b"]
        latency = {("a", "b"): 10.0}
        sites = [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)]
        vnfs = [VNF("fw", 0.1, {"B": 100.0})]
        chains = [Chain("c1", "a", "b", ["fw"], 10.0, 0.0)]
        links = [Link("ab", "a", "b", 8.0), Link("ba", "b", "a", 8.0)]
        routing = {("a", "b"): {"ab": 1.0}, ("b", "a"): {"ba": 1.0}}
        model = NetworkModel(
            nodes, latency, sites, vnfs, chains, links, routing
        )
        result = route_chains_dp(model)
        assert result.solution.throughput() == pytest.approx(8.0, abs=1e-6)
        assert result.solution.max_link_utilization() <= 1.0 + 1e-9

    def test_congestion_steers_to_other_site(self):
        # Two chains; fw at B is the low-latency choice but the penalty
        # should push the second chain to A once B saturates its knee.
        model = small_model(fw_cap_a=50.0, fw_cap_b=11.0)
        model.add_chain(Chain("c2", "a", "c", ["fw"], 5.0))
        result = route_chains_dp(model)
        assert result.fully_routed
        loads = result.solution.vnf_site_loads()
        assert ("fw", "A") in loads  # some traffic diverted


class TestAblations:
    def test_latency_only_ignores_congestion_costs(self):
        config = DpConfig.latency_only()
        assert not config.use_network_cost
        assert not config.use_compute_cost
        model = small_model(chain_demand=0.1)
        result = route_chains_dp(model, config)
        assert result.fully_routed

    def test_latency_only_still_enforces_capacity(self):
        model = small_model(chain_demand=100.0, fw_cap_a=5.0, fw_cap_b=5.0)
        result = route_chains_dp(model, DpConfig.latency_only())
        result.solution.validate()
        assert not result.fully_routed

    def test_one_hop_is_greedy(self):
        # Trap: greedy picks the nearest fw site (A at distance 0) even
        # though the egress is far from A; holistic DP avoids it.
        nodes = ["a", "b", "c"]
        latency = {("a", "b"): 5.0, ("a", "c"): 40.0, ("b", "c"): 5.0}
        sites = [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)]
        vnfs = [VNF("fw", 1.0, {"A": 50.0, "B": 50.0})]
        chains = [Chain("c1", "a", "c", ["fw"], 1.0)]
        model = NetworkModel(nodes, latency, sites, vnfs, chains)
        greedy = route_chains_dp(model, DpConfig.one_hop())
        holistic = route_chains_dp(model)
        assert greedy.solution.fraction("c1", 1, "a", "A") == pytest.approx(1.0)
        assert holistic.solution.fraction("c1", 1, "a", "B") == pytest.approx(1.0)
        assert (
            holistic.solution.chain_latency("c1")
            < greedy.solution.chain_latency("c1")
        )

    def test_chain_order_override(self):
        model = small_model(fw_cap_a=6.0, fw_cap_b=6.0)
        model.add_chain(Chain("c2", "a", "c", ["fw"], 5.0))
        result = route_chains_dp(model, chain_order=["c2", "c1"])
        assert result.solution.routed_fraction("c2") == pytest.approx(1.0)

    def test_unknown_chain_order_rejected(self):
        with pytest.raises(KeyError):
            route_chains_dp(small_model(), chain_order=["ghost"])


class TestIncrementalRouter:
    def test_route_accumulates_into_shared_solution(self):
        model = small_model(fw_cap_a=50.0, fw_cap_b=50.0)
        model.add_chain(Chain("c2", "b", "c", ["fw"], 3.0))
        router = IncrementalDpRouter(model)
        assert router.route("c1") == pytest.approx(1.0)
        assert router.route("c2") == pytest.approx(1.0)
        assert router.solution.throughput() == pytest.approx(8.0)
        router.solution.validate()

    def test_rollback_restores_capacity(self):
        model = small_model(fw_cap_a=0.0, fw_cap_b=10.0)
        router = IncrementalDpRouter(model)
        router.route("c1")
        used_before = router.residual_vnf_capacity("fw", "B")
        router.rollback("c1")
        assert router.solution.routed_fraction("c1") == 0.0
        assert router.residual_vnf_capacity("fw", "B") == pytest.approx(10.0)
        assert used_before < 10.0

    def test_rollback_then_reroute_is_stable(self):
        model = small_model()
        router = IncrementalDpRouter(model)
        router.route("c1")
        first = dict(router.solution.stage_flows("c1", 1))
        router.rollback("c1")
        router.route("c1")
        assert dict(router.solution.stage_flows("c1", 1)) == first

    def test_sync_vnf_capacity_reduces_residual(self):
        model = small_model(fw_cap_b=50.0)
        router = IncrementalDpRouter(model)
        router.sync_vnf_capacity("fw", "B", 5.0)
        assert router.residual_vnf_capacity("fw", "B") == pytest.approx(5.0)
        # Syncing to a larger value never *increases* (conservative).
        router.sync_vnf_capacity("fw", "B", 100.0)
        assert router.residual_vnf_capacity("fw", "B") == pytest.approx(5.0)
