"""Tests for cloud capacity planning (alpha LP) and VNF placement (MIP)."""

import random

import pytest

from repro.core.capacity import (
    CapacityPlanningError,
    max_alpha,
    plan_cloud_capacity,
    plan_vnf_placement,
    random_vnf_placement,
    uniform_cloud_plan,
)
from repro.core.model import Chain, CloudSite, NetworkModel, VNF


def planning_model(site_caps=(10.0, 10.0, 10.0)):
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", site_caps[0]),
        CloudSite("B", "b", site_caps[1]),
        CloudSite("C", "c", site_caps[2]),
    ]
    vnfs = [VNF("fw", 1.0, {"A": site_caps[0], "B": site_caps[1]})]
    chains = [Chain("c1", "a", "c", ["fw"], 1.0, 0.0)]
    return NetworkModel(nodes, latency, sites, vnfs, chains)


class TestCloudCapacityPlanning:
    def test_alpha_reflects_current_capacity(self):
        model = planning_model()
        plan = plan_cloud_capacity(model, budget=0.0)
        # fw capacity 20 total; chain load 2 per alpha -> alpha = 10.
        assert plan.alpha == pytest.approx(10.0, rel=1e-3)

    def test_budget_increases_alpha(self):
        model = planning_model()
        base = plan_cloud_capacity(model, budget=0.0)
        grown = plan_cloud_capacity(model, budget=20.0)
        assert grown.alpha > base.alpha

    def test_budget_respected(self):
        model = planning_model()
        plan = plan_cloud_capacity(model, budget=20.0)
        assert sum(plan.additional.values()) <= 20.0 + 1e-6

    def test_optimized_beats_uniform(self):
        # Site C hosts no VNF, so uniform provisioning wastes a third of
        # the budget; the optimizer should not.
        model = planning_model()
        optimized = plan_cloud_capacity(model, budget=30.0)
        uniform = uniform_cloud_plan(model, budget=30.0)
        assert optimized.alpha > uniform.alpha

    def test_uniform_spreads_evenly(self):
        model = planning_model()
        plan = uniform_cloud_plan(model, budget=30.0)
        assert plan.additional == {
            "A": pytest.approx(10.0),
            "B": pytest.approx(10.0),
            "C": pytest.approx(10.0),
        }

    def test_solution_flows_normalized_to_fractions(self):
        model = planning_model()
        plan = plan_cloud_capacity(model, budget=0.0)
        assert plan.solution is not None
        assert plan.solution.routed_fraction("c1") == pytest.approx(1.0, rel=1e-6)

    def test_negative_budget_rejected(self):
        with pytest.raises(CapacityPlanningError):
            plan_cloud_capacity(planning_model(), budget=-1.0)

    def test_max_alpha_helper(self):
        assert max_alpha(planning_model()) == pytest.approx(10.0, rel=1e-3)

    def test_planned_sites_apply_additions(self):
        model = planning_model()
        plan = plan_cloud_capacity(model, budget=20.0)
        sites = {s.name: s.capacity for s in plan.planned_sites(model)}
        for name, extra in plan.additional.items():
            assert sites[name] == pytest.approx(
                model.sites[name].capacity + extra
            )


class TestVnfPlacement:
    def test_placement_reduces_latency(self):
        # fw only at B (far detour for a->c); opening a site must help.
        nodes = ["a", "b", "c"]
        latency = {("a", "b"): 50.0, ("a", "c"): 10.0, ("b", "c"): 50.0}
        sites = [
            CloudSite("A", "a", 100.0),
            CloudSite("B", "b", 100.0),
            CloudSite("C", "c", 100.0),
        ]
        vnfs = [VNF("fw", 1.0, {"B": 100.0})]
        chains = [Chain("c1", "a", "c", ["fw"], 1.0)]
        model = NetworkModel(nodes, latency, sites, vnfs, chains)
        plan = plan_vnf_placement(model, {"fw": 1}, new_site_capacity=100.0)
        assert plan.status == "optimal"
        # Best new site is A or C (on the short a-c path).
        assert set(plan.new_sites["fw"]) <= {"A", "C"}
        # Objective: via new site = 10 weighted latency; via B = 100.
        assert plan.objective == pytest.approx(10.0, rel=1e-6)

    def test_quota_limits_new_sites(self):
        model = planning_model()
        plan = plan_vnf_placement(model, {"fw": 1}, new_site_capacity=10.0)
        assert len(plan.new_sites.get("fw", [])) <= 1

    def test_new_sites_disjoint_from_existing(self):
        model = planning_model()
        plan = plan_vnf_placement(model, {"fw": 1}, new_site_capacity=10.0)
        existing = set(model.vnfs["fw"].site_capacity)
        for site in plan.new_sites.get("fw", []):
            assert site not in existing

    def test_apply_returns_grown_model(self):
        model = planning_model()
        plan = plan_vnf_placement(model, {"fw": 1}, new_site_capacity=10.0)
        grown = plan.apply(model)
        for vnf_name, sites in plan.new_sites.items():
            for site in sites:
                assert site in grown.vnfs[vnf_name].site_capacity

    def test_unknown_vnf_rejected(self):
        with pytest.raises(CapacityPlanningError):
            plan_vnf_placement(planning_model(), {"ghost": 1}, 10.0)

    def test_random_placement_baseline(self):
        model = planning_model()
        plan = random_vnf_placement(
            model, {"fw": 1}, new_site_capacity=10.0, rng=random.Random(1)
        )
        assert plan.status == "random"
        assert plan.new_sites["fw"] == ["C"]  # only non-deployed site

    def test_optimal_at_least_as_good_as_random(self):
        nodes = ["a", "b", "c", "d"]
        latency = {
            ("a", "b"): 50.0, ("a", "c"): 10.0, ("a", "d"): 80.0,
            ("b", "c"): 50.0, ("b", "d"): 40.0, ("c", "d"): 70.0,
        }
        sites = [CloudSite(s.upper(), s, 100.0) for s in nodes]
        vnfs = [VNF("fw", 1.0, {"B": 100.0})]
        chains = [Chain("c1", "a", "c", ["fw"], 1.0)]
        model = NetworkModel(nodes, latency, sites, vnfs, chains)
        optimal = plan_vnf_placement(model, {"fw": 1}, new_site_capacity=100.0)
        rng = random.Random(0)
        for _ in range(3):
            random_plan = random_vnf_placement(model, {"fw": 1}, 100.0, rng)
            grown = random_plan.apply(model)
            from repro.core.lp import solve_chain_routing_lp

            lp = solve_chain_routing_lp(grown)
            assert optimal.objective <= lp.objective + 1e-6
