"""Tests for the synthetic backbone, traffic matrices, and workloads."""

import random

import pytest

from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.topology.backbone import Backbone, build_backbone
from repro.topology.cities import (
    DEFAULT_CITIES,
    fibre_delay_ms,
    great_circle_km,
)
from repro.topology.traffic import (
    gravity_traffic_matrix,
    route_background,
    split_switchboard_background,
)
from repro.topology.workload import (
    WorkloadConfig,
    generate_chains,
    generate_workload,
    place_vnfs,
)


class TestCities:
    def test_default_catalog_has_25_pops(self):
        assert len(DEFAULT_CITIES) == 25
        assert len({c.name for c in DEFAULT_CITIES}) == 25

    def test_great_circle_nyc_lax(self):
        nyc = next(c for c in DEFAULT_CITIES if c.name == "NYC")
        lax = next(c for c in DEFAULT_CITIES if c.name == "LAX")
        # Known distance ~3940 km.
        assert great_circle_km(nyc, lax) == pytest.approx(3940, rel=0.03)

    def test_fibre_delay_scales_distance(self):
        nyc = next(c for c in DEFAULT_CITIES if c.name == "NYC")
        lax = next(c for c in DEFAULT_CITIES if c.name == "LAX")
        # ~3940 km * 1.3 / 200 km/ms ~ 25.6 ms one-way.
        assert fibre_delay_ms(nyc, lax) == pytest.approx(25.6, rel=0.05)

    def test_zero_distance_to_self(self):
        city = DEFAULT_CITIES[0]
        assert great_circle_km(city, city) == pytest.approx(0.0, abs=1e-9)


class TestBackbone:
    @pytest.fixture(scope="class")
    def backbone(self) -> Backbone:
        return build_backbone()

    def test_connected(self, backbone):
        import networkx as nx

        assert nx.is_connected(backbone.graph)

    def test_latency_matrix_complete_and_symmetric(self, backbone):
        nodes = backbone.nodes
        for n1 in nodes:
            for n2 in nodes:
                assert (n1, n2) in backbone.latency
                assert backbone.latency[(n1, n2)] == pytest.approx(
                    backbone.latency[(n2, n1)]
                )

    def test_latency_satisfies_triangle_inequality(self, backbone):
        nodes = backbone.nodes[:8]
        for n1 in nodes:
            for n2 in nodes:
                for n3 in nodes:
                    assert (
                        backbone.latency[(n1, n3)]
                        <= backbone.latency[(n1, n2)]
                        + backbone.latency[(n2, n3)]
                        + 1e-9
                    )

    def test_links_are_directed_pairs(self, backbone):
        names = {link.name for link in backbone.links}
        for link in backbone.links:
            assert f"{link.dst}-{link.src}" in names

    def test_routing_fractions_sum_to_path_length(self, backbone):
        # For each pair, every shortest path has the same hop structure:
        # fractions over links out of the source must sum to 1.
        for (n1, _n2), fractions in list(backbone.routing.items())[:200]:
            out_fracs = sum(
                frac
                for link_name, frac in fractions.items()
                if link_name.startswith(f"{n1}-")
            )
            assert out_fracs == pytest.approx(1.0)

    def test_core_links_have_higher_capacity(self, backbone):
        capacities = {link.bandwidth for link in backbone.links}
        assert len(capacities) == 2  # core and edge tiers

    def test_too_few_cities_rejected(self):
        with pytest.raises(ValueError):
            build_backbone([DEFAULT_CITIES[0]])

    def test_duplicate_cities_rejected(self):
        with pytest.raises(ValueError):
            build_backbone([DEFAULT_CITIES[0], DEFAULT_CITIES[0]])

    def test_with_background_sets_link_loads(self, backbone):
        loads = {backbone.links[0].name: 5.0}
        updated = backbone.with_background(loads)
        assert updated.link(backbone.links[0].name).background == 5.0
        assert backbone.links[0].background == 0.0


class TestTrafficMatrix:
    def test_gravity_normalized_to_total(self):
        matrix = gravity_traffic_matrix(DEFAULT_CITIES, 100.0)
        assert matrix.total() == pytest.approx(100.0)

    def test_bigger_cities_send_more(self):
        matrix = gravity_traffic_matrix(DEFAULT_CITIES, 100.0)
        assert matrix.row_sum("NYC") > matrix.row_sum("SLC")

    def test_no_self_traffic(self):
        matrix = gravity_traffic_matrix(DEFAULT_CITIES, 100.0)
        assert ("NYC", "NYC") not in matrix.demand

    def test_split_preserves_total(self):
        matrix = gravity_traffic_matrix(DEFAULT_CITIES, 100.0)
        sb, bg = split_switchboard_background(matrix, 0.8)
        assert sb.total() + bg.total() == pytest.approx(100.0)
        assert sb.total() / bg.total() == pytest.approx(4.0)  # the 4:1 split

    def test_invalid_share_rejected(self):
        matrix = gravity_traffic_matrix(DEFAULT_CITIES, 100.0)
        with pytest.raises(ValueError):
            split_switchboard_background(matrix, 1.5)

    def test_background_routing_conserves_volume(self):
        backbone = build_backbone()
        matrix = gravity_traffic_matrix(backbone.cities, 100.0)
        loads = route_background(backbone, matrix)
        # Every unit of demand crosses at least one link.
        assert sum(loads.values()) >= matrix.total() - 1e-6


class TestWorkload:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(coverage=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(min_chain_length=5, max_chain_length=3)
        with pytest.raises(ValueError):
            WorkloadConfig(num_vnfs=2, max_chain_length=5)

    def test_coverage_controls_placement_breadth(self):
        sites = [f"S{i}" for i in range(20)]
        low = place_vnfs(WorkloadConfig(coverage=0.25), sites, random.Random(0))
        high = place_vnfs(WorkloadConfig(coverage=0.75), sites, random.Random(0))
        assert len(low[0].sites) == 5
        assert len(high[0].sites) == 15

    def test_site_capacity_divided_equally(self):
        config = WorkloadConfig(
            num_vnfs=4,
            coverage=1.0,
            site_capacity=100.0,
            min_chain_length=2,
            max_chain_length=4,
        )
        sites = ["S0", "S1"]
        vnfs = place_vnfs(config, sites, random.Random(0))
        # All 4 VNFs at both sites -> each gets 25.
        for vnf in vnfs:
            assert vnf.site_capacity["S0"] == pytest.approx(25.0)

    def test_chain_vnfs_follow_canonical_order(self):
        config = WorkloadConfig(num_chains=50, num_vnfs=10)
        backbone = build_backbone()
        matrix = gravity_traffic_matrix(backbone.cities, 100.0)
        names = [f"vnf{i:03d}" for i in range(10)]
        chains = generate_chains(
            config, backbone.nodes, names, matrix, random.Random(0)
        )
        order = {n: i for i, n in enumerate(names)}
        for chain in chains:
            positions = [order[v] for v in chain.vnfs]
            assert positions == sorted(positions)
            assert 3 <= len(chain.vnfs) <= 5

    def test_chain_traffic_proportional_to_ingress(self):
        config = WorkloadConfig(num_chains=200, num_vnfs=10, seed=3)
        backbone = build_backbone()
        matrix = gravity_traffic_matrix(backbone.cities, 100.0)
        names = [f"vnf{i:03d}" for i in range(10)]
        chains = generate_chains(
            config, backbone.nodes, names, matrix, random.Random(3)
        )
        by_ingress = {}
        for chain in chains:
            by_ingress.setdefault(chain.ingress, chain.forward_traffic[0])
        # Any NYC-ingress chain outweighs any SLC-ingress chain.
        if "NYC" in by_ingress and "SLC" in by_ingress:
            assert by_ingress["NYC"] > by_ingress["SLC"]

    def test_total_demand_matches_switchboard_share(self):
        config = WorkloadConfig(
            num_chains=100, total_traffic=500.0, switchboard_share=0.8
        )
        model = generate_workload(config)
        assert model.total_demand() == pytest.approx(400.0, rel=1e-6)

    def test_generated_model_is_routable(self):
        config = WorkloadConfig(num_chains=10, num_vnfs=8, seed=1)
        model = generate_workload(config)
        result = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert result.ok
        assert result.solution.throughput() > 0

    def test_deterministic_given_seed(self):
        config = WorkloadConfig(num_chains=20, seed=9)
        m1 = generate_workload(config)
        m2 = generate_workload(config)
        c1 = m1.chains["chain00000"]
        c2 = m2.chains["chain00000"]
        assert c1.ingress == c2.ingress
        assert c1.vnfs == c2.vnfs
        assert c1.forward_traffic == c2.forward_traffic

    def test_background_traffic_applied_to_links(self):
        model = generate_workload(WorkloadConfig(num_chains=10))
        assert any(link.background > 0 for link in model.links.values())
