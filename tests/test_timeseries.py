"""Tests for the time-varying (diurnal) traffic model."""

import pytest

from repro.topology.cities import DEFAULT_CITIES
from repro.topology.timeseries import (
    TimeVaryingTrafficMatrix,
    diurnal_factor,
    timezone_offset_hours,
)
from repro.topology.traffic import gravity_traffic_matrix


class TestDiurnalFactor:
    def test_peak_is_one(self):
        assert diurnal_factor(20.0) == pytest.approx(1.0)

    def test_trough_twelve_hours_later(self):
        assert diurnal_factor(8.0, trough_ratio=0.3) == pytest.approx(0.3)

    def test_periodic(self):
        assert diurnal_factor(3.0) == pytest.approx(diurnal_factor(27.0))

    def test_bounded(self):
        for hour in range(0, 24):
            factor = diurnal_factor(float(hour), trough_ratio=0.25)
            assert 0.25 <= factor <= 1.0

    def test_invalid_trough_rejected(self):
        with pytest.raises(ValueError):
            diurnal_factor(0.0, trough_ratio=0.0)


class TestTimezones:
    def test_east_coast_behind_utc(self):
        nyc = next(c for c in DEFAULT_CITIES if c.name == "NYC")
        assert -6 < timezone_offset_hours(nyc) < -4  # ~UTC-5

    def test_west_coast_three_hours_behind_east(self):
        nyc = next(c for c in DEFAULT_CITIES if c.name == "NYC")
        sfo = next(c for c in DEFAULT_CITIES if c.name == "SFO")
        delta = timezone_offset_hours(nyc) - timezone_offset_hours(sfo)
        assert delta == pytest.approx(3.2, abs=0.5)


class TestTimeVaryingMatrix:
    def make(self):
        base = gravity_traffic_matrix(DEFAULT_CITIES, 100.0)
        return TimeVaryingTrafficMatrix(base, DEFAULT_CITIES)

    def test_total_varies_over_the_day(self):
        tvm = self.make()
        totals = [tvm.matrix_at(h).total() for h in range(24)]
        assert max(totals) / min(totals) > 1.5

    def test_never_exceeds_base(self):
        tvm = self.make()
        base_total = tvm.base.total()
        for h in (0, 6, 12, 18):
            assert tvm.matrix_at(h).total() <= base_total + 1e-9

    def test_coastal_peaks_are_offset(self):
        tvm = self.make()
        nyc_peak = max(range(24), key=lambda h: tvm.factor_at("NYC", h))
        sfo_peak = max(range(24), key=lambda h: tvm.factor_at("SFO", h))
        # SFO's local evening comes ~3 hours later in UTC.
        assert (sfo_peak - nyc_peak) % 24 == 3

    def test_chain_demand_factors_follow_ingress(self):
        tvm = self.make()
        factors = tvm.chain_demand_factors(
            {"c-east": "NYC", "c-west": "SFO"}, utc_hour=1.0
        )
        # 1:00 UTC is 20:00 in NYC (peak) but 17:00 in SFO.
        assert factors["c-east"] > factors["c-west"]

    def test_peak_to_trough_matches_trough_ratio(self):
        tvm = self.make()
        assert tvm.peak_to_trough_ratio("NYC") == pytest.approx(
            1 / 0.3, rel=0.05
        )

    def test_unknown_node_rejected(self):
        base = gravity_traffic_matrix(DEFAULT_CITIES, 100.0)
        with pytest.raises(ValueError):
            TimeVaryingTrafficMatrix(base, DEFAULT_CITIES[:3])
