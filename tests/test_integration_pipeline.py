"""Whole-pipeline integration: TE solution -> compiled rules -> packets.

These tests close the loop the paper's architecture promises: the
traffic-engineering fractions computed by Global Switchboard must be
what the data plane actually *does* to connections, via the hierarchical
load-balancing rules compiled by the Local Switchboards.
"""

import random
from collections import Counter

import pytest

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService


def build_deployment(fw_caps, nat_caps=None, forwarders_per_site=1):
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [
        CloudSite("A", "a", 1000.0),
        CloudSite("B", "b", 1000.0),
        CloudSite("C", "c", 1000.0),
    ]
    vnfs = [VNF("fw", 1.0, dict(fw_caps))]
    if nat_caps:
        vnfs.append(VNF("nat", 0.5, dict(nat_caps)))
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(77))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B", "C"):
        gs.register_local_switchboard(
            LocalSwitchboard(site, dp, num_forwarders=forwarders_per_site)
        )
    gs.register_vnf_service(VnfService("fw", 1.0, dict(fw_caps)))
    if nat_caps:
        gs.register_vnf_service(VnfService("nat", 0.5, dict(nat_caps)))
    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(ingress)
    edge.register_instance(egress)
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    return gs, dp, ingress, egress


def inject_flows(ingress, n, dst="20.0.0"):
    packets = []
    for i in range(n):
        packet = Packet(
            FiveTuple(f"10.0.{i // 250}.{i % 250 + 1}", f"{dst}.9",
                      "tcp", 1024 + i, 80)
        )
        ingress.ingress(packet)
        packets.append(packet)
    return packets


class TestRuleCompilationRealizesTeFractions:
    def test_split_route_splits_connections_proportionally(self):
        # fw capacity forces roughly a 50/50 split between A and B.
        gs, _dp, ingress, egress = build_deployment(
            {"A": 12.0, "B": 12.0}
        )
        gs.create_chain(
            ChainSpecification(
                "corp", "vpn", "in", "out", ["fw"],
                forward_demand=10.0, dst_prefixes=["20.0.0.0/24"],
            )
        )
        fractions = {
            dst: frac
            for (_s, dst), frac in gs.router.solution.stage_flows("corp", 1).items()
        }
        # B (lower latency: 10+15 vs 0+30) fills first at 0.6, the
        # remainder overflows to A.
        assert fractions == pytest.approx({"A": 0.4, "B": 0.6}, abs=0.01)

        packets = inject_flows(ingress, 600)
        assert len(egress.delivered) == 600
        sites = Counter(
            next(e for e in p.trace if e.startswith("fw.")).split(".")[1]
            for p in packets
        )
        for site, frac in fractions.items():
            observed = sites[site] / 600
            assert observed == pytest.approx(frac, abs=0.07)

    def test_single_site_route_sends_everything_there(self):
        gs, _dp, ingress, egress = build_deployment({"B": 100.0})
        gs.create_chain(
            ChainSpecification(
                "corp", "vpn", "in", "out", ["fw"],
                forward_demand=5.0, dst_prefixes=["20.0.0.0/24"],
            )
        )
        packets = inject_flows(ingress, 50)
        assert len(egress.delivered) == 50
        assert all(any(e.startswith("fw.B.") for e in p.trace) for p in packets)

    def test_multiple_forwarders_per_site_share_load(self):
        gs, _dp, ingress, egress = build_deployment(
            {"B": 100.0}, forwarders_per_site=2
        )
        service = gs.vnf_services["fw"]
        service.scale_out("B")  # two instances -> both forwarders used
        gs.create_chain(
            ChainSpecification(
                "corp", "vpn", "in", "out", ["fw"],
                forward_demand=5.0, dst_prefixes=["20.0.0.0/24"],
            )
        )
        packets = inject_flows(ingress, 300)
        forwarders = Counter(
            next(e for e in p.trace if e.startswith("fwd.B"))
            for p in packets
        )
        assert len(forwarders) == 2
        smaller = min(forwarders.values())
        assert smaller > 0.3 * 300  # roughly even split


class TestMultiVnfPipeline:
    def make_two_vnf(self):
        gs, dp, ingress, egress = build_deployment(
            fw_caps={"A": 100.0, "B": 100.0},
            nat_caps={"B": 100.0, "C": 100.0},
        )
        gs.create_chain(
            ChainSpecification(
                "corp", "vpn", "in", "out", ["fw", "nat"],
                forward_demand=5.0, reverse_demand=1.0,
                dst_prefixes=["20.0.0.0/24"],
            )
        )
        return gs, dp, ingress, egress

    def test_conformity_for_every_connection(self):
        _gs, _dp, ingress, egress = self.make_two_vnf()
        packets = inject_flows(ingress, 100)
        assert len(egress.delivered) == 100
        for packet in packets:
            fw_pos = next(
                i for i, e in enumerate(packet.trace) if e.startswith("fw.")
            )
            nat_pos = next(
                i for i, e in enumerate(packet.trace) if e.startswith("nat.")
            )
            assert fw_pos < nat_pos, packet.trace

    def test_symmetric_return_for_sampled_connections(self):
        _gs, _dp, ingress, egress = self.make_two_vnf()
        packets = inject_flows(ingress, 40)
        for packet in packets[::5]:
            fwd_instances = [
                e for e in packet.trace
                if e.startswith(("fw.", "nat."))
            ]
            rev = Packet(packet.flow.reversed())
            egress.send_reverse(rev)
            rev_instances = [
                e for e in rev.trace if e.startswith(("fw.", "nat."))
            ]
            assert rev_instances == list(reversed(fwd_instances))
            assert rev.trace[-1] == "edge.A"

    def test_flow_affinity_under_sustained_traffic(self):
        _gs, _dp, ingress, _egress = self.make_two_vnf()
        first = inject_flows(ingress, 30)
        again = inject_flows(ingress, 30)
        for p1, p2 in zip(first, again):
            assert p1.trace == p2.trace


class TestMultiTenancy:
    def test_two_chains_share_vnf_instances(self):
        """Section 7.2: the service-oriented design lets one VNF instance
        serve multiple chains (unlike per-chain-siloed designs)."""
        gs, _dp, ingress, egress = build_deployment({"B": 100.0})
        gs.create_chain(
            ChainSpecification(
                "chain1", "vpn", "in", "out", ["fw"],
                forward_demand=3.0, src_prefix="10.0.0.0/16",
                dst_prefixes=["20.0.0.0/24"],
            )
        )
        gs.create_chain(
            ChainSpecification(
                "chain2", "vpn", "in", "out", ["fw"],
                forward_demand=3.0, src_prefix="10.1.0.0/16",
                dst_prefixes=["20.0.1.0/24"],
            )
        )
        service = gs.vnf_services["fw"]
        assert len(service.instances_at("B")) == 1  # one shared instance
        p1 = Packet(FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1111, 80))
        p2 = Packet(FiveTuple("10.1.0.5", "20.0.1.9", "tcp", 2222, 80))
        ingress.ingress(p1)
        ingress.ingress(p2)
        instance = service.instances_at("B")[0]
        assert instance.name in p1.trace and instance.name in p2.trace
        assert len(egress.delivered) == 2

    def test_chains_carry_distinct_labels(self):
        gs, _dp, _ingress, _egress = build_deployment({"B": 100.0})
        i1 = gs.create_chain(
            ChainSpecification(
                "chain1", "vpn", "in", "out", ["fw"],
                forward_demand=3.0, dst_prefixes=["20.0.0.0/24"],
            )
        )
        i2 = gs.create_chain(
            ChainSpecification(
                "chain2", "vpn", "in", "out", ["fw"],
                forward_demand=3.0, dst_prefixes=["20.0.1.0/24"],
            )
        )
        assert i1.label != i2.label
        # Removing chain1 leaves chain2's rules untouched.
        gs.remove_chain("chain1")
        local_b = gs.local_switchboard("B")
        assert any(
            (i2.label, "C") in fwd.rules for fwd in local_b.forwarders
        )
        assert not any(
            (i1.label, "C") in fwd.rules for fwd in local_b.forwarders
        )
