"""Equivalence properties for the vectorized hot paths.

Each vectorized implementation keeps its pre-vectorization scalar
twin in the tree as ground truth:

- ``solve_chain_routing_lp`` (COO/columnar assembly) vs.
  ``solve_chain_routing_lp_reference`` (per-variable loops);
- ``plan_cloud_capacity`` vs. ``plan_cloud_capacity_reference``;
- ``route_chains_dp`` with ``DpConfig(vectorized=True)`` vs. the
  scalar stage recurrence;
- ``E2ETestbed.evaluate`` (numpy water-filling) vs.
  ``evaluate_reference`` (progressive filling).

The matrix comparisons are at the 1e-9 level (in practice exact: the
columnar assembly reproduces the scalar coefficient arithmetic, not
just its solution), so any drift in either path trips these tests
before it can silently change solver behaviour.  The cache round-trip
tests pin the reuse/invalidation contract of the module-global
constraint-matrix cache.
"""

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.core import capacity as capacity_mod
from repro.core import lp as lp_mod
from repro.core.capacity import (
    plan_cloud_capacity,
    plan_cloud_capacity_reference,
)
from repro.core.dp import DpConfig, route_chains_dp
from repro.core.lp import (
    LpObjective,
    clear_matrix_cache,
    matrix_cache_stats,
    solve_chain_routing_lp,
    solve_chain_routing_lp_reference,
)
from repro.dataplane.e2e import E2ERoute, E2ETestbed, VnfInstanceSpec
from repro.topology import WorkloadConfig, build_backbone, generate_workload
from repro.topology.cities import DEFAULT_CITIES

TOL = 1e-9


def make_model(seed=3, num_chains=24, cities=8):
    names = DEFAULT_CITIES[:cities]
    config = WorkloadConfig(
        num_chains=num_chains,
        num_vnfs=6,
        coverage=0.6,
        total_traffic=4000.0,
        site_capacity=9000.0,
        cities=names,
        seed=seed,
    )
    return generate_workload(config, build_backbone(names))


def dense(matrix):
    return np.zeros((0, 0)) if matrix is None else np.asarray(matrix.todense())


class TestLpMatrixEquivalence:
    """Columnar COO assembly == scalar per-variable assembly."""

    @pytest.mark.parametrize("objective", list(LpObjective))
    def test_matrices_match(self, objective):
        model = make_model()
        ch = model.chain_columns()
        structure = lp_mod._structure_for(model, objective, True, None)
        data_ub = structure.refreshed_ub_data(ch)
        a_ub = csr_matrix(
            (data_ub, (structure.ub_rows, structure.ub_cols)),
            shape=(len(structure.b_ub), structure.n_total),
        )
        a_eq = csr_matrix(
            (structure.eq_data, (structure.eq_rows, structure.eq_cols)),
            shape=(len(structure.b_eq), structure.n_total),
        )
        cost = lp_mod._cost_vector(structure, ch, objective, 1e-6)

        program = lp_mod._scalar_program(model, objective, True, 1e-6)
        assert structure.n_total == program.n_total
        assert np.max(np.abs(dense(a_ub) - dense(program.a_ub))) <= TOL
        assert np.max(np.abs(structure.b_ub - program.b_ub)) <= TOL
        assert np.max(np.abs(dense(a_eq) - dense(program.a_eq))) <= TOL
        assert np.max(np.abs(structure.b_eq - program.b_eq)) <= TOL
        assert np.max(np.abs(cost - program.cost)) <= TOL

    @pytest.mark.parametrize(
        "objective", [LpObjective.MIN_LATENCY, LpObjective.MAX_THROUGHPUT]
    )
    def test_solutions_match(self, objective):
        model = make_model()
        fast = solve_chain_routing_lp(model, objective)
        slow = solve_chain_routing_lp_reference(model, objective)
        assert fast.ok and slow.ok
        # Degenerate optima may differ per-variable; the objective is
        # the contract.
        assert fast.solution.throughput() == pytest.approx(
            slow.solution.throughput(), abs=1e-6
        )


class TestCapacityMatrixEquivalence:
    def test_matrices_match(self):
        model = make_model()
        budget = 50000.0
        structure = capacity_mod._capacity_structure_for(model)
        rows, cols, data, b_ub = structure.refreshed_ub(model, budget)
        a_ub = csr_matrix(
            (data, (rows, cols)), shape=(structure.n_ub, structure.n_total)
        )
        a_eq = csr_matrix(
            (structure.eq_data, (structure.eq_rows, structure.eq_cols)),
            shape=(structure.n_eq, structure.n_total),
        )
        cost = np.zeros(structure.n_total)
        cost[structure.alpha_index] = -1.0

        program = capacity_mod._scalar_cloud_program(model, budget)
        assert structure.n_total == program.n_total
        assert structure.alpha_index == program.alpha_index
        assert np.max(np.abs(dense(a_ub) - dense(program.a_ub))) <= TOL
        assert np.max(np.abs(b_ub - program.b_ub)) <= TOL
        assert np.max(np.abs(dense(a_eq) - dense(program.a_eq))) <= TOL
        assert np.max(np.abs(np.asarray(program.b_eq))) <= TOL
        assert np.max(np.abs(cost - program.cost)) <= TOL

    def test_alpha_matches_reference(self):
        model = make_model()
        fast = plan_cloud_capacity(model, 50000.0)
        slow = plan_cloud_capacity_reference(model, 50000.0)
        assert fast.alpha == pytest.approx(slow.alpha, abs=1e-6)


class TestDpVectorizedEquivalence:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_routes_identical(self, seed):
        """Vectorized DP reproduces the scalar routes exactly.

        Not approximately: the vectorized recurrence preserves the
        scalar accumulation order and argmin tie-breaking, so the
        chosen paths (and hence flows) must be identical.
        """
        model_v = make_model(seed=seed)
        model_s = make_model(seed=seed)
        vec = route_chains_dp(model_v, DpConfig(vectorized=True))
        ref = route_chains_dp(model_s, DpConfig(vectorized=False))
        assert vec.unrouted == ref.unrouted
        for name, chain in model_v.chains.items():
            for z in range(1, chain.num_stages + 1):
                assert vec.solution.stage_flows(name, z) == ref.solution.stage_flows(name, z)


class TestMaxMinEquivalence:
    def _random_testbed(self, rng):
        nodes = ["A", "B", "C", "D"]
        rtt = {}
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                rtt[(a, b)] = float(rng.uniform(5.0, 120.0))
        bed = E2ETestbed(rtt_ms=rtt)
        inst_names = []
        for i in range(rng.integers(2, 6)):
            name = f"vnf{i}"
            bed.add_instance(
                VnfInstanceSpec(
                    name,
                    nodes[rng.integers(0, len(nodes))],
                    capacity_mbps=float(rng.uniform(40.0, 400.0)),
                )
            )
            inst_names.append(name)
        for j in range(rng.integers(2, 10)):
            hops = [nodes[rng.integers(0, len(nodes))] for _ in range(3)]
            k = rng.integers(0, 3)
            instances = [
                inst_names[rng.integers(0, len(inst_names))] for _ in range(k)
            ]
            bed.add_route(
                E2ERoute(
                    f"r{j}", hops, instances, float(rng.uniform(10.0, 500.0))
                )
            )
        return bed

    def test_rates_match_reference(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            bed = self._random_testbed(rng)
            fast = bed.evaluate()
            slow = bed.evaluate_reference()
            assert set(fast.routes) == set(slow.routes)
            for name in fast.routes:
                f, s = fast.routes[name], slow.routes[name]
                assert abs(f.throughput_mbps - s.throughput_mbps) <= TOL
                assert abs(f.rtt_ms - s.rtt_ms) <= TOL
                assert f.bottleneck == s.bottleneck
            for name in fast.utilization:
                assert (
                    abs(fast.utilization[name] - slow.utilization[name]) <= TOL
                )


class TestMatrixCacheRoundTrip:
    """Reuse on demand-only change, invalidation on topology change."""

    def test_demand_change_reuses_structure(self):
        clear_matrix_cache()
        model = make_model()
        solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        stats = matrix_cache_stats()
        assert stats["matrix_rebuilds"] == 1

        # Scale one chain's demand: same variable space, new RHS.  The
        # *last* chain in insertion order, so remove+add keeps the
        # variable ordering (and hence the structure digest) intact.
        name = list(model.chains)[-1]
        chain = model.chains[name]
        model.remove_chain(name)
        model.add_chain(chain.scaled(1.7))
        fast = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        stats = matrix_cache_stats()
        assert stats["matrix_rebuilds"] == 1
        assert stats["matrix_reuse_hits"] == 1
        # The reused structure must still solve the *new* demands.
        slow = solve_chain_routing_lp_reference(
            model, LpObjective.MAX_THROUGHPUT
        )
        assert fast.solution.throughput() == pytest.approx(
            slow.solution.throughput(), abs=1e-6
        )
        clear_matrix_cache()

    def test_topology_change_invalidates(self):
        clear_matrix_cache()
        model = make_model()
        solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert matrix_cache_stats()["matrix_rebuilds"] == 1

        # In-place latency mutation (what fail_link does) must not keep
        # serving the stale structure once the caches are invalidated.
        digest_before = model.structure_digest()
        key = next(k for k, d in model._latency.items() if d > 0.0)
        model._latency[key] = model._latency[key] * 3.0
        model.invalidate_substrate()
        assert model.structure_digest() != digest_before

        solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
        assert matrix_cache_stats()["matrix_rebuilds"] == 2
        clear_matrix_cache()

    def test_fail_restore_link_round_trips_digest(self):
        model = make_model()
        digest_before = model.structure_digest()
        key = next(k for k, d in model._latency.items() if d > 0.0)
        stash = model._latency[key]
        model._latency[key] = float("inf")
        model.invalidate_substrate()
        assert model.structure_digest() != digest_before
        model._latency[key] = stash
        model.invalidate_substrate()
        assert model.structure_digest() == digest_before
