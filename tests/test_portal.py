"""Tests for the customer portal facade (Section 2)."""

import random

import pytest

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.controller.portal import Portal, PortalError
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService


def build_portal(fw_caps=None, nat_caps=None):
    fw_caps = fw_caps or {"A": 50.0, "B": 50.0}
    nat_caps = nat_caps or {"B": 50.0}
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    sites = [CloudSite(s, s.lower(), 500.0) for s in ("A", "B", "C")]
    vnfs = [VNF("firewall", 1.0, dict(fw_caps)), VNF("nat", 0.5, dict(nat_caps))]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(8))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B", "C"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("firewall", 1.0, dict(fw_caps)))
    gs.register_vnf_service(VnfService("nat", 0.5, dict(nat_caps)))
    edge = EdgeController("vpn")
    ingress = EdgeInstance("edge.A", "A", dp)
    egress = EdgeInstance("edge.C", "C", dp)
    edge.register_instance(ingress)
    edge.register_instance(egress)
    edge.register_attachment("office-1", "A")
    edge.register_attachment("office-2", "C")
    gs.register_edge_service(edge)
    egress.attach_forwarder(gs.local_switchboard("C").forwarders[0].name)
    return Portal(gs), ingress, egress


def spec(vnfs=("firewall",), name="corp", demand=5.0):
    return ChainSpecification(
        name, "vpn", "office-1", "office-2", list(vnfs),
        forward_demand=demand,
        src_prefix="10.0.0.0/24",
        dst_prefixes=["20.0.0.0/24"],
    )


class TestCatalog:
    def test_lists_registered_vnfs(self):
        portal, *_ = build_portal()
        names = [entry.name for entry in portal.catalog()]
        assert names == ["firewall", "nat"]

    def test_entry_details(self):
        portal, *_ = build_portal()
        firewall = portal.catalog()[0]
        assert set(firewall.sites) == {"A", "B"}
        assert firewall.total_capacity == 100.0

    def test_descriptions(self):
        portal, *_ = build_portal()
        portal.describe_vnf("firewall", "stateful L4 firewall")
        assert portal.catalog()[0].description == "stateful L4 firewall"
        with pytest.raises(PortalError):
            portal.describe_vnf("ghost", "x")


class TestActivation:
    def test_activate_returns_active_status(self):
        portal, *_ = build_portal()
        status = portal.activate(spec())
        assert status.state == "active"
        assert status.carried_fraction == pytest.approx(1.0)
        assert status.ingress_site == "A"
        assert status.egress_site == "C"

    def test_unknown_vnf_rejected_with_catalog_hint(self):
        portal, *_ = build_portal()
        with pytest.raises(PortalError, match="available"):
            portal.activate(spec(vnfs=("scrubber",)))

    def test_unknown_attachment_rejected(self):
        portal, *_ = build_portal()
        bad = ChainSpecification(
            "x", "vpn", "nowhere", "office-2", ["firewall"],
            dst_prefixes=["20.0.0.0/24"],
        )
        with pytest.raises(PortalError, match="attachment"):
            portal.activate(bad)

    def test_degraded_status_when_capacity_short(self):
        portal, *_ = build_portal(fw_caps={"A": 4.0, "B": 0.0})
        status = portal.activate(spec(demand=5.0))
        assert status.state == "degraded"
        assert "capacity limited" in status.message

    def test_traffic_flows_after_activation(self):
        portal, ingress, egress = build_portal()
        portal.activate(spec())
        packet = Packet(FiveTuple("10.0.0.5", "20.0.0.9", "tcp", 1111, 80))
        ingress.ingress(packet)
        assert egress.delivered

    def test_list_chains(self):
        portal, *_ = build_portal()
        portal.activate(spec(name="c1"))
        portal.activate(
            ChainSpecification(
                "c2", "vpn", "office-1", "office-2", ["nat"],
                forward_demand=2.0, src_prefix="10.1.0.0/24",
                dst_prefixes=["20.0.1.0/24"],
            )
        )
        assert [s.name for s in portal.list_chains()] == ["c1", "c2"]


class TestVnfInsertion:
    def test_insert_vnf_extends_chain(self):
        portal, ingress, egress = build_portal()
        portal.activate(spec(vnfs=("firewall",)))
        status = portal.insert_vnf("corp", "nat", position=1)
        assert status.state == "active"
        assert status.vnfs == ("firewall", "nat")
        packet = Packet(FiveTuple("10.0.0.7", "20.0.0.9", "tcp", 2222, 80))
        ingress.ingress(packet)
        assert any(e.startswith("firewall.") for e in packet.trace)
        assert any(e.startswith("nat.") for e in packet.trace)

    def test_insert_at_front(self):
        portal, *_ = build_portal()
        portal.activate(spec(vnfs=("nat",)))
        status = portal.insert_vnf("corp", "firewall", position=0)
        assert status.vnfs == ("firewall", "nat")

    def test_insert_position_validated(self):
        portal, *_ = build_portal()
        portal.activate(spec())
        with pytest.raises(PortalError):
            portal.insert_vnf("corp", "nat", position=5)

    def test_insert_into_unknown_chain_rejected(self):
        portal, *_ = build_portal()
        with pytest.raises(PortalError):
            portal.insert_vnf("ghost", "nat", 0)


class TestDeactivation:
    def test_deactivate_releases_chain(self):
        portal, *_ = build_portal()
        portal.activate(spec())
        status = portal.deactivate("corp")
        assert status.state == "inactive"
        assert portal.status("corp").state == "inactive"
        assert "corp" not in portal.gs.model.chains

    def test_deactivate_unknown_rejected(self):
        portal, *_ = build_portal()
        with pytest.raises(PortalError):
            portal.deactivate("ghost")

    def test_reactivation_after_deactivate(self):
        portal, *_ = build_portal()
        portal.activate(spec())
        portal.deactivate("corp")
        status = portal.activate(spec())
        assert status.state == "active"
