#!/usr/bin/env python3
"""Enterprise service chain, end to end (the Section 2 scenario).

A logistics enterprise connects two offices through a wide-area chain of
[stateful firewall -> NAT].  This example stands up the full middleware
-- Global Switchboard, Local Switchboards, forwarders, an edge service,
and two VNF services -- creates the chain from a portal-style
specification, and then pushes simulated packets through it, verifying
flow affinity and symmetric return.  Finally it demonstrates the two
dynamic operations of Section 7.1: adding a route through a new site
when the first site saturates, and grafting a new edge site when an
employee roams.

Run:  python examples/enterprise_chain.py
"""

import random

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import NatFunction, StatefulFirewall, VnfService
from repro.vnf.firewall import FirewallRule


def build_deployment():
    nodes = ["nyc", "chi", "sfo"]
    latency = {("nyc", "chi"): 9.0, ("chi", "sfo"): 18.0, ("nyc", "sfo"): 26.0}
    sites = [
        CloudSite("NYC", "nyc", 200.0),
        CloudSite("CHI", "chi", 200.0),
        CloudSite("SFO", "sfo", 200.0),
    ]
    vnfs = [
        VNF("firewall", 1.0, {"NYC": 50.0, "CHI": 50.0}),
        VNF("nat", 0.5, {"CHI": 60.0, "SFO": 60.0}),
    ]
    model = NetworkModel(nodes, latency, sites, vnfs)

    dataplane = DataPlane(random.Random(2026))
    gs = GlobalSwitchboard(model, dataplane)
    for site in ("NYC", "CHI", "SFO"):
        gs.register_local_switchboard(LocalSwitchboard(site, dataplane))

    gs.register_vnf_service(
        VnfService(
            "firewall", 1.0, {"NYC": 50.0, "CHI": 50.0},
            instance_factory=lambda name, site: StatefulFirewall(
                [FirewallRule(src_prefix="10.1.0.0/16")]
            ),
        )
    )
    gs.register_vnf_service(
        VnfService(
            "nat", 0.5, {"CHI": 60.0, "SFO": 60.0},
            supports_labels=False,  # forwarders strip/re-affix labels
            instance_factory=lambda name, site: NatFunction(
                public_ip=f"198.51.100.{len(name) % 250}"
            ),
        )
    )

    edge = EdgeController("enterprise-vpn")
    hq = EdgeInstance("edge.NYC", "NYC", dataplane)
    branch = EdgeInstance("edge.SFO", "SFO", dataplane)
    edge.register_instance(hq)
    edge.register_instance(branch)
    edge.register_attachment("hq-router", "NYC")
    edge.register_attachment("branch-router", "SFO")
    gs.register_edge_service(edge)
    branch.attach_forwarder(gs.local_switchboard("SFO").forwarders[0].name)
    return gs, dataplane, edge, hq, branch


def main() -> None:
    gs, _dataplane, edge, hq, branch = build_deployment()

    # The portal submits the chain specification (Figure 2).
    spec = ChainSpecification(
        name="logistics-secure",
        edge_service="enterprise-vpn",
        ingress_attachment="hq-router",
        egress_attachment="branch-router",
        vnf_services=["firewall", "nat"],
        forward_demand=8.0,
        reverse_demand=3.0,
        src_prefix="10.1.0.0/16",
        dst_prefixes=["10.2.0.0/16"],
    )
    installation = gs.create_chain(spec)
    print(
        f"chain {spec.name!r} installed: label={installation.label}, "
        f"{installation.ingress_site} -> {installation.egress_site}, "
        f"routed {installation.routed_fraction:.0%}"
    )
    for (vnf, site), load in sorted(installation.committed_load.items()):
        print(f"  committed {load:.1f} load units of {vnf} at {site}")

    # Traffic flows through the chain in order.
    flow = FiveTuple("10.1.0.5", "10.2.0.9", "tcp", 40001, 443)
    packet = Packet(flow)
    hq.ingress(packet)
    print(f"\nforward path : {' -> '.join(packet.trace)}")
    print(f"  NAT rewrote the source to {packet.flow.src_ip}:{packet.flow.src_port}")

    # Later packets of the connection follow the same instances.
    again = Packet(flow)
    hq.ingress(again)
    assert again.trace == packet.trace, "flow affinity violated"
    print("flow affinity : second packet took the identical path")

    # The server's response retraces the chain in reverse.
    reply = Packet(packet.flow.reversed())
    branch.send_reverse(reply)
    print(f"reverse path  : {' -> '.join(reply.trace)}")
    assert reply.flow.dst_ip == "10.1.0.5", "NAT failed to restore the flow"
    print(f"  NAT restored the destination to {reply.flow.dst_ip}")

    # An employee roams to Chicago: graft the edge site onto the chain.
    roaming = EdgeInstance("edge.CHI", "CHI", gs.dataplane)
    edge.register_instance(roaming)
    entry = gs.add_edge_site("logistics-secure", "CHI")
    mobile = Packet(FiveTuple("10.1.7.7", "10.2.0.9", "tcp", 50000, 443))
    roaming.ingress(mobile)
    print(
        f"\nmobility      : new edge site CHI joined via first-VNF site "
        f"{entry}; path {' -> '.join(mobile.trace)}"
    )


if __name__ == "__main__":
    main()
