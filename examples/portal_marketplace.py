#!/usr/bin/env python3
"""The customer portal: marketplace, activation, instant VNF insertion.

Recreates the Section 2 customer experience (minus the webcam): browse
the VNF catalog, activate a chain, watch traffic flow, then respond to
"an emerging security threat" by instantly inserting an IDS into the
live chain -- new connections take the extended chain while established
connections keep their routes, per Section 5.3.

Run:  python examples/portal_marketplace.py
"""

import random

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
    Portal,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane, FiveTuple, Packet
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import IntrusionDetector, StatefulFirewall, VnfService


def build_portal():
    nodes = ["nyc", "chi", "sfo"]
    latency = {("nyc", "chi"): 9.0, ("chi", "sfo"): 18.0, ("nyc", "sfo"): 26.0}
    sites = [CloudSite(s.upper(), s, 500.0) for s in nodes]
    vnfs = [
        VNF("firewall", 1.0, {"NYC": 80.0, "CHI": 80.0}),
        VNF("ids", 2.0, {"CHI": 120.0}),
        VNF("nat", 0.5, {"CHI": 60.0, "SFO": 60.0}),
    ]
    model = NetworkModel(nodes, latency, sites, vnfs)
    dp = DataPlane(random.Random(99))
    gs = GlobalSwitchboard(model, dp)
    for site in ("NYC", "CHI", "SFO"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(
        VnfService(
            "firewall", 1.0, {"NYC": 80.0, "CHI": 80.0},
            instance_factory=lambda n, s: StatefulFirewall(default_allow=True),
        )
    )
    gs.register_vnf_service(
        VnfService(
            "ids", 2.0, {"CHI": 120.0},
            instance_factory=lambda n, s: IntrusionDetector(
                signatures=["MALWARE"], prevention=True
            ),
        )
    )
    gs.register_vnf_service(VnfService("nat", 0.5, {"CHI": 60.0, "SFO": 60.0}))

    edge = EdgeController("enterprise-vpn")
    hq = EdgeInstance("edge.NYC", "NYC", dp)
    fleet = EdgeInstance("edge.SFO", "SFO", dp)
    edge.register_instance(hq)
    edge.register_instance(fleet)
    edge.register_attachment("hq", "NYC")
    edge.register_attachment("fleet-gw", "SFO")
    gs.register_edge_service(edge)
    fleet.attach_forwarder(gs.local_switchboard("SFO").forwarders[0].name)

    portal = Portal(gs)
    portal.describe_vnf("firewall", "stateful L4 firewall")
    portal.describe_vnf("ids", "signature + port-scan intrusion prevention")
    portal.describe_vnf("nat", "carrier-grade source NAT")
    return portal, hq, fleet


def main() -> None:
    portal, hq, fleet = build_portal()

    print("VNF marketplace:")
    for entry in portal.catalog():
        print(
            f"  {entry.name:<9} sites={','.join(entry.sites):<9} "
            f"capacity={entry.total_capacity:>5.0f}  {entry.description}"
        )

    status = portal.activate(
        ChainSpecification(
            "vehicles", "enterprise-vpn", "hq", "fleet-gw", ["firewall"],
            forward_demand=10.0, reverse_demand=4.0,
            src_prefix="10.1.0.0/16", dst_prefixes=["10.2.0.0/16"],
        )
    )
    print(f"\nchain 'vehicles' activated: {status.state} -- {status.message}")

    flow = FiveTuple("10.1.0.5", "10.2.0.9", "tcp", 40001, 443)
    first = Packet(flow, payload="telemetry")
    hq.ingress(first)
    print(f"established connection path: {' -> '.join(first.trace)}")

    # An emerging threat: the operator inserts the IDS instantly.
    status = portal.insert_vnf("vehicles", "ids", position=1)
    print(f"\nIDS inserted: chain is now {' -> '.join(status.vnfs)} "
          f"({status.state})")

    # New connections traverse the IDS.
    clean = Packet(
        FiveTuple("10.1.0.6", "10.2.0.9", "tcp", 40002, 443),
        payload="telemetry",
    )
    hq.ingress(clean)
    print(f"new clean connection:      {' -> '.join(clean.trace)}")

    malicious = Packet(
        FiveTuple("10.1.0.66", "10.2.0.9", "tcp", 40003, 443),
        payload="xxMALWAREyy",
    )
    hq.ingress(malicious)
    dropped = not any(e.startswith("edge.SFO") for e in malicious.trace)
    print(f"malicious payload dropped by the IDS: {dropped}")

    print("\nportal view:")
    for chain in portal.list_chains():
        print(
            f"  {chain.name}: {chain.state}, "
            f"{chain.ingress_site} -> {chain.egress_site} via "
            f"{' -> '.join(chain.vnfs)}"
        )


if __name__ == "__main__":
    main()
