#!/usr/bin/env python3
"""The global message bus under load (Section 6).

Sets up a ten-site deployment in which one site's VNF controller
publishes instance updates that Local Switchboards at the other sites
subscribe to, then pushes the publish rate toward the uplink capacity
and compares Switchboard's proxy topology against full-mesh broadcast.

Run:  python examples/message_bus_demo.py
"""

from repro.bus import Topic, make_bus, make_full_mesh_bus

SITES = [f"site{i}" for i in range(10)]
SUBSCRIBERS_PER_SITE = 5
PUBLISH_RATE_HZ = 35
DURATION_S = 20.0


def drive(make, label):
    bus = make(
        SITES,
        wan_delay_s=0.025,
        uplink_bps=8e6,          # 1000 one-KB messages per second
        uplink_buffer_bytes=400_000,
    )
    topic = Topic(
        chain="c1", egress="e3", vnf="G", site="site0", kind="instances"
    )
    bus.attach("vnf-controller", "site0")
    for site in SITES[1:]:
        for j in range(SUBSCRIBERS_PER_SITE):
            name = f"local-sb-{site}-{j}"
            bus.attach(name, site)
            bus.subscribe(name, topic)

    publishes = int(PUBLISH_RATE_HZ * DURATION_S)
    for i in range(publishes):
        bus.network.sim.schedule(
            i / PUBLISH_RATE_HZ,
            bus.publish,
            "vnf-controller",
            topic,
            {"instance": f"G.{i}", "weight": 1.0},
        )
    bus.network.run()

    stats = bus.stats
    print(f"{label}")
    print(f"  wide-area messages : {stats.wan_messages}")
    print(f"  dropped            : {stats.wan_drops}")
    print(f"  delivered          : {stats.delivered}")
    print(f"  mean latency       : {stats.mean_latency() * 1e3:.1f} ms")
    print(f"  p99 latency        : {stats.p99_latency() * 1e3:.1f} ms")
    return stats


def main() -> None:
    print(
        f"{len(SITES)} sites, {SUBSCRIBERS_PER_SITE} subscribers/site, "
        f"{PUBLISH_RATE_HZ} publishes/s for {DURATION_S:.0f}s "
        f"(uplink fits 1000 msg/s)\n"
    )
    proxy = drive(make_bus, "Switchboard bus (one copy per site)")
    print()
    mesh = drive(make_full_mesh_bus, "full-mesh broadcast (one copy per subscriber)")

    print(
        f"\nbus vs broadcast: {mesh.mean_latency() / proxy.mean_latency():.1f}x "
        f"lower latency, "
        f"{100 * (proxy.delivered / mesh.delivered - 1):.0f}% higher delivery"
    )
    print("(the paper's Figure 9 reports >10x and 57%)")


if __name__ == "__main__":
    main()
