#!/usr/bin/env python3
"""Quickstart: model a small wide-area deployment and route chains.

Builds the Table 1 network model for three sites, defines two customer
chains, and routes them with Switchboard's two traffic-engineering
algorithms (the optimal SB-LP and the fast SB-DP heuristic), plus the
ANYCAST baseline for comparison.

Run:  python examples/quickstart.py
"""

from repro.core.baselines import route_anycast, scale_to_capacity
from repro.core.dp import route_chains_dp
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.core.model import Chain, CloudSite, NetworkModel, VNF


def build_model() -> NetworkModel:
    """Three PoPs: a (east), b (central), c (west)."""
    nodes = ["a", "b", "c"]
    latency_ms = {("a", "b"): 10.0, ("b", "c"): 15.0, ("a", "c"): 30.0}
    sites = [
        CloudSite("A", node="a", capacity=100.0),
        CloudSite("B", node="b", capacity=100.0),
        CloudSite("C", node="c", capacity=100.0),
    ]
    vnfs = [
        # A firewall with a small instance near the east coast and a
        # large one in the middle of the country.
        VNF("firewall", load_per_unit=1.0, site_capacity={"A": 12.0, "B": 60.0}),
        VNF("nat", load_per_unit=0.5, site_capacity={"B": 60.0, "C": 60.0}),
    ]
    chains = [
        Chain("corp-east", "a", "c", ["firewall", "nat"],
              forward_traffic=5.0, reverse_traffic=2.0),
        Chain("branch", "b", "c", ["firewall"],
              forward_traffic=3.0, reverse_traffic=1.0),
    ]
    return NetworkModel(nodes, latency_ms, sites, vnfs, chains)


def describe(name: str, solution) -> None:
    print(f"\n{name}")
    print(f"  carried demand : {solution.throughput():.2f} traffic units")
    print(f"  mean latency   : {solution.mean_latency():.2f} ms")
    for chain in solution.model.chains:
        flows = solution.stage_flows(chain, 1)
        placement = ", ".join(
            f"{dst} ({frac:.0%})" for (_src, dst), frac in sorted(flows.items())
        )
        print(f"  {chain}: first VNF at {placement}")


def main() -> None:
    model = build_model()
    print(f"model: {model}")

    lp = solve_chain_routing_lp(model, LpObjective.MIN_LATENCY)
    assert lp.ok
    lp.solution.validate()
    describe("SB-LP (optimal, min latency)", lp.solution)

    dp = route_chains_dp(model)
    dp.solution.validate()
    describe("SB-DP (fast heuristic)", dp.solution)
    if dp.unrouted:
        print(f"  unrouted: {dp.unrouted}")

    anycast = scale_to_capacity(route_anycast(model))
    describe("ANYCAST baseline (carried after congestion)", anycast)

    gap = dp.solution.total_weighted_latency() / lp.objective - 1
    print(f"\nSB-DP weighted latency is within {gap:.1%} of the LP optimum")


if __name__ == "__main__":
    main()
