#!/usr/bin/env python3
"""Volume-changing VNFs: a WAN optimizer in a wide-area chain.

The network model's per-stage demands (``w_cz``) exist because VNFs can
change traffic volume mid-chain.  This example builds a
firewall -> WAN-optimizer chain where the optimizer halves the bytes it
forwards, and shows both halves of the story:

- the *traffic engineering* half: the links downstream of the optimizer
  carry half the load, which the TE accounts for when placing the VNFs;
- the *data plane* half: packets shrink at the optimizer instance on the
  forward path and are restored on the reverse path.

Run:  python examples/wan_compression.py
"""

import random

from repro.core.dp import route_chains_dp
from repro.core.model import Chain, CloudSite, Link, NetworkModel, VNF
from repro.dataplane import DataPlane, Forwarder, Packet, FiveTuple
from repro.dataplane.forwarder import VnfInstance
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice
from repro.vnf import Compressor, compressed_stage_demands


def traffic_engineering_half() -> None:
    print("traffic engineering with a compressing VNF")
    forward, reverse = compressed_stage_demands(
        base_forward=10.0, base_reverse=2.0, vnf_ratios=[None, 0.5]
    )
    print(f"  per-stage forward demand: {forward}")

    nodes = ["hq", "pop", "branch"]
    latency = {("hq", "pop"): 5.0, ("pop", "branch"): 35.0,
               ("hq", "branch"): 38.0}
    sites = [CloudSite("POP", "pop", 1000.0)]
    vnfs = [
        VNF("firewall", 1.0, {"POP": 500.0}),
        VNF("wanopt", 1.0, {"POP": 500.0}),
    ]
    chain = Chain("branch-link", "hq", "branch",
                  ["firewall", "wanopt"], forward, reverse)
    links = [
        Link("up", "hq", "pop", 100.0), Link("up-r", "pop", "hq", 100.0),
        Link("wan", "pop", "branch", 100.0),
        Link("wan-r", "branch", "pop", 100.0),
    ]
    routing = {
        ("hq", "pop"): {"up": 1.0}, ("pop", "hq"): {"up-r": 1.0},
        ("pop", "branch"): {"wan": 1.0}, ("branch", "pop"): {"wan-r": 1.0},
    }
    model = NetworkModel(nodes, latency, sites, vnfs, [chain],
                         links, routing)
    result = route_chains_dp(model)
    traffic = result.solution.link_traffic()
    print(f"  access link (hq->pop) carries : {traffic['up']:.1f} units")
    print(f"  WAN link (pop->branch) carries: {traffic['wan']:.1f} units "
          f"(halved by the optimizer)\n")


def data_plane_half() -> None:
    print("data plane through the compressor instance")
    dp = DataPlane(random.Random(0))
    fwd = dp.add_forwarder(Forwarder("f.pop", "POP"))
    compressor = Compressor(0.5)
    instance = VnfInstance("wanopt.1", "wanopt", "POP", transform=compressor)
    fwd.attach(instance)

    class Branch:
        name = "branch"

        def receive_from_chain(self, packet, came_from):
            packet.record("branch")

    dp.add_endpoint(Branch())
    dp.add_endpoint(type("Hq", (), {
        "name": "hq",
        "receive_from_chain": lambda self, p, c: p.record("hq"),
    })())
    from repro.dataplane.labels import Labels

    fwd.install_rule(1, "BR", LoadBalancingRule(
        local_instances=WeightedChoice({"wanopt.1": 1.0}),
        next_forwarders=WeightedChoice({"branch": 1.0}),
    ))
    packet = Packet(
        FiveTuple("10.0.0.1", "10.9.0.1", "tcp", 5000, 443),
        labels=Labels(1, "BR"),
        size_bytes=1400,
    )
    dp.send_forward(packet, "f.pop", "hq")
    print(f"  1400 B packet leaves the optimizer at {packet.size_bytes} B")
    print(f"  forward-direction byte savings: {compressor.savings:.0%}")
    reply = Packet(packet.flow.reversed(), labels=Labels(1, "BR"),
                   size_bytes=packet.size_bytes)
    dp.send_reverse(reply, "f.pop", "branch")
    print(f"  reverse packet restored to {reply.size_bytes} B")


def main() -> None:
    traffic_engineering_half()
    data_plane_half()


if __name__ == "__main__":
    main()
