#!/usr/bin/env python3
"""Capacity planning for cloud and VNF operators (Section 4.2).

Two planning questions Switchboard answers from its global view:

1. *Cloud*: an operator has a budget of extra compute -- which sites
   should get it to sustain the largest uniform traffic growth?
2. *VNF*: a VNF provider can open deployments at a few new sites --
   which sites minimize chain latency?

Run:  python examples/capacity_planning.py
"""

import random

from repro.core.capacity import (
    max_alpha,
    plan_cloud_capacity,
    plan_vnf_placement,
    random_vnf_placement,
    uniform_cloud_plan,
)
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.topology import WorkloadConfig, build_backbone, generate_workload
from repro.topology.cities import DEFAULT_CITIES

CITIES = DEFAULT_CITIES[:10]


def main() -> None:
    config = WorkloadConfig(
        num_chains=20,
        num_vnfs=6,
        coverage=0.4,
        min_chain_length=2,
        max_chain_length=3,
        total_traffic=300.0,
        site_capacity=400.0,
        cities=CITIES,
        seed=3,
    )
    model = generate_workload(config, build_backbone(CITIES))

    # -- cloud capacity planning -------------------------------------
    base = max_alpha(model)
    budget = 0.25 * sum(s.capacity for s in model.sites.values())
    optimized = plan_cloud_capacity(model, budget)
    uniform = uniform_cloud_plan(model, budget)
    print("cloud capacity planning")
    print(f"  sustainable traffic scale today  : {base:.2f}x")
    print(f"  with +25% capacity, uniform      : {uniform.alpha:.2f}x")
    print(f"  with +25% capacity, optimized    : {optimized.alpha:.2f}x "
          f"(+{100 * (optimized.alpha / uniform.alpha - 1):.0f}% vs uniform)")
    top = sorted(optimized.additional.items(), key=lambda kv: -kv[1])[:5]
    print("  largest additions:", ", ".join(
        f"{site} +{extra:.0f}" for site, extra in top
    ))

    # -- VNF placement hints -------------------------------------------
    quotas = {name: 1 for name in list(model.vnfs)[:3]}
    plan = plan_vnf_placement(model, quotas, new_site_capacity=80.0)
    print("\nVNF placement hints (1 new site each for 3 VNFs)")
    for vnf, sites in sorted(plan.new_sites.items()):
        print(f"  {vnf}: open at {', '.join(sites) or '(none needed)'}")

    def latency(m):
        result = solve_chain_routing_lp(m, LpObjective.MIN_LATENCY)
        assert result.ok
        return result.objective

    before = latency(model)
    with_plan = latency(plan.apply(model))
    rng = random.Random(0)
    random_lat = latency(
        random_vnf_placement(model, quotas, 80.0, rng).apply(model)
    )
    print(f"  weighted chain latency: {before:.0f} (today) -> "
          f"{with_plan:.0f} (planned) vs {random_lat:.0f} (random sites)")
    print(f"  planned placement is {100 * (1 - with_plan / random_lat):.0f}% "
          f"better than random")


if __name__ == "__main__":
    main()
