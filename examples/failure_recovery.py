#!/usr/bin/env python3
"""Failure recovery across every layer of the middleware.

Demonstrates the fault-tolerance extensions built on the paper's
future-work items:

1. **Controller failover** — Global Switchboard checkpoints its chain
   state into a MUSIC-style quorum-replicated store; when the primary's
   lease expires, a standby takes over and restores every installation.
2. **Compute-site failure** — a cloud site dies; affected chains are
   re-routed onto surviving capacity through the usual two-phase commit.
3. **Forwarder failure** — DHT-replicated flow tables keep established
   connections pinned to their VNF instances across a forwarder crash.

Run:  python examples/failure_recovery.py
"""

import random

from repro.controller import (
    ChainSpecification,
    GlobalSwitchboard,
    LocalSwitchboard,
    ReplicatedStore,
    checkpoint_installation,
    fail_site,
    restore_installations,
)
from repro.core.model import CloudSite, NetworkModel, VNF
from repro.dataplane import DataPlane
from repro.dataplane.dht import DhtFlowTableView, ReplicatedFlowTable
from repro.dataplane.forwarder import Forwarder, VnfInstance
from repro.dataplane.labels import FiveTuple, Labels, Packet
from repro.dataplane.rules import LoadBalancingRule, WeightedChoice
from repro.edge import EdgeController, EdgeInstance
from repro.vnf import VnfService


def controller_failover_demo() -> None:
    print("1. controller failover via the replicated store")
    store = ReplicatedStore(["nyc", "chi", "sfo"])
    assert store.acquire_lease("gs-primary", now=0.0, duration=30.0)

    nodes = ["a", "b"]
    model = NetworkModel(
        nodes,
        {("a", "b"): 10.0},
        [CloudSite("A", "a", 100.0), CloudSite("B", "b", 100.0)],
        [VNF("fw", 1.0, {"A": 50.0, "B": 50.0})],
    )
    dp = DataPlane(random.Random(0))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, {"A": 50.0, "B": 50.0}))
    edge = EdgeController("vpn")
    edge.register_instance(EdgeInstance("edge.A", "A", dp))
    edge.register_instance(EdgeInstance("edge.B", "B", dp))
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "B")
    gs.register_edge_service(edge)

    installation = gs.create_chain(
        ChainSpecification(
            "corp", "vpn", "in", "out", ["fw"],
            forward_demand=5.0, dst_prefixes=["20.0.0.0/24"],
        )
    )
    checkpoint_installation(store, installation)
    print(f"   primary installed chain 'corp' (label {installation.label}) "
          f"and checkpointed it")

    store.fail("nyc")  # the primary's site goes down with it
    assert store.leader(now=60.0) is None
    assert store.acquire_lease("gs-standby", now=60.0, duration=30.0)
    recovered = restore_installations(store)
    print(f"   standby took the lease and restored "
          f"{sorted(recovered)} with labels "
          f"{[inst.label for inst in recovered.values()]}\n")


def site_failure_demo() -> None:
    print("2. compute-site failure and global re-routing")
    nodes = ["a", "b", "c"]
    latency = {("a", "b"): 10.0, ("a", "c"): 30.0, ("b", "c"): 15.0}
    model = NetworkModel(
        nodes,
        latency,
        [CloudSite(s, s.lower(), 100.0) for s in ("A", "B", "C")],
        [VNF("fw", 1.0, {"A": 40.0, "B": 40.0})],
    )
    dp = DataPlane(random.Random(1))
    gs = GlobalSwitchboard(model, dp)
    for site in ("A", "B", "C"):
        gs.register_local_switchboard(LocalSwitchboard(site, dp))
    gs.register_vnf_service(VnfService("fw", 1.0, {"A": 40.0, "B": 40.0}))
    edge = EdgeController("vpn")
    edge.register_instance(EdgeInstance("edge.A", "A", dp))
    edge.register_instance(EdgeInstance("edge.C", "C", dp))
    edge.register_attachment("in", "A")
    edge.register_attachment("out", "C")
    gs.register_edge_service(edge)

    gs.create_chain(
        ChainSpecification(
            "corp", "vpn", "in", "out", ["fw"],
            forward_demand=5.0, dst_prefixes=["20.0.0.0/24"],
        )
    )
    used = next(iter(
        dst for (_s, dst) in gs.router.solution.stage_flows("corp", 1)
    ))
    print(f"   chain routed via firewall at {used}")
    report = fail_site(gs, used)
    now_used = {
        dst for (_s, dst) in gs.router.solution.stage_flows("corp", 1)
    }
    print(f"   site {used} failed -> re-routed via {sorted(now_used)}; "
          f"restored {report.recovery_ratio():.0%} of affected traffic\n")


def forwarder_failover_demo() -> None:
    print("3. forwarder crash with DHT-replicated flow tables")
    table = ReplicatedFlowTable(replication=2)
    dp = DataPlane(random.Random(2))
    f1 = dp.add_forwarder(
        Forwarder("f1", "A", flow_table=DhtFlowTableView(table, "f1"))
    )
    f2 = dp.add_forwarder(
        Forwarder("f2", "A", flow_table=DhtFlowTableView(table, "f2"))
    )
    g1, g2 = VnfInstance("g1", "G", "A"), VnfInstance("g2", "G", "A")
    f1.attach(g1)
    f1.attach(g2)

    class Sink:
        name = "out"

        def receive_from_chain(self, packet, came_from):
            packet.record("out")

    dp.add_endpoint(Sink())
    rule = LoadBalancingRule(
        local_instances=WeightedChoice({"g1": 1.0, "g2": 1.0}),
        next_forwarders=WeightedChoice({"out": 1.0}),
    )
    f1.install_rule(1, "E", rule)
    f2.install_rule(1, "E", rule)

    flows = [
        FiveTuple("10.0.0.1", "20.0.0.1", "tcp", 1000 + i, 80)
        for i in range(6)
    ]
    pinned = {}
    for flow in flows:
        packet = Packet(flow, labels=Labels(1, "E"))
        dp.send_forward(packet, "f1", "edge")
        pinned[flow] = [e for e in packet.trace if e.startswith("g")][0]
    print(f"   6 connections established via f1, instances: "
          f"{sorted(set(pinned.values()))}")

    table.fail("f1")
    del dp.forwarders["f1"]
    f2.attach(g1)
    f2.attach(g2)
    survived = 0
    for flow in flows:
        packet = Packet(flow, labels=Labels(1, "E"))
        dp.send_forward(packet, "f2", "edge")
        chosen = [e for e in packet.trace if e.startswith("g")][0]
        survived += chosen == pinned[flow]
    print(f"   f1 crashed; f2 serves the same connections: "
          f"{survived}/6 kept their VNF instance (flow affinity held)")


def main() -> None:
    controller_failover_demo()
    site_failure_demo()
    forwarder_failover_demo()


if __name__ == "__main__":
    main()
