#!/usr/bin/env python3
"""Tier-1-scale traffic engineering (the Section 7.3 simulation).

Generates a Switchboard workload on the synthetic 25-PoP continental-US
backbone -- gravity-model traffic matrix, coverage-based VNF placement,
chains of 3-5 VNFs in canonical order, the paper's 4:1 Switchboard-to-
background traffic split -- and compares four routing schemes on carried
throughput and mean latency.

Run:  python examples/tier1_traffic_engineering.py
"""

import time

from repro.core.baselines import (
    route_anycast,
    route_compute_aware,
    scale_to_capacity,
)
from repro.core.dp import route_chains_dp
from repro.core.lp import LpObjective, solve_chain_routing_lp
from repro.topology import WorkloadConfig, build_backbone, generate_workload


def main() -> None:
    backbone = build_backbone()
    print(
        f"backbone: {len(backbone.nodes)} PoPs, {len(backbone.links)} "
        f"directed links, diameter "
        f"{max(backbone.latency.values()):.1f} ms one-way"
    )

    config = WorkloadConfig(
        num_chains=60,
        num_vnfs=15,
        coverage=0.5,
        total_traffic=8000.0,
        site_capacity=8000.0,
        seed=7,
    )
    model = generate_workload(config, backbone)
    offered = model.total_demand()
    print(f"workload: {len(model.chains)} chains, {offered:.0f} units offered\n")

    schemes = []

    start = time.perf_counter()
    dp = route_chains_dp(model)
    schemes.append(("SB-DP", dp.solution, time.perf_counter() - start))

    start = time.perf_counter()
    lp = solve_chain_routing_lp(model, LpObjective.MAX_THROUGHPUT)
    assert lp.ok
    schemes.append(("SB-LP", lp.solution, time.perf_counter() - start))

    start = time.perf_counter()
    anycast = scale_to_capacity(route_anycast(model))
    schemes.append(("ANYCAST", anycast, time.perf_counter() - start))

    start = time.perf_counter()
    compute_aware = scale_to_capacity(route_compute_aware(model))
    schemes.append(("COMPUTE-AWARE", compute_aware, time.perf_counter() - start))

    print(f"{'scheme':<14} {'carried':>9} {'share':>7} "
          f"{'latency':>9} {'MLU':>6} {'time':>8}")
    for name, solution, seconds in schemes:
        print(
            f"{name:<14} {solution.throughput():>9.0f} "
            f"{solution.throughput() / offered:>6.0%} "
            f"{solution.mean_latency():>7.1f}ms "
            f"{solution.max_link_utilization():>6.2f} "
            f"{seconds:>7.2f}s"
        )

    best = lp.solution.throughput()
    print(
        f"\nSB-DP carries {dp.solution.throughput() / best:.0%} of the LP "
        f"optimum at a fraction of its runtime -- the paper's argument for "
        f"running SB-DP as the primary scheme with SB-LP in the background."
    )


if __name__ == "__main__":
    main()
